//! Cross-crate property tests: randomized workloads and configurations
//! must uphold the simulator's structural invariants.

use hh_hwqueue::{Controller, ControllerConfig, VmKind};
use hh_mem::{Access, AccessKind, CoreMem, Dram, HierarchyConfig, Llc, PageClass, PolicyKind, Visibility};
use hh_server::{ServerConfig, ServerSim, SystemSpec};
use hh_sim::{Cycles, VmId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Partition isolation: whatever a Harvest context touches, a
    /// harvest-region flush must drop *all* of it — no Harvest-VM state
    /// may survive into the next Primary tenancy.
    #[test]
    fn harvest_flush_leaves_no_harvest_state(
        addrs in prop::collection::vec(0u64..(1 << 24), 1..200),
        harvest_frac in 0.25f64..0.75,
    ) {
        let cfg = HierarchyConfig::table1();
        let mut mem = CoreMem::new(&cfg, harvest_frac, PolicyKind::hardharvest_default());
        let mut llc = Llc::new(256, 16, &[4, 4]);
        let mut dram = Dram::default();
        for a in &addrs {
            let acc = Access::new(VmId(1), *a, AccessKind::DataRead, PageClass::Private);
            mem.access(Cycles::ZERO, acc, Visibility::Harvest, &mut llc, &mut dram);
        }
        mem.flush_harvest_region();
        // Structural check: nothing valid remains in the harvest ways of
        // the L2 — the region a Harvest VM could have touched.
        let l2 = mem.l2();
        let mask = l2.harvest_mask();
        prop_assert_eq!(l2.occupancy_in(mask), 0);
    }

    /// The controller's chunk accounting is conserved across arbitrary
    /// register/deregister sequences.
    #[test]
    fn controller_chunk_conservation(ops in prop::collection::vec(0u8..3, 1..40)) {
        let mut ctrl = Controller::new(ControllerConfig::table1());
        let mut live: Vec<u16> = Vec::new();
        let mut next_vm = 0u16;
        for op in ops {
            match op {
                0 | 1 if live.len() < 12 => {
                    let kind = if op == 0 { VmKind::Primary } else { VmKind::Harvest };
                    ctrl.register_vm(VmId(next_vm), kind, 1 + (next_vm as usize % 8));
                    live.push(next_vm);
                    next_vm += 1;
                }
                _ if !live.is_empty() => {
                    let vm = live.remove(live.len() / 2);
                    ctrl.deregister_vm(VmId(vm));
                }
                _ => {}
            }
            prop_assert!(ctrl.chunk_accounting_ok());
            for &vm in &live {
                prop_assert!(ctrl.qm(VmId(vm)).queue().chunks() >= 1);
            }
        }
    }

    /// Any evaluated system at any moderate load completes every request
    /// (no lost work, no deadlock) and produces finite positive latencies.
    #[test]
    fn every_system_completes_all_requests(
        sys_idx in 0usize..5,
        rps in 200f64..900.0,
        seed in 0u64..1000,
    ) {
        let system = SystemSpec::evaluated_five()[sys_idx];
        let mut cfg = ServerConfig::small(system);
        cfg.rps_per_vm = rps;
        cfg.requests_per_vm = 40;
        cfg.seed = seed;
        let m = ServerSim::new(cfg).run();
        prop_assert_eq!(m.completed(), 80);
        let mut lat = m.pooled_latency_ms();
        prop_assert!(lat.median() > 0.0);
        prop_assert!(lat.p99() < 1000.0, "p99 {} ms is absurd", lat.p99());
    }
}
