//! Simulation validation: at light load and with no harvesting, the
//! simulator must agree with first-principles expectations — the moral
//! equivalent of the paper's calibration of SST against the real server
//! (Section 3).

use hh_server::{ServerConfig, ServerSim, SystemSpec};
use hh_workload::ServiceCatalog;

/// At light load, mean end-to-end latency per service must approach the
/// analytic floor: compute time + I/O time (+ small stall/queueing slack).
#[test]
fn light_load_latency_matches_analytic_floor() {
    let mut cfg = ServerConfig::table1(SystemSpec::no_harvest());
    cfg.requests_per_vm = 150;
    cfg.rps_per_vm = 60.0; // essentially no queueing
    cfg.seed = 0xA11C;
    let m = ServerSim::new(cfg).run();

    let catalog = ServiceCatalog::socialnet();
    for (id, profile) in catalog.iter() {
        let sm = &m.services[id.index()];
        if sm.completed == 0 {
            continue;
        }
        let mean_ms = {
            let mut lat = sm.latency_ms.clone();
            // mean over samples
            let n = lat.len() as f64;
            lat.values().iter().sum::<f64>() / n
        };
        // Analytic floor: compute + io (medians; jitter means the sample
        // mean sits somewhat above).
        let io_ms = profile.io_calls as f64 * (1.0 + profile.backend_us) / 1000.0;
        let floor_ms = profile.compute_us / 1000.0 + io_ms;
        assert!(
            mean_ms > floor_ms * 0.9,
            "{}: mean {mean_ms:.3} below physical floor {floor_ms:.3}",
            profile.name
        );
        assert!(
            mean_ms < floor_ms * 2.0,
            "{}: mean {mean_ms:.3} far above light-load floor {floor_ms:.3} — \
             spurious queueing or stalls",
            profile.name
        );
    }
}

/// Offered load conservation: completions per second must match the
/// offered rate when the system is stable.
#[test]
fn throughput_matches_offered_load() {
    let mut cfg = ServerConfig::table1(SystemSpec::hardharvest_block());
    cfg.requests_per_vm = 400;
    cfg.rps_per_vm = 800.0;
    cfg.seed = 0x10AD;
    let m = ServerSim::new(cfg).run();
    let secs = m.end_time.as_secs();
    let rate = m.completed() as f64 / secs;
    let offered = 800.0 * 8.0;
    // The run window  includes warm-up and final drain, which depress the
    // apparent rate on a short run; the point is that no work is lost and
    // the system keeps up with the offered load to first order.
    assert!(
        rate > offered * 0.7 && rate < offered * 1.1,
        "completion rate {rate:.0}/s vs offered {offered:.0}/s"
    );
}

/// Utilization accounting: busy cores must never exceed the machine and
/// must at least cover the Harvest VM's dedicated cores.
#[test]
fn utilization_is_physical()
{
    for sys in [SystemSpec::no_harvest(), SystemSpec::hardharvest_block()] {
        let mut cfg = ServerConfig::table1(sys);
        cfg.requests_per_vm = 150;
        cfg.seed = 0xCAFE;
        let m = ServerSim::new(cfg).run();
        let busy = m.avg_busy_cores();
        assert!(busy <= 36.0 + 1e-9, "{}: {busy}", sys.name);
        assert!(busy >= 3.0, "{}: harvest base cores must work: {busy}", sys.name);
    }
}
