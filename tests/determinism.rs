//! Reproducibility: the entire stack is deterministic given a seed —
//! including under the memoizing parallel executor, whatever its worker
//! count.

use hh_core::{Experiments, RunPlan, Scale, SystemSpec};

fn tiny() -> Scale {
    Scale {
        servers: 2,
        requests_per_vm: 80,
        rps_per_vm: 800.0,
    }
}

#[test]
fn identical_seeds_produce_identical_metrics() {
    // Two isolated executors so both runs actually simulate (one plan
    // would serve the second request from its memo table).
    let a = RunPlan::with_workers(2).run_cluster(SystemSpec::hardharvest_block(), tiny(), 123);
    let b = RunPlan::with_workers(2).run_cluster(SystemSpec::hardharvest_block(), tiny(), 123);
    assert_eq!(a.pooled_latency_ms().values(), b.pooled_latency_ms().values());
    assert_eq!(a.avg_busy_cores(), b.avg_busy_cores());
    for (sa, sb) in a.servers().iter().zip(b.servers()) {
        assert_eq!(sa.batch_units, sb.batch_units);
        assert_eq!(sa.reassignments, sb.reassignments);
        assert_eq!(sa.reclaims, sb.reclaims);
        assert_eq!(sa.l2_hits, sb.l2_hits);
        assert_eq!(sa.l2_misses, sb.l2_misses);
    }
}

#[test]
fn different_seeds_differ() {
    let plan = RunPlan::with_workers(2);
    let a = plan.run_cluster(SystemSpec::no_harvest(), tiny(), 1);
    let b = plan.run_cluster(SystemSpec::no_harvest(), tiny(), 2);
    assert_ne!(
        a.pooled_latency_ms().values(),
        b.pooled_latency_ms().values(),
        "different seeds should perturb the run"
    );
}

#[test]
fn parallel_servers_do_not_race() {
    // Thread scheduling must not leak into results: server i's metrics
    // depend only on its own config/seed.
    let a = RunPlan::with_workers(1).run_cluster(SystemSpec::harvest_block(), tiny(), 77);
    let b = RunPlan::with_workers(4).run_cluster(SystemSpec::harvest_block(), tiny(), 77);
    for (sa, sb) in a.servers().iter().zip(b.servers()) {
        assert_eq!(
            sa.pooled_latency_ms().values(),
            sb.pooled_latency_ms().values()
        );
    }
}

#[test]
fn memoized_rerun_equals_fresh_run() {
    let plan = RunPlan::with_workers(2);
    let fresh = plan.run_cluster(SystemSpec::hardharvest_term(), tiny(), 41);
    let recalled = plan.run_cluster(SystemSpec::hardharvest_term(), tiny(), 41);
    assert_eq!(plan.sims_run(), 1);
    assert_eq!(plan.memo_hits(), 1);
    assert_eq!(
        fresh.pooled_latency_ms().values(),
        recalled.pooled_latency_ms().values()
    );
}

/// The acceptance bar for the parallel executor: an entire figure —
/// concurrent rows fanned out as per-server jobs — renders byte-identically
/// whether one worker or many drain the pool.
#[test]
fn figure_tables_are_worker_count_invariant() {
    let fig12 = |workers: usize| {
        let ex = Experiments::quick().on_plan(RunPlan::leaked(workers));
        ex.fig12().to_table().render()
    };
    let one = fig12(1);
    let two = fig12(2);
    let many = fig12(8);
    assert_eq!(one, two, "1 vs 2 workers");
    assert_eq!(one, many, "1 vs 8 workers");
    assert!(one.contains("Figure 12"));
}
