//! Reproducibility: the entire stack is deterministic given a seed.

use hh_core::{run_cluster, Scale, SystemSpec};

fn tiny() -> Scale {
    Scale {
        servers: 2,
        requests_per_vm: 80,
        rps_per_vm: 800.0,
    }
}

#[test]
fn identical_seeds_produce_identical_metrics() {
    let a = run_cluster(SystemSpec::hardharvest_block(), tiny(), 123);
    let b = run_cluster(SystemSpec::hardharvest_block(), tiny(), 123);
    assert_eq!(a.pooled_latency_ms().values(), b.pooled_latency_ms().values());
    assert_eq!(a.avg_busy_cores(), b.avg_busy_cores());
    for (sa, sb) in a.servers.iter().zip(&b.servers) {
        assert_eq!(sa.batch_units, sb.batch_units);
        assert_eq!(sa.reassignments, sb.reassignments);
        assert_eq!(sa.reclaims, sb.reclaims);
        assert_eq!(sa.l2_hits, sb.l2_hits);
        assert_eq!(sa.l2_misses, sb.l2_misses);
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_cluster(SystemSpec::no_harvest(), tiny(), 1);
    let b = run_cluster(SystemSpec::no_harvest(), tiny(), 2);
    assert_ne!(
        a.pooled_latency_ms().values(),
        b.pooled_latency_ms().values(),
        "different seeds should perturb the run"
    );
}

#[test]
fn parallel_servers_do_not_race() {
    // Thread scheduling must not leak into results: server i's metrics
    // depend only on its own config/seed.
    let a = run_cluster(SystemSpec::harvest_block(), tiny(), 77);
    let b = run_cluster(SystemSpec::harvest_block(), tiny(), 77);
    for (sa, sb) in a.servers.iter().zip(&b.servers) {
        assert_eq!(
            sa.pooled_latency_ms().values(),
            sb.pooled_latency_ms().values()
        );
    }
}
