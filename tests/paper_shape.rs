//! Cross-crate integration tests asserting the *qualitative shape* of the
//! paper's results: who wins, in which direction, across the five systems.
//!
//! Absolute numbers are checked loosely (this is a reduced-scale run of a
//! cycle-approximate model); orderings are checked strictly.

use hh_core::{run_cluster, ClusterMetrics, Scale, SystemSpec};

fn tiny() -> Scale {
    Scale {
        servers: 2,
        requests_per_vm: 120,
        rps_per_vm: 800.0,
    }
}

fn run(system: SystemSpec) -> ClusterMetrics {
    run_cluster(system, tiny(), 0xBEEF)
}

#[test]
fn tail_latency_ordering_matches_figure_11() {
    let no = run(SystemSpec::no_harvest());
    let sw = run(SystemSpec::harvest_block());
    let hh = run(SystemSpec::hardharvest_block());

    let no_p99 = no.pooled_latency_ms().p99();
    let sw_p99 = sw.pooled_latency_ms().p99();
    let hh_p99 = hh.pooled_latency_ms().p99();

    // Software harvesting inflates the tail (paper: 4.1x over NoHarvest;
    // our agent model reproduces the direction at a smaller factor);
    // HardHarvest beats software harvesting soundly and undercuts
    // NoHarvest (paper: -28.4%).
    assert!(
        sw_p99 > 1.2 * no_p99,
        "software harvesting should inflate the tail: {sw_p99:.2} vs {no_p99:.2}"
    );
    assert!(
        hh_p99 < 0.75 * sw_p99,
        "HardHarvest should slash the software tail: {hh_p99:.2} vs {sw_p99:.2}"
    );
    assert!(
        hh_p99 < 1.05 * no_p99,
        "HardHarvest should not exceed NoHarvest: {hh_p99:.2} vs {no_p99:.2}"
    );
}

#[test]
fn throughput_ordering_matches_figure_17() {
    let no = run(SystemSpec::no_harvest());
    let sw = run(SystemSpec::harvest_term());
    let hh = run(SystemSpec::hardharvest_block());

    let total = |m: &ClusterMetrics| -> f64 { (0..2).map(|i| m.batch_throughput(i)).sum() };
    let (t_no, t_sw, t_hh) = (total(&no), total(&sw), total(&hh));
    assert!(
        t_sw > t_no,
        "software harvesting should add batch throughput: {t_sw:.0} vs {t_no:.0}"
    );
    assert!(
        t_hh > t_sw,
        "HardHarvest-Block should beat Harvest-Term: {t_hh:.0} vs {t_sw:.0}"
    );
}

#[test]
fn utilization_ordering_matches_section_6_7() {
    let no = run(SystemSpec::no_harvest());
    let sw = run(SystemSpec::harvest_term());
    let hh = run(SystemSpec::hardharvest_block());
    assert!(sw.avg_busy_cores() > no.avg_busy_cores());
    assert!(hh.avg_busy_cores() > sw.avg_busy_cores());
}

#[test]
fn median_latency_is_less_sensitive_than_tail() {
    // Figure 16: software harvesting barely moves the median (paper:
    // +7.9%) while the tail explodes (paper: 3.4x).
    let no = run(SystemSpec::no_harvest());
    let sw = run(SystemSpec::harvest_term());
    let median_ratio = sw.pooled_latency_ms().median() / no.pooled_latency_ms().median();
    let tail_ratio = sw.pooled_latency_ms().p99() / no.pooled_latency_ms().p99();
    assert!(
        tail_ratio > median_ratio,
        "tail ratio {tail_ratio:.2} should exceed median ratio {median_ratio:.2}"
    );
}

#[test]
fn term_vs_block_tradeoff() {
    // -Block harvests more aggressively: more reassignments and at least
    // as much batch throughput as -Term under the same hardware.
    let term = run(SystemSpec::hardharvest_term());
    let block = run(SystemSpec::hardharvest_block());
    let t_term: f64 = (0..2).map(|i| term.batch_throughput(i)).sum();
    let t_block: f64 = (0..2).map(|i| block.batch_throughput(i)).sum();
    assert!(
        t_block >= 0.95 * t_term,
        "block {t_block:.0} should not trail term {t_term:.0}"
    );
    let re_term: u64 = term.servers().iter().map(|s| s.reassignments).sum();
    let re_block: u64 = block.servers().iter().map(|s| s.reassignments).sum();
    assert!(re_block >= re_term);
}

#[test]
fn all_requests_complete_in_every_system() {
    for system in SystemSpec::evaluated_five() {
        let m = run(system);
        assert_eq!(
            m.completed(),
            (2 * 8 * 120) as u64,
            "system {} dropped requests",
            system.name
        );
    }
}
