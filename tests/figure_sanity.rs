//! Figure-level sanity: each experiment runner produces the right rows and
//! qualitatively sane series at a miniature scale.

use hh_core::{Experiments, Scale};

fn mini() -> Experiments {
    Experiments {
        scale: Scale {
            servers: 1,
            requests_per_vm: 60,
            rps_per_vm: 800.0,
        },
        seed: 0xF16,
        ..Experiments::quick()
    }
}

#[test]
fn fig4_reassignment_only_ordering() {
    let fig = mini().fig4();
    let labels: Vec<&str> = fig.rows.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(
        labels,
        ["No-Move", "KVM-Term", "KVM-Block", "Opt-Term", "Opt-Block"]
    );
    let no_move = fig.avg_of("No-Move");
    // KVM's 5 ms hypervisor reassignments must inflate the tail far more
    // than SmartHarvest's optimized path (Figure 4's core finding).
    assert!(fig.avg_of("KVM-Term") > no_move, "KVM-Term must hurt");
    assert!(
        fig.avg_of("KVM-Block") > fig.avg_of("Opt-Block"),
        "KVM should be worse than Opt"
    );
    assert!(fig.avg_of("Opt-Term") > no_move * 0.99);
}

#[test]
fn fig5_flushing_adds_to_reassignment() {
    let fig = mini().fig5();
    // Flush-only bars sit above the no-flush baseline; adding reassignment
    // (Harvest-*) cannot make things better than flush-only.
    let base = fig.avg_of("No Flush");
    let flush_b = fig.avg_of("Flush-Block");
    let harvest_b = fig.avg_of("Harvest-Block");
    assert!(flush_b > base, "flushing must cost: {flush_b} vs {base}");
    assert!(
        harvest_b > base,
        "flush+reassign must cost: {harvest_b} vs {base}"
    );
}

#[test]
fn fig7_capacity_series_shape() {
    let fig = mini().fig7();
    let labels: Vec<&str> = fig.rows.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, ["Inf", "100%", "75%", "50%", "25%"]);
    // Infinite caches are a lower bound; a quarter of the hierarchy is the
    // worst of the sweep (the paper's point is the degradation is small,
    // which EXPERIMENTS.md records — here we only assert the ordering).
    let inf = fig.avg_of("Inf");
    let quarter = fig.avg_of("25%");
    let full = fig.avg_of("100%");
    assert!(inf <= full * 1.02, "Inf {inf} should not exceed full {full}");
    assert!(
        quarter >= full * 0.98,
        "25% ({quarter}) should not beat full ({full})"
    );
}

#[test]
fn fig6_breakdown_has_overhead_components() {
    let fig = mini().fig6();
    assert_eq!(fig.services.len(), 8);
    let slowdown = fig.slowdown();
    assert!(
        slowdown > 1.05,
        "software harvesting must slow single requests: {slowdown:.2}"
    );
    // Reassignment and flush components are non-zero somewhere.
    assert!(fig.reassign_ms.iter().sum::<f64>() > 0.0);
    assert!(fig.flush_ms.iter().sum::<f64>() > 0.0);
}

#[test]
fn fig19_sweeps_eviction_candidates() {
    let fig = mini().fig19();
    let labels: Vec<&str> = fig.rows.iter().map(|r| r.label.as_str()).collect();
    assert_eq!(labels, ["25%", "50%", "75%", "100%"]);
    for r in &fig.rows {
        assert!(r.average_ms > 0.0, "{}", r.label);
    }
}

#[test]
fn extension_experiments_render() {
    let ex = mini();
    let adaptive = ex.adaptive().render();
    assert!(adaptive.contains("HardHarvest-Adaptive"));
    let regions = ex.region_sweep().to_table().render();
    assert!(regions.contains("1/2 ways"));
    let overflow = ex.overflow_pressure().render();
    assert!(overflow.contains("32"));
}
