//! The paper's headline experiment as a runnable scenario: 8 SocialNet
//! microservices in Primary VMs + one batch job per server's Harvest VM,
//! compared across all five evaluated systems (Figures 11, 16, 17 and the
//! Section 6.7 utilization numbers).
//!
//! ```text
//! cargo run --release --example socialnet_cluster
//! ```

use hh_core::{run_cluster, Scale, SystemSpec, Table};
use hh_workload::ServiceCatalog;

fn main() {
    let scale = Scale::quick();
    let systems = SystemSpec::evaluated_five();
    let services: Vec<&str> = ServiceCatalog::socialnet().iter().map(|(_, p)| p.name).collect();

    let mut p99 = Table::new(
        std::iter::once("P99 [ms]".to_string())
            .chain(services.iter().map(|s| s.to_string()))
            .chain(["Avg".to_string()])
            .collect(),
    );
    let mut summary = Table::new(vec![
        "System".into(),
        "median ms".into(),
        "p99 ms".into(),
        "busy cores".into(),
        "norm. batch thpt".into(),
    ]);

    let base = run_cluster(systems[0], scale, 7);
    let base_thpt: f64 = (0..scale.servers).map(|i| base.batch_throughput(i)).sum();

    for system in systems {
        let m = run_cluster(system, scale, 7);
        let mut vals: Vec<f64> = (0..services.len()).map(|s| m.service_p99_ms(s)).collect();
        let mut pooled = m.pooled_latency_ms();
        vals.push(pooled.p99());
        p99.row_f64(system.name, &vals);

        let thpt: f64 = (0..scale.servers).map(|i| m.batch_throughput(i)).sum();
        summary.row_f64(
            system.name,
            &[
                pooled.median(),
                pooled.p99(),
                m.avg_busy_cores(),
                thpt / base_thpt.max(1e-9),
            ],
        );
    }

    println!("Per-service P99 tail latency (Figure 11 shape):\n{}", p99.render());
    println!(
        "System summary (Figures 16/17 + Section 6.7 shape):\n{}",
        summary.render()
    );
}
