//! Extension scenario: *adaptive* harvesting (paper Section 4.1.5 future
//! work). The system monitors how long each VM's requests stay blocked on
//! I/O; when blocks are too short to amortize a core round-trip, it stops
//! stealing on blocking calls and falls back to stealing on termination
//! only.
//!
//! ```text
//! cargo run --release --example adaptive_harvesting
//! ```

use hh_core::Experiments;

fn main() {
    let ex = Experiments {
        seed: 0xADA,
        ..Experiments::quick()
    };
    println!("Comparing HardHarvest-Term / -Adaptive / -Block…\n");
    println!("{}", ex.adaptive().render());
    println!(
        "Adaptive should sit between Term and Block: most of Block's\n\
         harvest throughput, with fewer poorly-amortized reassignments."
    );
}
