//! Quickstart: simulate one HardHarvest cluster and print the headline
//! metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hh_core::{run_cluster, Scale, SystemSpec};

fn main() {
    let scale = Scale::quick();
    println!("Simulating a {}-server cluster (Table 1 configuration)…", scale.servers);

    for system in [SystemSpec::no_harvest(), SystemSpec::hardharvest_block()] {
        let m = run_cluster(system, scale, 42);
        let mut lat = m.pooled_latency_ms();
        println!("\n== {} ==", system.name);
        println!("  completed requests : {}", m.completed());
        println!("  median latency     : {:.3} ms", lat.median());
        println!("  P99 tail latency   : {:.3} ms", lat.p99());
        println!("  avg busy cores     : {:.1} / 36", m.avg_busy_cores());
        println!(
            "  harvest throughput : {:.0} units/s (job: {})",
            m.batch_throughput(0),
            hh_workload::BatchCatalog::paper().get(0).name
        );
        println!("  L2 hit rate        : {:.1} %", m.l2_hit_rate() * 100.0);
    }

    println!("\nSee `cargo run --release -p hh-bench --bin figures` for every paper figure.");
}
