//! The optimization-ablation scenarios: the Figure 12 cumulative ladder
//! (hardware optimizations applied one by one on top of software
//! harvesting), the Figure 13 Sched/CtxtSw ablation, and the Figure 15
//! ladder without harvesting.
//!
//! ```text
//! cargo run --release --example ablation_study
//! ```

use hh_core::{run_cluster, Scale, SystemSpec, Table};

fn ladder(title: &str, systems: Vec<SystemSpec>, scale: Scale, baseline_idx: usize) {
    let mut t = Table::new(vec![
        title.to_string(),
        "P99 [ms]".into(),
        "vs baseline".into(),
    ]);
    let mut baseline = None;
    for (i, s) in systems.into_iter().enumerate() {
        let m = run_cluster(s, scale, 11);
        let p99 = m.pooled_latency_ms().p99();
        if i == baseline_idx {
            baseline = Some(p99);
        }
        let delta = baseline
            .map(|b| format!("{:+.1}%", (p99 / b - 1.0) * 100.0))
            .unwrap_or_else(|| "-".into());
        t.row(vec![s.name.into(), format!("{p99:.3}"), delta]);
    }
    println!("{}", t.render());
}

fn main() {
    let scale = Scale::quick();
    println!("Figure 12: cumulative hardware optimizations on Harvest-Block\n");
    ladder("Fig 12 step", SystemSpec::fig12_ladder(), scale, 1);

    println!("Figure 13: Sched vs CtxtSw ablation\n");
    ladder("Fig 13 variant", SystemSpec::fig13_ablation(), scale, 0);

    println!("Figure 15: optimizations without core harvesting\n");
    ladder("Fig 15 step", SystemSpec::fig15_ladder(), scale, 0);
}
