//! The Figure 14 replacement-policy study: L2 hit rate of vanilla LRU,
//! SRRIP, HardHarvest's Algorithm 1, and offline-optimal Belady on the
//! same recorded trace of microservice invocations interleaved with
//! harvest episodes.
//!
//! ```text
//! cargo run --release --example replacement_policy_lab
//! ```

use hh_core::{ReplacementLab, Table};

fn main() {
    let lab = ReplacementLab::default();
    println!(
        "Recording {} invocations per service, then replaying through 4 policies…",
        lab.invocations
    );
    let rows = lab.run();

    let mut t = Table::new(vec![
        "Service".into(),
        "LRU".into(),
        "RRIP".into(),
        "HardHarvest".into(),
        "Belady".into(),
    ]);
    for r in &rows {
        t.row_f64(r.service, &[r.lru, r.rrip, r.hardharvest, r.belady]);
    }
    let n = rows.len() as f64;
    let avg = |f: fn(&hh_core::PolicyHitRates) -> f64| rows.iter().map(f).sum::<f64>() / n;
    let (lru, rrip, hh, belady) = (
        avg(|r| r.lru),
        avg(|r| r.rrip),
        avg(|r| r.hardharvest),
        avg(|r| r.belady),
    );
    t.row_f64("Avg", &[lru, rrip, hh, belady]);
    println!("{}", t.render());

    println!("HardHarvest vs LRU   : {:+.1} %", (hh / lru - 1.0) * 100.0);
    println!("HardHarvest vs RRIP  : {:+.1} %", (hh / rrip - 1.0) * 100.0);
    println!("Gap to Belady        : {:.1} %", (1.0 - hh / belady) * 100.0);
    println!("(paper: +11.3 % over LRU, +8.2 % over RRIP, within 3.1 % of Belady)");
}
