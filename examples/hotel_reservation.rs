//! Workload-diversity scenario: the hotelReservation-style composition
//! (6 services: Search, Geo, Rate, Profile, Recommend, Reserve) instead of
//! the paper's SocialNet, comparing NoHarvest against HardHarvest-Block.
//!
//! The paper's conclusions should not be SocialNet-specific: HardHarvest's
//! benefit comes from generic microservice properties (short requests,
//! frequent blocking RPCs, small shared working sets), all of which this
//! composition also has.
//!
//! ```text
//! cargo run --release --example hotel_reservation
//! ```

use hh_core::{SystemSpec, Table};
use hh_server::{ServerConfig, ServerSim};
use hh_workload::{CatalogKind, ServiceCatalog};

fn main() {
    let catalog = ServiceCatalog::hotel_reservation();
    let names: Vec<&str> = catalog.iter().map(|(_, p)| p.name).collect();

    let mut table = Table::new(
        std::iter::once("P99 [ms]".to_string())
            .chain(names.iter().map(|s| s.to_string()))
            .chain(["busy cores".to_string()])
            .collect(),
    );

    for system in [SystemSpec::no_harvest(), SystemSpec::hardharvest_block()] {
        let mut cfg = ServerConfig::table1(system);
        cfg.catalog = CatalogKind::HotelReservation;
        cfg.primary_vms = 6; // one VM per service
        cfg.requests_per_vm = 300;
        cfg.seed = 0x407E1;
        let m = ServerSim::new(cfg).run();
        let mut row: Vec<f64> = (0..names.len())
            .map(|s| {
                let mut lat = m.services[s].latency_ms.clone();
                lat.p99()
            })
            .collect();
        row.push(m.avg_busy_cores());
        table.row_f64(system.name, &row);
    }

    println!("hotelReservation composition, 6 Primary VMs + 1 Harvest VM:\n");
    println!("{}", table.render());
    println!("HardHarvest should hold or beat NoHarvest tails on this composition too.");
}
