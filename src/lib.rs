//! # hardharvest — a Rust reproduction of *HardHarvest: Hardware-Supported
//! Core Harvesting for Microservices* (ISCA 2025)
//!
//! This facade crate re-exports the full public API of the workspace; see
//! [`hh_core`] for the top-level cluster/experiment interface and the
//! README for the architecture overview.
//!
//! ```no_run
//! use hardharvest::{run_cluster, Scale, SystemSpec};
//!
//! let metrics = run_cluster(SystemSpec::hardharvest_block(), Scale::quick(), 42);
//! println!("P99 = {:.2} ms", metrics.pooled_latency_ms().p99());
//! ```

#![warn(missing_docs)]

pub use hh_core::*;

/// The substrate layers, for users who want to work below the top-level
/// API (cache experiments, controller studies, custom workloads).
pub mod layers {
    pub use hh_hwqueue as hwqueue;
    pub use hh_mem as mem;
    pub use hh_noc as noc;
    pub use hh_sim as sim;
    pub use hh_workload as workload;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_top_level_api() {
        // Compile-time check that key types are reachable.
        fn assert_exists<T>() {}
        assert_exists::<crate::SystemSpec>();
        assert_exists::<crate::Scale>();
        assert_exists::<crate::Experiments>();
        assert_exists::<crate::layers::mem::WayMask>();
    }
}
