//! Offline stand-in for `criterion`.
//!
//! Provides the `black_box` / `Criterion` / `criterion_group!` /
//! `criterion_main!` surface the bench targets use, backed by a simple
//! fixed-iteration timer instead of criterion's statistical engine.
//! Each `Bencher::iter` call runs a short warmup, then a measured batch,
//! and prints mean wall time per iteration. Removing the
//! `[patch.crates-io]` entries in the workspace manifest restores the
//! real criterion.

use std::time::Instant;

/// Opaque value barrier (re-exported `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Timing context handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    name: String,
}

impl Bencher {
    /// Times `f`: 2 warmup calls, then a measured batch sized so the
    /// batch takes roughly 100ms (capped at 1000 iterations).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let probe_start = Instant::now();
        black_box(f());
        let probe = probe_start.elapsed().as_secs_f64().max(1e-9);
        let iters = ((0.1 / probe) as u64).clamp(1, 1000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let per_iter = start.elapsed().as_secs_f64() / iters as f64;
        println!("{:<40} {:>12.0} ns/iter ({} iters)", self.name, per_iter * 1e9, iters);
    }
}

/// Group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    prefix: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one named benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            name: format!("{}/{}", self.prefix, name),
        };
        f(&mut b);
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.to_string(),
            _parent: self,
        }
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            name: name.to_string(),
        };
        f(&mut b);
        self
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($name:ident; $($rest:tt)*) => {
        compile_error!("criterion shim: configured groups are not supported");
    };
}

/// Entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
