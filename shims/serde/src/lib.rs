//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public config
//! and metrics types but never serializes through serde at runtime (all
//! report rendering is hand-written). This shim keeps those derives
//! compiling in a network-less build environment: the traits are empty
//! markers with blanket impls and the derive macros expand to nothing.
//! Dropping the `[patch.crates-io]` entries in the workspace manifest
//! restores the real serde.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker stand-in for `serde::Serializer`.
pub trait Serializer {}

/// Marker stand-in for `serde::Deserializer`.
pub trait Deserializer<'de> {}
