//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `proptest!` with `pat in strategy` bindings, `prop_assert*`,
//! `prop_assume!`, `prop_oneof!`, `prop::collection::vec`, `any`,
//! `Just`, numeric range strategies and tuples — on top of a small
//! deterministic RNG. Each test samples a fixed number of cases seeded
//! from the test's name, so failures reproduce exactly across runs and
//! machines. There is no shrinking: a failing case panics with the
//! sampled inputs left to the assertion message.
//!
//! The build environment has no network access to crates.io; removing
//! the `[patch.crates-io]` entries in the workspace manifest restores
//! the real proptest.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest defaults to 256; 64 keeps the offline
            // suite fast while still exercising the properties.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use std::ops::{Range, RangeInclusive};

    /// Deterministic splitmix64 generator used for all sampling.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from an arbitrary integer.
        pub fn new(seed: u64) -> Self {
            TestRng(seed ^ 0x9e37_79b9_7f4a_7c15)
        }

        /// Seeds from a test name (FNV-1a), so each property gets a
        /// stable, distinct stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng::new(h)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() - *self.start()) as u64 + 1;
                    *self.start() + (rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = self.end().wrapping_sub(*self.start()) as u64 + 1;
                    self.start().wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    signed_range_strategy!(i32, i64);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }

    /// Inclusive length bounds for collection strategies. Mirroring the
    /// real proptest's `SizeRange` conversions keeps unsuffixed literals
    /// like `1..200` inferring as `usize`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty length range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec`s with a length drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: SizeRange,
    }

    impl<S> VecStrategy<S> {
        pub(crate) fn new(element: S, len: SizeRange) -> Self {
            VecStrategy { element, len }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi_inclusive - self.len.lo) as u64 + 1;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Equal-weight choice among boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union from its arms; at least one is required.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Boxes a strategy for use in a [`Union`] (helper for `prop_oneof!`
    /// so the arm types unify by inference).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Clone, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `proptest::prop` namespace (collection strategies).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{SizeRange, Strategy, VecStrategy};

        /// `Vec` strategy: `element` repeated a `len`-drawn number of
        /// times.
        pub fn vec<S, L>(element: S, len: L) -> VecStrategy<S>
        where
            S: Strategy,
            L: Into<SizeRange>,
        {
            VecStrategy::new(element, len.into())
        }
    }
}

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]`-style function running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::strategy::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    // The closure gives `prop_assume!` an early exit that
                    // skips just this case.
                    let mut __one_case = || {
                        $(
                            let $pat =
                                $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                        )+
                        $body
                    };
                    __one_case();
                }
            }
        )*
    };
}

/// Asserts a condition, panicking with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

/// Asserts equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Equal-weight choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::strategy::TestRng::from_name("x");
        let mut b = crate::strategy::TestRng::from_name("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::strategy::TestRng::new(7);
        for _ in 0..256 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.25f64..=0.75).sample(&mut rng);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_round_trip(xs in prop::collection::vec(0u8..3, 1..10), b in any::<bool>()) {
            prop_assume!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 3));
            prop_assert_eq!(b, b);
        }
    }
}
