//! Offline stand-in for `serde_derive`.
//!
//! The reproduction only uses `#[derive(Serialize, Deserialize)]` as
//! documentation of intent — nothing serializes through serde at runtime
//! (reports are rendered by hand). The build environment has no network
//! access to crates.io, so these derives expand to nothing; the real
//! serde can be swapped back in by removing the `[patch.crates-io]`
//! entries in the workspace manifest.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
