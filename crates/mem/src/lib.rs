//! Memory-hierarchy simulator for the HardHarvest reproduction.
//!
//! This crate models everything Section 4.2 of the paper touches:
//!
//! * [`SetAssocCache`] — a set-associative cache or TLB with per-way
//!   *Harvest* / *Non-Harvest* partitioning ([`WayMask`]), a per-entry
//!   `Shared` bit, and pluggable replacement ([`PolicyKind`]): vanilla LRU,
//!   SRRIP, and the paper's Algorithm 1 with its eviction-candidate window;
//! * [`BeladyCache`] — an offline optimal-replacement simulator used as the
//!   upper bound in the Figure 14 policy study;
//! * [`CoreMem`] — a core's private L1I/L1D/L2 caches and L1/L2 TLBs wired to
//!   a CAT-partitioned shared LLC ([`Llc`]) and a banked DRAM model
//!   ([`Dram`]), producing per-access stall-cycle costs;
//! * [`flush`] — the latency models for software `wbinvd`-style flushes and
//!   HardHarvest's 1000-cycle in-hardware harvest-region flush.
//!
//! The access-by-access fidelity is what makes cold-restart costs, partition
//! contention, and replacement-policy hit rates emerge organically in the
//! system simulation instead of being injected as constants.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod access;
mod belady;
mod cache;
mod config;
mod dram;
pub mod flush;
mod hierarchy;
mod policy;
mod waymask;

pub use access::{Access, AccessKind, PageClass};
pub use belady::{BeladyCache, TraceOp};
pub use cache::{AccessOutcome, BatchOutcome, BatchRef, CacheStats, SetAssocCache, WayState};
pub use config::{CacheConfig, HierarchyConfig, LlcConfig, TlbConfig};
pub use dram::{Dram, DramConfig};
pub use flush::FlushModel;
pub use hierarchy::{AccessCost, CoreMem, FlushStats, Llc, VisSplit, Visibility};
pub use policy::PolicyKind;
pub use waymask::WayMask;
