//! Offline optimal replacement (Belady/MIN) for the Figure 14 policy study.
//!
//! Belady's algorithm needs the future, so it cannot run inside the online
//! system simulation; instead the replacement-policy lab records an access
//! trace and replays it here. The same trace replayed through
//! [`crate::SetAssocCache`] under LRU/RRIP/HardHarvest gives the comparable
//! online numbers.

use std::collections::BTreeMap;

use crate::{CacheStats, WayMask};

/// One operation in a recorded trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A reference to a line/page key under an allowed-way mask.
    Access {
        /// VM-namespaced line or page key.
        key: u64,
        /// Ways the access may use.
        allowed: WayMask,
    },
    /// A flush of the given ways (cross-VM transition).
    InvalidateWays(WayMask),
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    key: u64,
    valid: bool,
    /// Trace index of this line's next reference (usize::MAX = never).
    next_use: usize,
}

/// An offline cache simulator with optimal (farthest-next-use) replacement.
///
/// # Example
///
/// ```
/// use hh_mem::{BeladyCache, TraceOp, WayMask};
///
/// let all = WayMask::all(2);
/// let trace = vec![
///     TraceOp::Access { key: 1, allowed: all },
///     TraceOp::Access { key: 2, allowed: all },
///     TraceOp::Access { key: 3, allowed: all },
///     TraceOp::Access { key: 1, allowed: all },
/// ];
/// let stats = BeladyCache::new(1, 2).run(&trace);
/// // Optimal keeps key 1 (reused) and evicts key 2 (never reused).
/// assert_eq!(stats.hits, 1);
/// ```
#[derive(Debug)]
pub struct BeladyCache {
    sets: usize,
    ways: usize,
}

impl BeladyCache {
    /// Creates a simulator with the given geometry.
    ///
    /// # Panics
    /// Panics if `sets` or `ways` is zero or `ways > 32`.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0 && ways <= 32);
        BeladyCache { sets, ways }
    }

    /// Replays `trace` with optimal replacement and returns hit statistics.
    ///
    /// The oracle is *flush-aware*: an entry whose next reuse lies beyond a
    /// flush of its way counts as dead (it can never realize that hit), so
    /// the victim choice prefers it — the future knowledge a real Belady
    /// bound needs in a partitioned, flushing cache. (Even so, greedy
    /// farthest-future eviction is a near-optimal heuristic rather than a
    /// provable optimum once invalidations and per-access way masks are in
    /// play; the classic MIN exchange argument does not carry over.)
    pub fn run(&self, trace: &[TraceOp]) -> CacheStats {
        // Pass 1a: successor index for each access.
        let mut next = vec![usize::MAX; trace.len()];
        let mut last_seen: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, op) in trace.iter().enumerate() {
            if let TraceOp::Access { key, .. } = op {
                if let Some(&prev) = last_seen.get(key) {
                    next[prev] = i;
                }
                last_seen.insert(*key, i);
            }
        }
        // Pass 1b: flush positions per way (to detect doomed entries).
        let mut flushes_at: Vec<Vec<usize>> = vec![Vec::new(); self.ways];
        for (i, op) in trace.iter().enumerate() {
            if let TraceOp::InvalidateWays(mask) = op {
                for w in mask.iter().filter(|&w| w < self.ways) {
                    flushes_at[w].push(i);
                }
            }
        }
        // Would an entry in way `w`, alive at time `i`, survive until its
        // next use at `k`?
        let doomed = |w: usize, i: usize, k: usize| -> bool {
            if k == usize::MAX {
                return true; // never reused: as good as dead
            }
            let fl = &flushes_at[w];
            match fl.binary_search(&i) {
                Ok(p) | Err(p) => fl.get(p).is_some_and(|&f| f < k),
            }
        };

        // Pass 2: simulate.
        let mut slots = vec![Slot::default(); self.sets * self.ways];
        let mut stats = CacheStats::default();
        for (i, op) in trace.iter().enumerate() {
            match *op {
                TraceOp::InvalidateWays(mask) => {
                    for set in 0..self.sets {
                        for w in mask.iter().filter(|&w| w < self.ways) {
                            let s = &mut slots[set * self.ways + w];
                            if s.valid {
                                stats.flushed += 1;
                                s.valid = false;
                            }
                        }
                    }
                }
                TraceOp::Access { key, allowed } => {
                    let set = (key % self.sets as u64) as usize;
                    let base = set * self.ways;
                    let hit_way = (0..self.ways).find(|&w| {
                        allowed.contains(w) && slots[base + w].valid && slots[base + w].key == key
                    });
                    if let Some(w) = hit_way {
                        stats.hits += 1;
                        slots[base + w].next_use = next[i];
                        continue;
                    }
                    stats.misses += 1;
                    if allowed.is_empty() {
                        continue;
                    }
                    // Effective next use: ∞ for entries that die in a flush
                    // before their reuse.
                    let eff = |w: usize| -> usize {
                        let s = &slots[base + w];
                        if doomed(w, i, s.next_use) {
                            usize::MAX
                        } else {
                            s.next_use
                        }
                    };
                    // Placement with future knowledge: put the line where it
                    // *survives* until its reuse — a free slot in a
                    // surviving way first, then evict the farthest-reused
                    // resident of a surviving way (dead residents first).
                    // Lines that survive nowhere just park in any free slot
                    // (equivalent to a bypass for hit counting).
                    let surviving = |w: &usize| !doomed(*w, i, next[i]);
                    let victim = allowed
                        .iter()
                        .filter(|&w| w < self.ways)
                        .filter(surviving)
                        .find(|&w| !slots[base + w].valid)
                        .or_else(|| {
                            allowed
                                .iter()
                                .filter(|&w| w < self.ways)
                                .filter(surviving)
                                .max_by_key(|&w| eff(w))
                                .filter(|&w| eff(w) > next[i])
                        })
                        .or_else(|| {
                            allowed
                                .iter()
                                .filter(|&w| w < self.ways)
                                .find(|&w| !slots[base + w].valid)
                        });
                    if let Some(w) = victim {
                        slots[base + w] = Slot {
                            key,
                            valid: true,
                            next_use: next[i],
                        };
                    }
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL2: WayMask = WayMask(0b11);

    fn acc(key: u64) -> TraceOp {
        TraceOp::Access { key, allowed: ALL2 }
    }

    #[test]
    fn optimal_beats_lru_on_cyclic_trace() {
        // Classic: cyclic access over 3 keys with 2 ways. LRU gets 0 hits;
        // Belady keeps one key resident.
        let trace: Vec<TraceOp> = (0..30).map(|i| acc(i % 3)).collect();
        let stats = BeladyCache::new(1, 2).run(&trace);
        // LRU equivalent would be 0 hits; optimal achieves ~half.
        assert!(stats.hits >= 13, "belady hits = {}", stats.hits);
    }

    #[test]
    fn never_reused_lines_are_victims() {
        let trace = vec![acc(1), acc(2), acc(3), acc(1), acc(2)];
        let stats = BeladyCache::new(1, 2).run(&trace);
        assert_eq!(stats.hits, 2); // keys 1 and 2 hit; 3 was the victim
    }

    #[test]
    fn flush_invalidates() {
        let trace = vec![
            acc(1),
            TraceOp::InvalidateWays(WayMask::all(2)),
            acc(1),
        ];
        let stats = BeladyCache::new(1, 2).run(&trace);
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.flushed, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn respects_allowed_mask() {
        let only_way0 = WayMask::lower(1);
        let trace = vec![
            TraceOp::Access { key: 1, allowed: only_way0 },
            TraceOp::Access { key: 2, allowed: only_way0 },
            TraceOp::Access { key: 1, allowed: only_way0 },
        ];
        let stats = BeladyCache::new(1, 2).run(&trace);
        // With one allowed way, optimal replacement bypasses the
        // never-reused key 2 and keeps key 1 resident for its re-use.
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn empty_allowed_mask_never_caches() {
        let trace = vec![
            TraceOp::Access { key: 1, allowed: WayMask::EMPTY },
            TraceOp::Access { key: 1, allowed: WayMask::EMPTY },
        ];
        let stats = BeladyCache::new(1, 2).run(&trace);
        assert_eq!(stats.misses, 2);
    }
}
