//! A core's private memory hierarchy wired to the shared LLC and DRAM.

use hh_sim::{Cycles, VmId};
use serde::{Deserialize, Serialize};

use crate::{
    Access, CacheStats, Dram, HierarchyConfig, PolicyKind, SetAssocCache, WayMask,
};

/// What the executing context is allowed to see in the private structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Visibility {
    /// A Primary VM with full visibility of every way.
    Primary,
    /// A Primary VM immediately after reclaiming its core: the harvest
    /// region is still being flushed in the background, so only the
    /// non-harvest ways are usable (Section 4.2.1).
    PrimaryFlushPending,
    /// A Harvest VM: restricted to the harvest region.
    Harvest,
}

/// L2 hit/miss counts split by executing-context visibility: harvest-VM
/// references vs. primary-VM references (the paper's Figure 14 axis).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VisSplit {
    /// L2 hits under `Visibility::Primary` / `PrimaryFlushPending`.
    pub primary_hits: u64,
    /// L2 misses under `Visibility::Primary` / `PrimaryFlushPending`.
    pub primary_misses: u64,
    /// L2 hits under `Visibility::Harvest`.
    pub harvest_hits: u64,
    /// L2 misses under `Visibility::Harvest`.
    pub harvest_misses: u64,
}

/// Flush activity of one private hierarchy.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlushStats {
    /// Whole-hierarchy invalidations ([`CoreMem::flush_all`]).
    pub full_flushes: u64,
    /// Harvest-region invalidations ([`CoreMem::flush_harvest_region`]).
    pub region_flushes: u64,
    /// Total entries dropped across both kinds.
    pub lines_dropped: u64,
}

/// The cost of one memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCost {
    /// Cycles the core is stalled by this reference (after the
    /// memory-level-parallelism discount for data references).
    pub stall: Cycles,
    /// Whether the reference was ultimately served from DRAM.
    pub dram: bool,
}

/// The shared, CAT-partitioned last-level cache of one server.
///
/// Each VM owns a way mask (its CAT partition); the LLC is never flushed on
/// core reassignment because the partitions already isolate VMs
/// (Section 2.3).
#[derive(Debug, Clone)]
pub struct Llc {
    cache: SetAssocCache,
    vm_masks: Vec<WayMask>,
}

impl Llc {
    /// Builds an LLC with `ways`-associative geometry over `sets` sets and
    /// one CAT partition per VM, sized proportionally to `vm_cores` with a
    /// minimum of one way, wrapping around the way space so partitions
    /// overlap only when they must.
    ///
    /// # Panics
    /// Panics if `vm_cores` is empty or geometry is degenerate.
    pub fn new(sets: usize, ways: usize, vm_cores: &[usize]) -> Self {
        assert!(!vm_cores.is_empty(), "need at least one VM");
        let total_cores: usize = vm_cores.iter().sum();
        assert!(total_cores > 0, "VMs must have cores");
        let cache = SetAssocCache::new(sets, ways, PolicyKind::Lru, WayMask::EMPTY);
        let mut vm_masks = Vec::with_capacity(vm_cores.len());
        let mut cursor = 0usize;
        for &cores in vm_cores {
            let width = ((ways as f64 * cores as f64 / total_cores as f64).round() as usize)
                .clamp(1, ways);
            let mut mask = WayMask::EMPTY;
            for i in 0..width {
                mask = mask | WayMask(1 << ((cursor + i) % ways));
            }
            cursor = (cursor + width) % ways;
            vm_masks.push(mask);
        }
        Llc { cache, vm_masks }
    }

    /// The CAT way mask of a VM.
    ///
    /// # Panics
    /// Panics if `vm` was not declared at construction.
    pub fn vm_mask(&self, vm: VmId) -> WayMask {
        self.vm_masks[vm.index()]
    }

    /// Accesses line `key` on behalf of `vm`; returns whether it hit.
    pub fn access(&mut self, key: u64, vm: VmId, shared: bool, write: bool) -> bool {
        let mask = self.vm_masks[vm.index()];
        self.cache.access(key, shared, mask, write).hit
    }

    /// Inserts a line on behalf of `vm` without counting an access — used
    /// for DDIO deposits from the NIC (Section 4.1.3).
    pub fn ddio_deposit(&mut self, key: u64, vm: VmId) {
        let mask = self.vm_masks[vm.index()];
        // A deposit is modeled as a write access; the double-count of one
        // access per payload line is negligible and keeps the code simple.
        self.cache.access(key, false, mask, true);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of VM partitions.
    pub fn partitions(&self) -> usize {
        self.vm_masks.len()
    }
}

/// One core's private caches and TLBs.
///
/// # Example
///
/// ```
/// use hh_mem::{Access, AccessKind, CoreMem, Dram, HierarchyConfig, Llc, PageClass, Visibility};
/// use hh_sim::{Cycles, VmId};
///
/// let config = HierarchyConfig::table1();
/// let mut core = CoreMem::new(&config, 0.5, hh_mem::PolicyKind::hardharvest_default());
/// let mut llc = Llc::new(1024, 16, &[4, 4]);
/// let mut dram = Dram::default();
/// let a = Access::new(VmId(0), 0x1000, AccessKind::DataRead, PageClass::Shared);
/// let cold = core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
/// let warm = core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
/// assert!(warm.stall < cold.stall);
/// ```
#[derive(Debug, Clone)]
pub struct CoreMem {
    config: HierarchyConfig,
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    l1_tlb: SetAssocCache,
    l2_tlb: SetAssocCache,
    /// Global way-enable fraction for the Figure 7 capacity study
    /// (1.0 = full structures).
    capacity_frac: f64,
    /// Figure 7's "Inf" configuration: every reference hits at L1 cost.
    infinite: bool,
    /// Each DRAM access from this core stands in for this many real
    /// accesses (subsampled streams); see [`Dram::access_weighted`].
    dram_weight: f64,
    /// Outstanding-miss slots (busy-until horizons) when MSHR modeling is
    /// enabled.
    mshr_busy: Option<Vec<Cycles>>,
    /// L2 hit/miss counts split by executing-context visibility.
    l2_split: VisSplit,
    /// Flush activity counters.
    flushes: FlushStats,
}

impl CoreMem {
    /// Creates a cold hierarchy.
    ///
    /// `harvest_frac` is the fraction of each structure's ways forming the
    /// harvest region (Table 1 default: 50 %); `policy` applies to the L1D,
    /// L2 and TLBs (the L1I is always effectively LRU because instruction
    /// pages are all shared, Section 4.2.3).
    pub fn new(config: &HierarchyConfig, harvest_frac: f64, policy: PolicyKind) -> Self {
        let mk = |sets: usize, ways: usize| {
            SetAssocCache::new(sets, ways, policy, WayMask::fraction(ways, harvest_frac))
        };
        CoreMem {
            config: *config,
            l1i: mk(config.l1i.sets(), config.l1i.ways),
            l1d: mk(config.l1d.sets(), config.l1d.ways),
            l2: mk(config.l2.sets(), config.l2.ways),
            l1_tlb: mk(config.l1_tlb.sets(), config.l1_tlb.ways),
            l2_tlb: mk(config.l2_tlb.sets(), config.l2_tlb.ways),
            capacity_frac: 1.0,
            infinite: false,
            dram_weight: 1.0,
            mshr_busy: config.mshrs.map(|n| vec![Cycles::ZERO; n.max(1)]),
            l2_split: VisSplit::default(),
            flushes: FlushStats::default(),
        }
    }

    /// Restricts every structure to a fraction of its ways (Figure 7).
    ///
    /// # Panics
    /// Panics if `frac` is outside `(0, 1]`.
    pub fn set_capacity_fraction(&mut self, frac: f64) {
        assert!(frac > 0.0 && frac <= 1.0, "fraction out of range");
        self.capacity_frac = frac;
    }

    /// Switches the hierarchy into the idealized infinite configuration
    /// (Figure 7's "Inf" bar): every access costs an L1 hit.
    pub fn set_infinite(&mut self, infinite: bool) {
        self.infinite = infinite;
    }

    /// Sets the DRAM sampling weight of subsequent accesses (1.0 = every
    /// access simulated; N = each simulated access stands in for N).
    ///
    /// # Panics
    /// Panics if `weight < 1`.
    pub fn set_dram_weight(&mut self, weight: f64) {
        assert!(weight >= 1.0);
        self.dram_weight = weight;
    }

    /// Replaces the replacement policy in all data-bearing structures.
    pub fn set_policy(&mut self, policy: PolicyKind) {
        for c in [
            &mut self.l1i,
            &mut self.l1d,
            &mut self.l2,
            &mut self.l1_tlb,
            &mut self.l2_tlb,
        ] {
            c.set_policy(policy);
        }
    }

    fn allowed(&self, cache: &SetAssocCache, vis: Visibility) -> WayMask {
        let ways = cache.ways();
        let enabled = WayMask::fraction(ways, self.capacity_frac);
        let region = match vis {
            Visibility::Primary => WayMask::all(ways),
            Visibility::PrimaryFlushPending => cache.harvest_mask().complement(ways),
            Visibility::Harvest => cache.harvest_mask(),
        };
        enabled & region
    }

    /// Runs one reference through TLBs and caches; returns its stall cost.
    pub fn access(
        &mut self,
        now: Cycles,
        acc: Access,
        vis: Visibility,
        llc: &mut Llc,
        dram: &mut Dram,
    ) -> AccessCost {
        if self.infinite {
            let (lat, factor) = if acc.kind.is_ifetch() {
                (self.config.l1i.hit_cycles, 1.0)
            } else {
                (self.config.l1d.hit_cycles, self.config.data_stall_factor)
            };
            return AccessCost {
                stall: Cycles::new((lat as f64 * factor).round() as u64),
                dram: false,
            };
        }

        let shared = acc.class.is_shared();
        let mut latency: u64 = 0;

        // Address translation. An L1-TLB hit is overlapped with the cache
        // access and costs nothing extra.
        let page = acc.page();
        let l1_tlb_allowed = self.allowed(&self.l1_tlb, vis);
        if !self.l1_tlb.access(page, shared, l1_tlb_allowed, false).hit {
            let l2_tlb_allowed = self.allowed(&self.l2_tlb, vis);
            if self.l2_tlb.access(page, shared, l2_tlb_allowed, false).hit {
                latency += self.config.l2_tlb.hit_cycles;
            } else {
                latency += self.config.page_walk_cycles;
            }
        }

        // Cache lookup.
        let line = acc.line();
        let mut dram_hit = false;
        let (l1, l1_cfg) = if acc.kind.is_ifetch() {
            (&mut self.l1i, &self.config.l1i)
        } else {
            (&mut self.l1d, &self.config.l1d)
        };
        let l1_allowed = {
            let ways = l1.ways();
            let enabled = WayMask::fraction(ways, self.capacity_frac);
            let region = match vis {
                Visibility::Primary => WayMask::all(ways),
                Visibility::PrimaryFlushPending => l1.harvest_mask().complement(ways),
                Visibility::Harvest => l1.harvest_mask(),
            };
            enabled & region
        };
        let write = acc.kind.is_write();
        if l1.access(line, shared, l1_allowed, write).hit {
            latency += l1_cfg.hit_cycles;
        } else {
            let l2_allowed = self.allowed(&self.l2, vis);
            let l2_hit = self.l2.access(line, shared, l2_allowed, write).hit;
            let harvest = vis == Visibility::Harvest;
            match (harvest, l2_hit) {
                (false, true) => self.l2_split.primary_hits += 1,
                (false, false) => self.l2_split.primary_misses += 1,
                (true, true) => self.l2_split.harvest_hits += 1,
                (true, false) => self.l2_split.harvest_misses += 1,
            }
            if l2_hit {
                latency += self.config.l2.hit_cycles;
            } else {
                // Past the L2: when MSHR modeling is on, the miss must
                // first win one of the outstanding-miss slots.
                let mut mshr_wait = 0u64;
                let llc_hit = llc.access(line, acc.vm, shared, write);
                let mut miss_latency = self.config.llc.hit_cycles;
                if !llc_hit {
                    miss_latency += dram.access_weighted(now, line, self.dram_weight).as_u64();
                    dram_hit = true;
                }
                if let Some(slots) = &mut self.mshr_busy {
                    let idx = slots
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &t)| t)
                        .map(|(i, _)| i)
                        .expect("mshr slots non-empty");
                    let start = now.max(slots[idx]);
                    mshr_wait = (start - now).as_u64();
                    slots[idx] = start + Cycles::new(miss_latency);
                }
                latency += mshr_wait + miss_latency;
            }
        }

        let stall = if acc.kind.is_ifetch() {
            latency as f64
        } else {
            latency as f64 * self.config.data_stall_factor
        };
        AccessCost {
            stall: Cycles::new(stall.round() as u64),
            dram: dram_hit,
        }
    }

    /// Flushes and invalidates every private structure (software-style
    /// cross-VM switch). Returns the number of entries dropped.
    pub fn flush_all(&mut self) -> u64 {
        let dropped = self.l1i.invalidate_all()
            + self.l1d.invalidate_all()
            + self.l2.invalidate_all()
            + self.l1_tlb.invalidate_all()
            + self.l2_tlb.invalidate_all();
        self.flushes.full_flushes += 1;
        self.flushes.lines_dropped += dropped;
        dropped
    }

    /// Flushes and invalidates only the harvest regions (HardHarvest
    /// cross-VM switch). Returns the number of entries dropped.
    pub fn flush_harvest_region(&mut self) -> u64 {
        let mut dropped = 0;
        for c in [
            &mut self.l1i,
            &mut self.l1d,
            &mut self.l2,
            &mut self.l1_tlb,
            &mut self.l2_tlb,
        ] {
            let mask = c.harvest_mask();
            dropped += c.invalidate_ways(mask);
        }
        self.flushes.region_flushes += 1;
        self.flushes.lines_dropped += dropped;
        dropped
    }

    /// L2 hit/miss counts split by harvest vs. primary visibility.
    pub fn l2_split(&self) -> VisSplit {
        self.l2_split
    }

    /// Flush activity since construction (or the last stats reset).
    pub fn flush_stats(&self) -> FlushStats {
        self.flushes
    }

    /// Statistics of the unified L2 (the structure Figure 14 reports).
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Statistics of the L1 data cache.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// Resets all statistics (warm-up handling).
    pub fn reset_stats(&mut self) {
        for c in [
            &mut self.l1i,
            &mut self.l1d,
            &mut self.l2,
            &mut self.l1_tlb,
            &mut self.l2_tlb,
        ] {
            c.reset_stats();
        }
        self.l2_split = VisSplit::default();
        self.flushes = FlushStats::default();
    }

    /// Immutable access to the L2 (tests and labs).
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessKind, PageClass};

    fn setup() -> (CoreMem, Llc, Dram) {
        let config = HierarchyConfig::table1();
        let core = CoreMem::new(&config, 0.5, PolicyKind::hardharvest_default());
        let llc = Llc::new(1024, 16, &[4, 4, 4]);
        let dram = Dram::default();
        (core, llc, dram)
    }

    fn read(vm: u16, addr: u64) -> Access {
        Access::new(VmId(vm), addr, AccessKind::DataRead, PageClass::Private)
    }

    #[test]
    fn cold_access_reaches_dram_then_warms() {
        let (mut core, mut llc, mut dram) = setup();
        let a = read(0, 0x4000);
        let cold = core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        assert!(cold.dram);
        let warm = core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        assert!(!warm.dram);
        assert!(warm.stall < cold.stall);
    }

    #[test]
    fn ifetch_stalls_full_latency() {
        let (mut core, mut llc, mut dram) = setup();
        let i = Access::new(VmId(0), 0x8000, AccessKind::InstrFetch, PageClass::Shared);
        let d = read(0, 0x8000);
        let ci = core.access(Cycles::ZERO, i, Visibility::Primary, &mut llc, &mut dram);
        let mut core2 = CoreMem::new(
            &HierarchyConfig::table1(),
            0.5,
            PolicyKind::hardharvest_default(),
        );
        let cd = core2.access(Cycles::ZERO, d, Visibility::Primary, &mut llc, &mut dram);
        assert!(ci.stall > cd.stall, "data misses are MLP-discounted");
    }

    #[test]
    fn harvest_visibility_cannot_see_primary_lines() {
        let (mut core, mut llc, mut dram) = setup();
        // Warm a line as Primary into (likely) a non-harvest way: use a
        // Shared page so Algorithm 1 steers it there.
        let a = Access::new(VmId(0), 0xA000, AccessKind::DataRead, PageClass::Shared);
        core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        // Same address namespaced under the Harvest VM id is different; but
        // even the *same* access under Harvest visibility must not hit in
        // the non-harvest region:
        let before = core.l1d_stats().hits;
        core.access(Cycles::ZERO, a, Visibility::Harvest, &mut llc, &mut dram);
        let after = core.l1d_stats().hits;
        assert_eq!(before, after, "harvest context must miss on NH-resident line");
    }

    #[test]
    fn region_flush_preserves_non_harvest_state() {
        let (mut core, mut llc, mut dram) = setup();
        let shared = Access::new(VmId(0), 0xC000, AccessKind::DataRead, PageClass::Shared);
        core.access(Cycles::ZERO, shared, Visibility::Primary, &mut llc, &mut dram);
        core.flush_harvest_region();
        let out = core.access(Cycles::ZERO, shared, Visibility::Primary, &mut llc, &mut dram);
        assert!(!out.dram, "shared line survives a harvest-region flush");
    }

    #[test]
    fn full_flush_drops_everything() {
        let (mut core, mut llc, mut dram) = setup();
        let a = read(0, 0xE000);
        core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        let dropped = core.flush_all();
        assert!(dropped >= 1);
        // The LLC keeps its copy (it is CAT-partitioned, never flushed), so
        // the re-access is served from the LLC, not DRAM — but all private
        // levels must miss, making the stall at least an LLC round trip
        // plus a page walk, far above the 2-cycle L1 warm cost.
        let out = core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        assert!(!out.dram, "LLC still holds the line");
        assert!(
            out.stall >= Cycles::new(16),
            "stall {} should reflect private-level misses",
            out.stall
        );
    }

    #[test]
    fn infinite_mode_always_cheap() {
        let (mut core, mut llc, mut dram) = setup();
        core.set_infinite(true);
        let a = read(0, 0xF000);
        let c = core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        assert_eq!(c.stall.as_u64(), 2); // 5 cycles * 0.45 rounded
        assert!(!c.dram);
    }

    #[test]
    fn capacity_fraction_reduces_hits() {
        let config = HierarchyConfig::table1();
        let mut full = CoreMem::new(&config, 0.5, PolicyKind::Lru);
        let mut quarter = CoreMem::new(&config, 0.5, PolicyKind::Lru);
        quarter.set_capacity_fraction(0.25);
        let mut llc = Llc::new(1024, 16, &[4]);
        let mut dram = Dram::default();
        // Working set larger than a quarter of the L1D but smaller than all
        // of it: stream over 36 KB twice.
        for pass in 0..2 {
            for i in 0..576 {
                let a = read(0, i * 64);
                full.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
                quarter.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
                let _ = pass;
            }
        }
        assert!(
            full.l1d_stats().hits > quarter.l1d_stats().hits,
            "full: {:?} quarter: {:?}",
            full.l1d_stats(),
            quarter.l1d_stats()
        );
    }

    #[test]
    fn llc_partitions_isolate_vms() {
        let mut llc = Llc::new(64, 16, &[4, 4]);
        let m0 = llc.vm_mask(VmId(0));
        let m1 = llc.vm_mask(VmId(1));
        assert!(!m0.is_empty() && !m1.is_empty());
        // Fill VM0's partition; VM1's accesses must not evict VM0 lines if
        // partitions are disjoint (they are here: 8+8 of 16 ways).
        assert!(!m0.intersects(m1));
    }

    #[test]
    fn llc_ddio_deposit_makes_line_resident() {
        let mut llc = Llc::new(64, 16, &[4]);
        llc.ddio_deposit(0x99, VmId(0));
        assert!(llc.access(0x99, VmId(0), false, false));
    }

    #[test]
    fn set_policy_switches_all_structures() {
        let config = HierarchyConfig::table1();
        let mut core = CoreMem::new(&config, 0.5, PolicyKind::Lru);
        core.set_policy(PolicyKind::Rrip);
        assert_eq!(core.l2().policy(), PolicyKind::Rrip);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let (mut core, mut llc, mut dram) = setup();
        let a = read(0, 0x1200);
        core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        assert!(core.l1d_stats().accesses() > 0);
        core.reset_stats();
        assert_eq!(core.l1d_stats().accesses(), 0);
        assert_eq!(core.l2_stats().accesses(), 0);
    }

    #[test]
    fn dram_weight_amplifies_bank_pressure() {
        let config = HierarchyConfig::table1();
        let mut core = CoreMem::new(&config, 0.5, PolicyKind::Lru);
        let mut llc = Llc::new(64, 16, &[4]);
        let mut dram = Dram::new(crate::DramConfig {
            banks: 1,
            access: Cycles::new(100),
            bank_busy: Cycles::new(50),
        });
        core.set_dram_weight(8.0);
        // Two cold accesses to distinct lines through a single bank: the
        // second one queues behind 8x occupancy.
        let a = read(0, 0x10_0000);
        let b = read(0, 0x20_0000);
        let c1 = core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        let c2 = core.access(Cycles::ZERO, b, Visibility::Primary, &mut llc, &mut dram);
        assert!(c1.dram && c2.dram);
        assert!(c2.stall > c1.stall, "queued access must stall longer");
    }

    #[test]
    fn mshr_slots_serialize_concurrent_misses() {
        let mut config = HierarchyConfig::table1();
        config.mshrs = Some(1);
        let mut core = CoreMem::new(&config, 0.5, PolicyKind::Lru);
        let mut llc = Llc::new(64, 16, &[4]);
        let mut dram = Dram::default();
        // Two distinct cold lines issued at the same instant: with one
        // MSHR the second miss waits for the first to complete.
        let a = read(0, 0x100_000);
        let b = read(0, 0x200_000);
        let c1 = core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        let c2 = core.access(Cycles::ZERO, b, Visibility::Primary, &mut llc, &mut dram);
        assert!(c1.dram && c2.dram);
        assert!(
            c2.stall > c1.stall + Cycles::new(50),
            "second miss must queue behind the single MSHR: {} vs {}",
            c2.stall,
            c1.stall
        );
        // Warm accesses never touch the MSHRs.
        let c3 = core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        assert!(!c3.dram);
        assert!(c3.stall < Cycles::new(10));
    }

    #[test]
    fn l2_split_attributes_by_visibility() {
        let (mut core, mut llc, mut dram) = setup();
        let a = read(0, 0x7000);
        // Cold primary access misses L2; a repeat hits it.
        core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        // Evict from L1 view? Simplest: the second identical access hits
        // L1, never reaching L2 — so drive the L2 with fresh lines instead.
        let b = read(0, 0x7000 + 64 * 4096);
        core.access(Cycles::ZERO, b, Visibility::Harvest, &mut llc, &mut dram);
        let split = core.l2_split();
        assert_eq!(split.primary_misses, 1);
        assert_eq!(split.harvest_misses, 1);
        assert_eq!(split.primary_hits + split.harvest_hits, 0);
        // Totals must agree with the L2's own accounting.
        let l2 = core.l2_stats();
        assert_eq!(
            l2.hits + l2.misses,
            split.primary_hits + split.primary_misses + split.harvest_hits + split.harvest_misses
        );
    }

    #[test]
    fn flush_stats_count_kinds_and_lines() {
        let (mut core, mut llc, mut dram) = setup();
        for i in 0..8 {
            let a = read(0, 0x9000 + i * 64);
            core.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram);
        }
        let dropped_region = core.flush_harvest_region();
        let dropped_full = core.flush_all();
        let fs = core.flush_stats();
        assert_eq!(fs.region_flushes, 1);
        assert_eq!(fs.full_flushes, 1);
        assert_eq!(fs.lines_dropped, dropped_region + dropped_full);
        core.reset_stats();
        assert_eq!(core.flush_stats(), FlushStats::default());
        assert_eq!(core.l2_split(), VisSplit::default());
    }

    #[test]
    fn llc_proportional_partitioning() {
        // 8 primaries (4 cores) + 1 harvest (4 cores): every VM ≥ 1 way.
        let cores = [4, 4, 4, 4, 4, 4, 4, 4, 4];
        let llc = Llc::new(1024, 16, &cores);
        for vm in 0..9u16 {
            assert!(llc.vm_mask(VmId(vm)).count() >= 1);
        }
        assert_eq!(llc.partitions(), 9);
    }
}
