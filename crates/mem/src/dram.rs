//! Banked main-memory latency model (stands in for DRAMSim2).
//!
//! Table 1: 128 GB DDR4-3200, 4 memory controllers, 102.4 GB/s per socket.
//! The model captures the two effects the evaluation depends on: a base
//! access latency and queueing at banks under load (which penalizes the
//! memory-intensive Harvest workloads like RndFTrain in Figure 17).

use hh_sim::Cycles;
use serde::{Deserialize, Serialize};

/// DRAM timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of independently schedulable banks (channels × banks).
    pub banks: usize,
    /// Idle access latency.
    pub access: Cycles,
    /// Bank busy time per access (occupancy that creates queueing).
    pub bank_busy: Cycles,
}

impl DramConfig {
    /// Table 1-like defaults: 4 controllers × 16 banks, ~60 ns idle
    /// latency, ~15 ns bank occupancy.
    pub fn table1() -> Self {
        DramConfig {
            banks: 64,
            access: Cycles::from_ns(60.0),
            bank_busy: Cycles::from_ns(15.0),
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::table1()
    }
}

/// The banked DRAM model. Each access picks a bank by address hash; if the
/// bank is still busy with earlier accesses, the request queues behind it.
///
/// # Example
///
/// ```
/// use hh_mem::Dram;
/// use hh_sim::Cycles;
///
/// let mut dram = Dram::default();
/// let lat = dram.access(Cycles::ZERO, 0x1234);
/// assert!(lat >= Cycles::from_ns(60.0));
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    busy_until: Vec<Cycles>,
    accesses: u64,
    queued: u64,
}

impl Default for Dram {
    fn default() -> Self {
        Self::new(DramConfig::default())
    }
}

impl Dram {
    /// Creates an idle DRAM.
    ///
    /// # Panics
    /// Panics if `config.banks` is zero.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.banks > 0, "at least one bank required");
        Dram {
            config,
            busy_until: vec![Cycles::ZERO; config.banks],
            accesses: 0,
            queued: 0,
        }
    }

    /// Issues an access to line `key` at absolute time `now`; returns the
    /// total latency (queueing + access).
    pub fn access(&mut self, now: Cycles, key: u64) -> Cycles {
        self.access_weighted(now, key, 1.0)
    }

    /// Issues an access standing in for `weight` real accesses (used by
    /// subsampled reference streams): the bank stays busy `weight ×`
    /// longer, so bandwidth saturation appears at the *real* access rate.
    ///
    /// # Panics
    /// Panics if `weight` is not at least 1.
    pub fn access_weighted(&mut self, now: Cycles, key: u64, weight: f64) -> Cycles {
        assert!(weight >= 1.0, "weight must be >= 1");
        self.accesses += 1;
        // Spread consecutive lines across banks.
        let bank = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.config.banks as u64) as usize;
        let start = now.max(self.busy_until[bank]);
        if start > now {
            self.queued += 1;
        }
        let busy = (self.config.bank_busy.as_u64() as f64 * weight).round() as u64;
        self.busy_until[bank] = start + Cycles::new(busy);
        (start - now) + self.config.access
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Fraction of accesses that experienced queueing.
    pub fn queue_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.queued as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_access_is_base_latency() {
        let mut d = Dram::default();
        assert_eq!(d.access(Cycles::ZERO, 42), Cycles::from_ns(60.0));
        assert_eq!(d.accesses(), 1);
        assert_eq!(d.queue_fraction(), 0.0);
    }

    #[test]
    fn same_bank_back_to_back_queues() {
        let mut d = Dram::new(DramConfig {
            banks: 1,
            access: Cycles::new(100),
            bank_busy: Cycles::new(50),
        });
        assert_eq!(d.access(Cycles::ZERO, 1), Cycles::new(100));
        // Bank busy until 50, so a second access at t=0 waits 50.
        assert_eq!(d.access(Cycles::ZERO, 2), Cycles::new(150));
        assert!(d.queue_fraction() > 0.0);
    }

    #[test]
    fn banks_drain_over_time() {
        let mut d = Dram::new(DramConfig {
            banks: 1,
            access: Cycles::new(100),
            bank_busy: Cycles::new(50),
        });
        d.access(Cycles::ZERO, 1);
        // Much later the bank is idle again.
        assert_eq!(d.access(Cycles::new(1000), 2), Cycles::new(100));
    }

    #[test]
    fn different_addresses_spread_across_banks() {
        let mut d = Dram::default();
        let lats: Vec<Cycles> = (0..32).map(|k| d.access(Cycles::ZERO, k)).collect();
        let base = Cycles::from_ns(60.0);
        let uncontended = lats.iter().filter(|&&l| l == base).count();
        assert!(uncontended > 16, "hashing should spread most accesses");
    }

    #[test]
    fn weighted_access_extends_bank_occupancy() {
        let mut d = Dram::new(DramConfig {
            banks: 1,
            access: Cycles::new(100),
            bank_busy: Cycles::new(10),
        });
        // One access standing in for 16 keeps the bank busy 160 cycles.
        d.access_weighted(Cycles::ZERO, 1, 16.0);
        assert_eq!(d.access(Cycles::ZERO, 2), Cycles::new(260));
    }

    #[test]
    #[should_panic(expected = "weight must be >= 1")]
    fn sub_unit_weight_panics() {
        Dram::default().access_weighted(Cycles::ZERO, 1, 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        Dram::new(DramConfig {
            banks: 0,
            access: Cycles::new(1),
            bank_busy: Cycles::new(1),
        });
    }
}
