//! Replacement-policy selection.

use serde::{Deserialize, Serialize};

/// Which replacement algorithm a [`crate::SetAssocCache`] runs.
///
/// The Figure 14 study compares all of these on L2 hit rate; the full-system
/// configurations use [`PolicyKind::Lru`] for the `+Part` ablation step and
/// [`PolicyKind::HardHarvest`] for the final design.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Vanilla least-recently-used.
    #[default]
    Lru,
    /// Static re-reference interval prediction (SRRIP, 2-bit RRPV,
    /// Jaleel et al. ISCA '10 — the paper's "RRIP advanced replacement").
    Rrip,
    /// The paper's Algorithm 1: steer shared entries toward non-harvest
    /// ways and private entries toward harvest ways, choosing victims only
    /// among the `candidate_frac` least-recently-used entries of the set
    /// (the *eviction candidates*, Section 4.2.3), with LRU tie-breaking.
    HardHarvest {
        /// Fraction of the set's ways eligible as eviction candidates
        /// (`M`); the paper's default is 0.75 (Table 1), swept in Figure 19.
        candidate_frac: f64,
    },
}

impl PolicyKind {
    /// The paper's default HardHarvest policy (M = 75 % of ways).
    pub fn hardharvest_default() -> Self {
        PolicyKind::HardHarvest {
            candidate_frac: 0.75,
        }
    }

    /// Short label for experiment tables.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Rrip => "RRIP",
            PolicyKind::HardHarvest { .. } => "HardHarvest",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(PolicyKind::Lru.label(), "LRU");
        assert_eq!(PolicyKind::Rrip.label(), "RRIP");
        assert_eq!(PolicyKind::hardharvest_default().label(), "HardHarvest");
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(PolicyKind::default(), PolicyKind::Lru);
    }

    #[test]
    fn default_candidate_fraction_is_75_percent() {
        match PolicyKind::hardharvest_default() {
            PolicyKind::HardHarvest { candidate_frac } => {
                assert!((candidate_frac - 0.75).abs() < 1e-12)
            }
            _ => unreachable!(),
        }
    }
}
