//! The set-associative cache/TLB structure with way partitioning and the
//! HardHarvest replacement algorithm (paper Sections 4.2.1–4.2.4).
//!
//! The storage is struct-of-arrays: tags live in one dense `Vec<u64>` so
//! the hit-path probe scans a single cache line per set, while the
//! valid/shared/dirty/RRPV state is packed into one metadata byte per
//! entry and LRU stamps sit in their own array. Victim selection operates
//! on an *effective* way mask (`allowed ∩ ways`) computed once per
//! access, never re-filtered inside scan loops.

use serde::{Deserialize, Serialize};

use crate::{PolicyKind, WayMask};

/// Packed per-entry metadata bits (see [`SetAssocCache::meta`]).
const META_VALID: u8 = 1 << 0;
/// The page-table `Shared` bit, copied into the entry on insertion
/// (Section 4.2.2).
const META_SHARED: u8 = 1 << 1;
const META_DIRTY: u8 = 1 << 2;
/// SRRIP re-reference prediction value (0 = near, 3 = distant), two bits.
const RRPV_SHIFT: u8 = 3;
const RRPV_MASK: u8 = 0b11 << RRPV_SHIFT;

/// Hit/miss accounting for one structure.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Valid entries invalidated by flushes.
    pub flushed: u64,
    /// Dirty lines written back (on eviction or flush).
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the reference hit.
    pub hit: bool,
    /// Whether a dirty victim was written back to the next level.
    pub writeback: bool,
}

/// One reference of a batched [`SetAssocCache::access_run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchRef {
    /// Line/page key (already VM-namespaced).
    pub key: u64,
    /// The page-class `Shared` bit.
    pub shared: bool,
    /// Whether the reference dirties the line.
    pub write: bool,
}

/// Aggregate result of one [`SetAssocCache::access_run`] batch.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// References that hit.
    pub hits: u64,
    /// References that missed.
    pub misses: u64,
    /// References whose miss handling wrote back at least one dirty line.
    pub writebacks: u64,
}

/// Externally-visible state of one way of one set, for state comparison
/// and divergence reports in the `hh-check` differential oracle.
///
/// Covers everything replacement decisions depend on: the tag, the
/// valid/shared/dirty bits, the SRRIP re-reference value, and the LRU
/// stamp (both the optimized cache and the reference model advance their
/// clocks once per access, so stamps are directly comparable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WayState {
    /// Way index within the set.
    pub way: usize,
    /// Stored tag (meaningless when `!valid`).
    pub tag: u64,
    /// Whether the entry holds a line.
    pub valid: bool,
    /// The page-class `Shared` bit.
    pub shared: bool,
    /// Whether the line is dirty.
    pub dirty: bool,
    /// SRRIP re-reference prediction value (0–3).
    pub rrpv: u8,
    /// LRU stamp (larger = more recently used; 0 when never touched or
    /// invalidated).
    pub stamp: u64,
}

/// A set-associative cache or TLB with harvest/non-harvest way partitioning.
///
/// TLBs are the same structure instantiated over page numbers instead of
/// line addresses; the caller picks the granularity of the keys it passes.
///
/// Accesses carry an *allowed-way* mask: a Primary VM normally sees every
/// way, a Harvest VM only the harvest region, and the Figure 7 capacity
/// study shrinks the mask globally. Insertion is restricted to allowed
/// ways; hits are only honoured in allowed ways.
///
/// # Example
///
/// ```
/// use hh_mem::{PolicyKind, SetAssocCache, WayMask};
///
/// let mut c = SetAssocCache::new(64, 8, PolicyKind::Lru, WayMask::lower(4));
/// let all = WayMask::all(8);
/// assert!(!c.access(0x42, false, all, false).hit); // cold miss
/// assert!(c.access(0x42, false, all, false).hit); // now resident
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    /// Tags alone, `sets * ways` long, so the hit probe strides one dense
    /// u64 array instead of 32-byte entry records.
    tags: Vec<u64>,
    /// One packed metadata byte per entry: bit 0 valid, bit 1 shared,
    /// bit 2 dirty, bits 3–4 the SRRIP RRPV.
    meta: Vec<u8>,
    /// LRU stamps: larger = more recently used.
    stamps: Vec<u64>,
    policy: PolicyKind,
    /// Ways forming the harvest region (HarvestMask register).
    harvest_mask: WayMask,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    /// Panics if `sets` or `ways` is zero, `ways > 32`, or the harvest mask
    /// references ways beyond `ways`.
    pub fn new(sets: usize, ways: usize, policy: PolicyKind, harvest_mask: WayMask) -> Self {
        assert!(sets > 0 && ways > 0, "degenerate geometry");
        assert!(ways <= 32, "way mask is 32 bits");
        assert!(
            !harvest_mask.intersects(WayMask::all(ways).complement(32)),
            "harvest mask exceeds the structure's ways"
        );
        SetAssocCache {
            sets,
            ways,
            tags: vec![0; sets * ways],
            meta: vec![0; sets * ways],
            stamps: vec![0; sets * ways],
            policy,
            harvest_mask,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The harvest-region way mask.
    pub fn harvest_mask(&self) -> WayMask {
        self.harvest_mask
    }

    /// Reconfigures the harvest region (the HarvestMask register is loaded
    /// per VM when a core is re-assigned, Section 4.2.1).
    ///
    /// # Panics
    /// Panics if the mask references ways beyond the structure.
    pub fn set_harvest_mask(&mut self, mask: WayMask) {
        assert!(!mask.intersects(WayMask::all(self.ways).complement(32)));
        self.harvest_mask = mask;
    }

    /// Replacement-policy accessor.
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// Swaps the replacement policy (used by the Figure 14 lab).
    pub fn set_policy(&mut self, policy: PolicyKind) {
        self.policy = policy;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// The mask actually usable by an access: `allowed ∩ [0, ways)`.
    /// Computed once per access so no scan loop re-filters way indices.
    #[inline]
    fn effective(&self, allowed: WayMask) -> WayMask {
        WayMask(allowed.0 & WayMask::all(self.ways).0)
    }

    #[inline]
    fn set_base(&self, key: u64) -> usize {
        (key % self.sets as u64) as usize * self.ways
    }

    /// Looks up `key` without updating any state. Returns the hit way.
    pub fn probe(&self, key: u64, allowed: WayMask) -> Option<usize> {
        let eff = self.effective(allowed);
        let base = self.set_base(key);
        (0..self.ways).find(|&w| {
            self.tags[base + w] == key && self.meta[base + w] & META_VALID != 0 && eff.contains(w)
        })
    }

    /// Performs one access: `key` is the line/page address (already
    /// VM-namespaced), `shared` the page-class bit, `allowed` the ways this
    /// access may see, `write` whether it dirties the line.
    ///
    /// On a miss the line is inserted into an allowed way chosen by the
    /// configured replacement policy; if the line is also resident in a
    /// *disallowed* way, that stale copy is invalidated first (with
    /// writeback accounting) so a tag is never duplicated within a set. If
    /// `allowed` is empty the access bypasses the structure entirely
    /// (counted as a miss, nothing inserted or invalidated).
    pub fn access(&mut self, key: u64, shared: bool, allowed: WayMask, write: bool) -> AccessOutcome {
        let eff = self.effective(allowed);
        self.access_at(key, shared, eff, write)
    }

    /// Drives an ordered batch of references through the cache with one
    /// call: the effective way mask is computed once for the whole run and
    /// the per-reference dispatch overhead disappears. Exactly equivalent
    /// to calling [`SetAssocCache::access`] per element in order — the
    /// address-stream synthesizer (`hh-workload`'s `PhaseStream::batch`)
    /// produces batches in stream order precisely so replay results stay
    /// bit-identical to the scalar path.
    pub fn access_run(&mut self, refs: &[BatchRef], allowed: WayMask) -> BatchOutcome {
        let eff = self.effective(allowed);
        let mut out = BatchOutcome::default();
        for r in refs {
            let o = self.access_at(r.key, r.shared, eff, r.write);
            if o.hit {
                out.hits += 1;
            } else {
                out.misses += 1;
            }
            out.writebacks += o.writeback as u64;
        }
        out
    }

    /// The access core; `eff` must already be intersected with the
    /// structure's ways.
    #[inline]
    fn access_at(&mut self, key: u64, shared: bool, eff: WayMask, write: bool) -> AccessOutcome {
        self.clock += 1;
        let clock = self.clock;
        let base = self.set_base(key);

        // Probe: scan the dense tag array; ways holding this tag outside
        // the allowed mask are remembered as stale twins.
        let mut stale_ways: u32 = 0;
        for w in 0..self.ways {
            let i = base + w;
            if self.tags[i] == key && self.meta[i] & META_VALID != 0 {
                if eff.contains(w) {
                    self.stamps[i] = clock;
                    let mut m = self.meta[i] & !RRPV_MASK;
                    if write {
                        m |= META_DIRTY;
                    }
                    self.meta[i] = m;
                    self.stats.hits += 1;
                    return AccessOutcome {
                        hit: true,
                        writeback: false,
                    };
                }
                stale_ways |= 1 << w;
            }
        }

        self.stats.misses += 1;
        if eff.is_empty() {
            return AccessOutcome {
                hit: false,
                writeback: false,
            };
        }

        // The key is resident in disallowed ways only: drop those copies
        // before inserting so the set never holds duplicate tags (a dirty
        // copy is written back now rather than double-counted later).
        let mut writeback = false;
        while stale_ways != 0 {
            let w = stale_ways.trailing_zeros() as usize;
            stale_ways &= stale_ways - 1;
            let i = base + w;
            if self.meta[i] & META_DIRTY != 0 {
                self.stats.writebacks += 1;
                writeback = true;
            }
            self.tags[i] = 0;
            self.meta[i] = 0;
            self.stamps[i] = 0;
        }

        let victim = self.choose_victim(base, eff, shared);
        let i = base + victim;
        if self.meta[i] & (META_VALID | META_DIRTY) == META_VALID | META_DIRTY {
            self.stats.writebacks += 1;
            writeback = true;
        }
        self.tags[i] = key;
        self.stamps[i] = clock;
        // SRRIP long-rereference insertion (RRPV = 2).
        self.meta[i] = META_VALID
            | if shared { META_SHARED } else { 0 }
            | if write { META_DIRTY } else { 0 }
            | (2 << RRPV_SHIFT);
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Chooses the way (relative to the set) to victimize. `eff` is the
    /// pre-intersected allowed mask, verified non-empty by the caller.
    fn choose_victim(&mut self, base: usize, eff: WayMask, incoming_shared: bool) -> usize {
        match self.policy {
            PolicyKind::Lru => self.victim_lru(base, eff),
            PolicyKind::Rrip => self.victim_rrip(base, eff),
            PolicyKind::HardHarvest { candidate_frac } => {
                self.victim_hardharvest(base, eff, incoming_shared, candidate_frac)
            }
        }
    }

    fn victim_lru(&self, base: usize, eff: WayMask) -> usize {
        if let Some(w) = self.first_empty(base, eff) {
            return w;
        }
        self.lru_of(base, eff, |_| true)
            // hh-lint: allow(unwrap-in-hot-path): `eff` was checked
            // non-empty at lookup entry; an empty mask cannot reach here.
            .expect("allowed mask verified non-empty")
    }

    fn victim_rrip(&mut self, base: usize, eff: WayMask) -> usize {
        if let Some(w) = self.first_empty(base, eff) {
            return w;
        }
        // `eff` is already the effective mask, so both passes iterate it
        // directly — no per-iteration re-filtering.
        loop {
            for w in eff.iter() {
                if self.meta[base + w] & RRPV_MASK == RRPV_MASK {
                    return w;
                }
            }
            for w in eff.iter() {
                let i = base + w;
                let rrpv = (self.meta[i] & RRPV_MASK) >> RRPV_SHIFT;
                let aged = (rrpv + 1).min(3);
                self.meta[i] = (self.meta[i] & !RRPV_MASK) | (aged << RRPV_SHIFT);
            }
        }
    }

    /// Algorithm 1 from the paper, including the eviction-candidate window.
    fn victim_hardharvest(
        &self,
        base: usize,
        eff: WayMask,
        incoming_shared: bool,
        candidate_frac: f64,
    ) -> usize {
        let harv = self.harvest_mask & eff;
        let non_harv = self.harvest_mask.complement(self.ways) & eff;

        // Empty-slot cases (Algorithm 1, first branch). Empty slots are not
        // subject to the candidate window.
        let empty_h = self.first_empty(base, harv);
        let empty_nh = self.first_empty(base, non_harv);
        match (empty_nh, empty_h) {
            (Some(nh), Some(h)) => {
                return if incoming_shared { nh } else { h };
            }
            (Some(nh), None) => return nh,
            (None, Some(h)) => return h,
            (None, None) => {}
        }

        // No empty slot: restrict to the M least-recently-used entries.
        // At most 32 ways, so the age sort runs on a stack buffer.
        let allowed_count = eff.count();
        let m = ((allowed_count as f64 * candidate_frac).round() as usize).clamp(1, allowed_count);
        let mut by_age = [0usize; 32];
        let mut n = 0;
        for w in eff.iter() {
            by_age[n] = w;
            n += 1;
        }
        by_age[..n].sort_by_key(|&w| self.stamps[base + w]);
        let window = &by_age[..m];
        let candidate = |w: usize| window.contains(&w);

        let pick_lru = |region: WayMask, private_only: bool| -> Option<usize> {
            self.lru_of(base, region, |w| {
                candidate(w) && (!private_only || self.meta[base + w] & META_SHARED == 0)
            })
        };

        if incoming_shared {
            // Private victim in Non-Harv, then private in Harv, then any.
            pick_lru(non_harv, true)
                .or_else(|| pick_lru(harv, true))
                .or_else(|| pick_lru(eff, false))
                // hh-lint: allow(unwrap-in-hot-path): the final fallback
                // scanned the full effective mask, which is non-empty here.
                .expect("candidate window is non-empty")
        } else {
            // Private victim in Harv, then private in Non-Harv, then any.
            pick_lru(harv, true)
                .or_else(|| pick_lru(non_harv, true))
                .or_else(|| pick_lru(eff, false))
                // hh-lint: allow(unwrap-in-hot-path): the final fallback
                // scanned the full effective mask, which is non-empty here.
                .expect("candidate window is non-empty")
        }
    }

    /// First invalid way in `mask` (pre-intersected with the structure).
    fn first_empty(&self, base: usize, mask: WayMask) -> Option<usize> {
        mask.iter().find(|&w| self.meta[base + w] & META_VALID == 0)
    }

    /// Least-recently-used way in `mask` satisfying `pred`.
    fn lru_of(&self, base: usize, mask: WayMask, pred: impl Fn(usize) -> bool) -> Option<usize> {
        mask.iter()
            .filter(|&w| pred(w))
            .min_by_key(|&w| self.stamps[base + w])
    }

    /// Invalidates every entry in the given ways across all sets (the
    /// harvest-region flush). Returns the number of valid entries dropped.
    pub fn invalidate_ways(&mut self, mask: WayMask) -> u64 {
        let eff = self.effective(mask);
        let mut dropped = 0;
        for set in 0..self.sets {
            let base = set * self.ways;
            for w in eff.iter() {
                let i = base + w;
                if self.meta[i] & META_VALID != 0 {
                    dropped += 1;
                    if self.meta[i] & META_DIRTY != 0 {
                        self.stats.writebacks += 1;
                    }
                    self.tags[i] = 0;
                    self.meta[i] = 0;
                    self.stamps[i] = 0;
                }
            }
        }
        self.stats.flushed += dropped;
        dropped
    }

    /// Invalidates the whole structure (software full flush). Returns the
    /// number of valid entries dropped.
    pub fn invalidate_all(&mut self) -> u64 {
        self.invalidate_ways(WayMask::all(self.ways))
    }

    /// Dumps the state of every way of `set` (see [`WayState`]). Used by
    /// the differential oracle to compare against its reference model and
    /// to print the ways of a diverging set.
    ///
    /// # Panics
    /// Panics if `set` is out of range.
    pub fn way_states(&self, set: usize) -> Vec<WayState> {
        assert!(set < self.sets, "set {set} out of range");
        let base = set * self.ways;
        (0..self.ways)
            .map(|w| {
                let m = self.meta[base + w];
                WayState {
                    way: w,
                    tag: self.tags[base + w],
                    valid: m & META_VALID != 0,
                    shared: m & META_SHARED != 0,
                    dirty: m & META_DIRTY != 0,
                    rrpv: (m & RRPV_MASK) >> RRPV_SHIFT,
                    stamp: self.stamps[base + w],
                }
            })
            .collect()
    }

    /// The set index a key maps to (for divergence reports).
    pub fn set_of(&self, key: u64) -> usize {
        (key % self.sets as u64) as usize
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.meta.iter().filter(|&&m| m & META_VALID != 0).count()
    }

    /// Number of valid entries resident in the given ways.
    pub fn occupancy_in(&self, mask: WayMask) -> usize {
        let eff = self.effective(mask);
        let mut n = 0;
        for set in 0..self.sets {
            let base = set * self.ways;
            for w in eff.iter() {
                if self.meta[base + w] & META_VALID != 0 {
                    n += 1;
                }
            }
        }
        n
    }

    /// Number of valid *shared* entries resident in the given ways.
    pub fn shared_occupancy_in(&self, mask: WayMask) -> usize {
        let eff = self.effective(mask);
        let mut n = 0;
        for set in 0..self.sets {
            let base = set * self.ways;
            for w in eff.iter() {
                if self.meta[base + w] & (META_VALID | META_SHARED) == META_VALID | META_SHARED {
                    n += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(policy: PolicyKind) -> SetAssocCache {
        // 1 set, 4 ways, harvest region = ways 0..2
        SetAssocCache::new(1, 4, policy, WayMask::lower(2))
    }

    const ALL4: WayMask = WayMask(0b1111);

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(PolicyKind::Lru);
        assert!(!c.access(10, false, ALL4, false).hit);
        assert!(c.access(10, false, ALL4, false).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small(PolicyKind::Lru);
        for k in 0..4 {
            c.access(k, false, ALL4, false);
        }
        c.access(0, false, ALL4, false); // refresh key 0
        c.access(100, false, ALL4, false); // evicts key 1 (oldest)
        assert!(!c.access(1, false, ALL4, false).hit);
        assert!(c.access(0, false, ALL4, false).hit);
    }

    #[test]
    fn restricted_mask_limits_capacity() {
        let mut c = small(PolicyKind::Lru);
        let harvest_only = WayMask::lower(2);
        for k in 0..3 {
            c.access(k, false, harvest_only, false);
        }
        // only 2 ways available: key 0 was evicted
        assert!(!c.access(0, false, harvest_only, false).hit);
        assert_eq!(c.occupancy_in(WayMask::lower(2)), 2);
        assert_eq!(c.occupancy_in(WayMask::lower(2).complement(4)), 0);
    }

    #[test]
    fn empty_allowed_mask_bypasses() {
        let mut c = small(PolicyKind::Lru);
        let out = c.access(5, false, WayMask::EMPTY, false);
        assert!(!out.hit);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn hit_requires_allowed_way() {
        let mut c = small(PolicyKind::Lru);
        let harvest_only = WayMask::lower(2);
        let non_harvest = harvest_only.complement(4);
        c.access(7, true, non_harvest, false); // resident in a non-harvest way
        // an access restricted to harvest ways must not see it
        assert!(!c.access(7, true, harvest_only, false).hit);
    }

    #[test]
    fn disallowed_resident_copy_is_invalidated_on_miss() {
        let mut c = small(PolicyKind::Lru);
        let harvest_only = WayMask::lower(2);
        let non_harvest = harvest_only.complement(4);
        c.access(7, false, non_harvest, true); // dirty, resident in a NH way
        // Miss restricted to harvest ways: the stale NH copy must be
        // dropped (and written back) before the new insertion, leaving a
        // single resident copy rather than a duplicate tag.
        let out = c.access(7, false, harvest_only, false);
        assert!(!out.hit);
        assert!(out.writeback, "dirty stale copy must be written back");
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.occupancy(), 1, "no duplicate tag in the set");
        assert_eq!(c.occupancy_in(non_harvest), 0);
        assert_eq!(c.occupancy_in(harvest_only), 1);
        assert!(c.access(7, false, ALL4, false).hit);
        // Evicting the surviving copy (clean) must not write back again.
        c.access(8, false, harvest_only, false);
        c.access(9, false, harvest_only, false);
        assert_eq!(c.stats().writebacks, 1, "no double-counted writeback");
    }

    #[test]
    fn clean_disallowed_copy_drops_without_writeback() {
        let mut c = small(PolicyKind::Lru);
        let harvest_only = WayMask::lower(2);
        let non_harvest = harvest_only.complement(4);
        c.access(7, false, non_harvest, false); // clean copy
        let out = c.access(7, false, harvest_only, false);
        assert!(!out.hit && !out.writeback);
        assert_eq!(c.stats().writebacks, 0);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn bypass_leaves_disallowed_copy_resident() {
        let mut c = small(PolicyKind::Lru);
        let non_harvest = WayMask::lower(2).complement(4);
        c.access(7, false, non_harvest, false);
        // Empty allowed mask: nothing is inserted, so the resident copy
        // must not be invalidated either.
        c.access(7, false, WayMask::EMPTY, false);
        assert_eq!(c.occupancy(), 1);
        assert!(c.access(7, false, ALL4, false).hit);
    }

    #[test]
    fn access_run_matches_scalar_loop() {
        let refs: Vec<BatchRef> = (0..600u64)
            .map(|i| BatchRef {
                key: (i * 29) % 97,
                shared: i % 3 == 0,
                write: i % 7 == 0,
            })
            .collect();
        for policy in [
            PolicyKind::Lru,
            PolicyKind::Rrip,
            PolicyKind::hardharvest_default(),
        ] {
            let mask = WayMask::lower(3);
            let mut scalar = SetAssocCache::new(8, 4, policy, WayMask::lower(2));
            let mut batched = scalar.clone();
            let mut hits = 0;
            for r in &refs {
                if scalar.access(r.key, r.shared, mask, r.write).hit {
                    hits += 1;
                }
            }
            let out = batched.access_run(&refs, mask);
            assert_eq!(scalar.stats(), batched.stats(), "{policy:?}");
            assert_eq!(out.hits, hits, "{policy:?}");
            assert_eq!(out.hits + out.misses, refs.len() as u64);
            assert_eq!(scalar.occupancy(), batched.occupancy());
            for k in 0..97 {
                assert_eq!(scalar.probe(k, mask), batched.probe(k, mask), "{policy:?} key {k}");
            }
        }
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = SetAssocCache::new(1, 1, PolicyKind::Lru, WayMask::EMPTY);
        let one = WayMask::lower(1);
        c.access(1, false, one, true); // dirty
        let out = c.access(2, false, one, false); // evicts dirty line
        assert!(out.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn rrip_hits_reset_rrpv_and_survive() {
        let mut c = small(PolicyKind::Rrip);
        for k in 0..4 {
            c.access(k, false, ALL4, false);
        }
        // Re-reference key 0 repeatedly → rrpv 0, should survive new inserts.
        for _ in 0..3 {
            c.access(0, false, ALL4, false);
        }
        for k in 10..13 {
            c.access(k, false, ALL4, false);
        }
        assert!(c.access(0, false, ALL4, false).hit, "hot line evicted");
    }

    #[test]
    fn hardharvest_steers_shared_to_non_harvest_empty() {
        let mut c = small(PolicyKind::hardharvest_default());
        c.access(1, true, ALL4, false); // shared → non-harvest empty (way 2/3)
        c.access(2, false, ALL4, false); // private → harvest empty (way 0/1)
        let harvest = WayMask::lower(2);
        assert_eq!(c.shared_occupancy_in(harvest.complement(4)), 1);
        assert_eq!(c.occupancy_in(harvest), 1);
        assert_eq!(c.shared_occupancy_in(harvest), 0);
    }

    #[test]
    fn hardharvest_shared_evicts_private_in_non_harvest_first() {
        let mut c = small(PolicyKind::hardharvest_default());
        // Fill: ways 0,1 (harvest) private; ways 2,3 (non-harvest): one
        // private (forced), one shared.
        c.access(1, false, ALL4, false); // → harvest
        c.access(2, false, ALL4, false); // → harvest
        c.access(3, false, ALL4, false); // harvest full → takes NH empty
        c.access(4, true, ALL4, false); // shared → NH empty
        assert_eq!(c.occupancy(), 4);
        // Incoming shared entry must evict the private line in non-harvest
        // (key 3), not the shared one and not harvest lines.
        c.access(5, true, ALL4, false);
        assert!(!c.access(3, true, ALL4, false).hit, "private NH line should be victim");
        // keys 1,2 (harvest) and 4 (shared NH) survived… key 3's probe
        // above re-inserted it, so just check stats instead:
        assert_eq!(c.stats().flushed, 0);
    }

    #[test]
    fn hardharvest_private_evicts_private_in_harvest_first() {
        let mut c = small(PolicyKind::hardharvest_default());
        c.access(1, false, ALL4, false); // harvest way
        c.access(2, false, ALL4, false); // harvest way
        c.access(3, true, ALL4, false); // NH way
        c.access(4, true, ALL4, false); // NH way
        // Incoming private: victim must be the LRU private in harvest (key 1).
        c.access(5, false, ALL4, false);
        assert!(c.probe(1, ALL4).is_none(), "key 1 should be evicted");
        assert!(c.probe(3, ALL4).is_some());
        assert!(c.probe(4, ALL4).is_some());
    }

    #[test]
    fn hardharvest_all_shared_set_falls_back_to_lru() {
        let mut c = small(PolicyKind::HardHarvest { candidate_frac: 1.0 });
        for k in 1..=4 {
            c.access(k, true, ALL4, false);
        }
        c.access(9, false, ALL4, false); // private incoming, all shared → LRU (key 1)
        assert!(c.probe(1, ALL4).is_none());
        assert!(c.probe(9, ALL4).is_some());
    }

    #[test]
    fn eviction_candidate_window_protects_mru_private() {
        // candidate_frac 0.5 on 4 ways → only the 2 LRU entries are
        // eligible. A recently-touched private line must survive a shared
        // insertion even though Algorithm 1 would otherwise pick it.
        let mut c = small(PolicyKind::HardHarvest { candidate_frac: 0.5 });
        c.access(1, true, ALL4, false);
        c.access(2, true, ALL4, false);
        c.access(3, true, ALL4, false);
        c.access(4, false, ALL4, false); // private, most recently used
        c.access(4, false, ALL4, false); // refresh again
        c.access(5, true, ALL4, false); // shared insert
        assert!(
            c.probe(4, ALL4).is_some(),
            "MRU private line must be outside the candidate window"
        );
    }

    #[test]
    fn invalidate_ways_flushes_only_region() {
        let mut c = small(PolicyKind::hardharvest_default());
        c.access(1, false, ALL4, false); // harvest
        c.access(2, true, ALL4, false); // non-harvest
        let dropped = c.invalidate_ways(WayMask::lower(2));
        assert_eq!(dropped, 1);
        assert!(c.probe(1, ALL4).is_none());
        assert!(c.probe(2, ALL4).is_some());
        assert_eq!(c.stats().flushed, 1);
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = small(PolicyKind::Lru);
        for k in 0..4 {
            c.access(k, false, ALL4, true);
        }
        let dropped = c.invalidate_all();
        assert_eq!(dropped, 4);
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().writebacks, 4, "dirty lines written back");
    }

    #[test]
    fn stats_hit_rate() {
        let mut c = small(PolicyKind::Lru);
        c.access(1, false, ALL4, false);
        c.access(1, false, ALL4, false);
        c.access(1, false, ALL4, false);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    fn multiple_sets_do_not_interfere() {
        let mut c = SetAssocCache::new(4, 2, PolicyKind::Lru, WayMask::lower(1));
        let all = WayMask::all(2);
        // keys 0..8 map to 4 sets, 2 per set → everything fits
        for k in 0..8 {
            c.access(k, false, all, false);
        }
        for k in 0..8 {
            assert!(c.access(k, false, all, false).hit, "key {k}");
        }
    }

    #[test]
    #[should_panic(expected = "harvest mask exceeds")]
    fn oversized_harvest_mask_panics() {
        SetAssocCache::new(1, 2, PolicyKind::Lru, WayMask::lower(4));
    }
}
