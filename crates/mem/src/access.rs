//! Memory-access descriptors.

use hh_sim::VmId;
use serde::{Deserialize, Serialize};

/// Whether a page is shared across invocations of a service or private to a
/// single invocation (paper Section 4.2.2).
///
/// Shared pages are program code, libraries, read-only inputs and anything
/// allocated before the service enters its serve loop; private pages are
/// allocated by the thread handling one invocation. HardHarvest stores this
/// as a `Shared` bit in the page-table entry, copied into TLB entries and
/// used by the replacement algorithm to steer lines between regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageClass {
    /// Reused across invocations; steered to the non-harvest region.
    Shared,
    /// Local to one invocation; steered to the harvest region.
    Private,
}

impl PageClass {
    /// True for [`PageClass::Shared`].
    #[inline]
    pub fn is_shared(self) -> bool {
        matches!(self, PageClass::Shared)
    }
}

/// The kind of memory reference a core issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Instruction fetch; goes through the L1I and the I-side TLB.
    InstrFetch,
    /// Data load.
    DataRead,
    /// Data store.
    DataWrite,
}

impl AccessKind {
    /// Whether the access writes (marks lines dirty).
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::DataWrite)
    }

    /// Whether the access is an instruction fetch.
    #[inline]
    pub fn is_ifetch(self) -> bool {
        matches!(self, AccessKind::InstrFetch)
    }
}

/// One memory reference, as produced by the workload address-stream
/// generators and consumed by [`crate::CoreMem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Access {
    /// Byte address. Address spaces are per-VM; the simulator namespaces
    /// them by placing the VM id in high bits, so cross-VM aliasing is
    /// impossible by construction.
    pub addr: u64,
    /// Fetch/read/write.
    pub kind: AccessKind,
    /// Shared-vs-private classification of the page (instruction pages are
    /// always shared, per Section 4.2.3).
    pub class: PageClass,
    /// Issuing VM.
    pub vm: VmId,
}

impl Access {
    /// Convenience constructor namespacing `addr` into `vm`'s address space.
    ///
    /// # Example
    ///
    /// ```
    /// use hh_mem::{Access, AccessKind, PageClass};
    /// use hh_sim::VmId;
    ///
    /// let a = Access::new(VmId(2), 0x1000, AccessKind::DataRead, PageClass::Private);
    /// assert_eq!(a.vm, VmId(2));
    /// assert_ne!(
    ///     a.addr,
    ///     Access::new(VmId(3), 0x1000, AccessKind::DataRead, PageClass::Private).addr,
    /// );
    /// ```
    pub fn new(vm: VmId, addr: u64, kind: AccessKind, class: PageClass) -> Self {
        debug_assert!(addr < 1 << 48, "address exceeds modeled physical space");
        Access {
            addr: ((vm.0 as u64) << 48) | addr,
            kind,
            class,
            vm,
        }
    }

    /// Cache-line address (64-byte lines).
    #[inline]
    pub fn line(&self) -> u64 {
        self.addr >> 6
    }

    /// Page address (4 KiB pages).
    #[inline]
    pub fn page(&self) -> u64 {
        self.addr >> 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_namespacing_prevents_aliasing() {
        let a = Access::new(VmId(1), 0xABC0, AccessKind::DataRead, PageClass::Shared);
        let b = Access::new(VmId(2), 0xABC0, AccessKind::DataRead, PageClass::Shared);
        assert_ne!(a.line(), b.line());
        assert_ne!(a.page(), b.page());
    }

    #[test]
    fn line_and_page_extraction() {
        let a = Access::new(VmId(0), 0x1F40, AccessKind::DataWrite, PageClass::Private);
        assert_eq!(a.line(), 0x1F40 >> 6);
        assert_eq!(a.page(), 0x1);
        assert!(a.kind.is_write());
        assert!(!a.kind.is_ifetch());
    }

    #[test]
    fn class_predicates() {
        assert!(PageClass::Shared.is_shared());
        assert!(!PageClass::Private.is_shared());
        assert!(AccessKind::InstrFetch.is_ifetch());
        assert!(!AccessKind::DataRead.is_write());
    }
}
