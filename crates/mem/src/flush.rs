//! Flush/invalidate latency models (paper Sections 3 and 4.2).
//!
//! Three mechanisms appear in the evaluation:
//!
//! * **software full flush** — `wbinvd` plus a fence: 300–500 µs on the
//!   measured IceLake server (Section 3), paid on every cross-VM switch in
//!   the software-harvesting baselines;
//! * **hardware full flush** — the efficient whole-hierarchy
//!   flush/invalidate hardware the paper borrows from prior work for the
//!   `+Flush` ablation step;
//! * **hardware harvest-region flush** — HardHarvest's partitioned flush:
//!   1000 cycles (Table 1), off the critical path when transitioning from
//!   Harvest back to Primary.

use hh_sim::{Cycles, Rng64};
use serde::{Deserialize, Serialize};

/// Latency parameters for the three flush mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlushModel {
    /// Lower bound of the software `wbinvd`+fence latency.
    pub sw_min: Cycles,
    /// Upper bound of the software `wbinvd`+fence latency.
    pub sw_max: Cycles,
    /// Hardware-accelerated full flush (the `+Flush` step).
    pub hw_full: Cycles,
    /// Hardware harvest-region flush (Table 1: 1000 cycles).
    pub hw_region: Cycles,
}

impl FlushModel {
    /// Paper defaults.
    pub fn paper() -> Self {
        FlushModel {
            sw_min: Cycles::from_us(300.0),
            sw_max: Cycles::from_us(500.0),
            hw_full: Cycles::from_us(3.0),
            hw_region: Cycles::new(1000),
        }
    }

    /// Samples one software `wbinvd`+fence flush latency.
    pub fn software(&self, rng: &mut Rng64) -> Cycles {
        let lo = self.sw_min.as_u64();
        let hi = self.sw_max.as_u64();
        if hi <= lo {
            return self.sw_min;
        }
        Cycles::new(rng.range(lo, hi + 1))
    }

    /// Hardware full-hierarchy flush latency.
    pub fn hardware_full(&self) -> Cycles {
        self.hw_full
    }

    /// Hardware harvest-region flush latency. This is also the fixed
    /// side-channel-free delay before a Harvest VM may begin executing
    /// after a Primary→Harvest transition (Section 4.2.1: execution is
    /// deferred by the *longest possible* flush duration).
    pub fn hardware_region(&self) -> Cycles {
        self.hw_region
    }
}

impl Default for FlushModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_flush_within_bounds() {
        let m = FlushModel::paper();
        let mut rng = Rng64::new(1);
        for _ in 0..1000 {
            let f = m.software(&mut rng);
            assert!(f >= m.sw_min && f <= m.sw_max, "{f}");
        }
    }

    #[test]
    fn region_flush_is_1000_cycles() {
        assert_eq!(FlushModel::paper().hardware_region(), Cycles::new(1000));
    }

    #[test]
    fn hardware_flush_is_orders_faster_than_software() {
        let m = FlushModel::paper();
        assert!(m.hardware_full().as_us() * 50.0 < m.sw_min.as_us());
        assert!(m.hardware_region() < m.hardware_full());
    }

    #[test]
    fn degenerate_bounds_return_min() {
        let m = FlushModel {
            sw_min: Cycles::new(100),
            sw_max: Cycles::new(100),
            ..FlushModel::paper()
        };
        let mut rng = Rng64::new(2);
        assert_eq!(m.software(&mut rng), Cycles::new(100));
    }
}
