//! Way-level bitmasks for cache partitioning.

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

use serde::{Deserialize, Serialize};

/// A bitmask over the ways of a set-associative structure (bit *i* = way
/// *i*).
///
/// Used for three distinct partitioning mechanisms from the paper:
/// the per-structure *HarvestMask* (which ways form the harvest region,
/// Section 4.2.1), Intel-CAT-style LLC partitions per VM (Section 2.3), and
/// the capacity-scaling study of Figure 7 (restricting the usable ways of
/// every structure).
///
/// # Example
///
/// ```
/// use hh_mem::WayMask;
///
/// let harvest = WayMask::lower(4); // ways 0..4 are the harvest region
/// let non_harvest = harvest.complement(8);
/// assert_eq!(harvest.count(), 4);
/// assert_eq!(non_harvest.count(), 4);
/// assert!(!harvest.intersects(non_harvest));
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct WayMask(pub u32);

impl WayMask {
    /// No ways.
    pub const EMPTY: WayMask = WayMask(0);

    /// A mask of the lowest `n` ways.
    ///
    /// # Panics
    /// Panics if `n > 32`.
    pub fn lower(n: usize) -> Self {
        assert!(n <= 32, "at most 32 ways supported");
        if n == 32 {
            WayMask(u32::MAX)
        } else {
            WayMask((1u32 << n) - 1)
        }
    }

    /// All `total` ways of a structure.
    pub fn all(total: usize) -> Self {
        Self::lower(total)
    }

    /// A mask holding exactly `fraction * total` ways (rounded, at least one
    /// when `fraction > 0`), taken from the low end.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn fraction(total: usize, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        // total_cmp on the absolute value treats -0.0 like 0.0, exactly as
        // the old `== 0.0` did, without a direct float equality.
        if fraction.abs().total_cmp(&0.0).is_eq() {
            return WayMask::EMPTY;
        }
        let n = ((total as f64 * fraction).round() as usize).clamp(1, total);
        Self::lower(n)
    }

    /// Whether way `w` is in the mask.
    #[inline]
    pub fn contains(self, w: usize) -> bool {
        w < 32 && self.0 & (1 << w) != 0
    }

    /// Number of ways in the mask.
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the mask is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The complement within a structure of `total` ways.
    #[inline]
    pub fn complement(self, total: usize) -> WayMask {
        WayMask(!self.0 & Self::all(total).0)
    }

    /// Whether the two masks share any way.
    #[inline]
    pub fn intersects(self, other: WayMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterates over the way indices in the mask, ascending. Scans set
    /// bits directly (`trailing_zeros`) rather than testing all 32
    /// positions, since victim selection iterates masks in its inner loop.
    #[inline]
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let w = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w)
            }
        })
    }
}

impl BitAnd for WayMask {
    type Output = WayMask;
    fn bitand(self, rhs: WayMask) -> WayMask {
        WayMask(self.0 & rhs.0)
    }
}

impl BitOr for WayMask {
    type Output = WayMask;
    fn bitor(self, rhs: WayMask) -> WayMask {
        WayMask(self.0 | rhs.0)
    }
}

impl Not for WayMask {
    type Output = WayMask;
    fn not(self) -> WayMask {
        WayMask(!self.0)
    }
}

impl fmt::Display for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010b}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_and_all() {
        assert_eq!(WayMask::lower(0), WayMask::EMPTY);
        assert_eq!(WayMask::lower(3).0, 0b111);
        assert_eq!(WayMask::all(32).0, u32::MAX);
    }

    #[test]
    fn fraction_rounds_and_clamps() {
        assert_eq!(WayMask::fraction(8, 0.5).count(), 4);
        assert_eq!(WayMask::fraction(8, 0.0).count(), 0);
        assert_eq!(WayMask::fraction(8, 1.0).count(), 8);
        // tiny but non-zero fraction still yields one way
        assert_eq!(WayMask::fraction(8, 0.01).count(), 1);
        // 75% of 12 ways = 9
        assert_eq!(WayMask::fraction(12, 0.75).count(), 9);
    }

    #[test]
    fn complement_partitions() {
        let h = WayMask::fraction(16, 0.5);
        let nh = h.complement(16);
        assert_eq!(h.count() + nh.count(), 16);
        assert!(!h.intersects(nh));
        assert_eq!((h | nh), WayMask::all(16));
        assert_eq!((h & nh), WayMask::EMPTY);
    }

    #[test]
    fn iteration_matches_contains() {
        let m = WayMask(0b1010_0110);
        let ways: Vec<usize> = m.iter().collect();
        assert_eq!(ways, vec![1, 2, 5, 7]);
        for w in &ways {
            assert!(m.contains(*w));
        }
        assert!(!m.contains(0));
        assert!(!m.contains(33));
    }

    #[test]
    #[should_panic(expected = "at most 32")]
    fn too_many_ways_panics() {
        WayMask::lower(33);
    }
}
