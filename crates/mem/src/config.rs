//! Configuration of caches, TLBs and the hierarchy (paper Table 1).

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (64 in Table 1).
    pub line_bytes: usize,
    /// Round-trip hit latency in cycles.
    pub hit_cycles: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly or any field is zero.
    pub fn sets(&self) -> usize {
        assert!(self.size_bytes > 0 && self.ways > 0 && self.line_bytes > 0);
        assert_eq!(
            self.size_bytes % self.line_bytes,
            0,
            "capacity must be a whole number of lines"
        );
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            lines % self.ways,
            0,
            "capacity must be a whole number of sets"
        );
        lines / self.ways
    }

    /// L1 data cache: 48 KB, 12-way, 5-cycle round trip, 64 B lines.
    pub fn l1d() -> Self {
        CacheConfig {
            size_bytes: 48 * 1024,
            ways: 12,
            line_bytes: 64,
            hit_cycles: 5,
        }
    }

    /// L1 instruction cache: 32 KB, 8-way, 5-cycle round trip.
    pub fn l1i() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_cycles: 5,
        }
    }

    /// L2 unified cache: 512 KB, 8-way, 13-cycle round trip.
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_cycles: 13,
        }
    }
}

/// Geometry and latency of one TLB level. A TLB is simulated as a
/// set-associative structure over 4 KiB page numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Round-trip hit latency in cycles.
    pub hit_cycles: u64,
}

impl TlbConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    /// Panics if `entries` is not a multiple of `ways` or any field is zero.
    pub fn sets(&self) -> usize {
        assert!(self.entries > 0 && self.ways > 0);
        assert_eq!(self.entries % self.ways, 0);
        self.entries / self.ways
    }

    /// L1 TLB: 128 entries, 4-way, 2-cycle round trip.
    pub fn l1() -> Self {
        TlbConfig {
            entries: 128,
            ways: 4,
            hit_cycles: 2,
        }
    }

    /// L2 TLB: 2048 entries, 8-way, 12-cycle round trip.
    pub fn l2() -> Self {
        TlbConfig {
            entries: 2048,
            ways: 8,
            hit_cycles: 12,
        }
    }
}

/// Shared-LLC configuration (per-server; Table 1: per core 2 MB, 16-way,
/// 36-cycle round trip, non-inclusive of the L2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Capacity *per core* in bytes; the server LLC is `cores ×` this.
    pub per_core_bytes: usize,
    /// Associativity of each LLC set.
    pub ways: usize,
    /// Round-trip latency in cycles.
    pub hit_cycles: u64,
    /// Cores contributing slices.
    pub cores: usize,
}

impl LlcConfig {
    /// Table 1 default: 2 MB/core, 16-way, 36 cycles, 36 cores.
    pub fn table1() -> Self {
        LlcConfig {
            per_core_bytes: 2 * 1024 * 1024,
            ways: 16,
            hit_cycles: 36,
            cores: 36,
        }
    }

    /// Total LLC bytes in the server.
    pub fn total_bytes(&self) -> usize {
        self.per_core_bytes * self.cores
    }

    /// Equivalent [`CacheConfig`] for the aggregated LLC.
    pub fn as_cache(&self) -> CacheConfig {
        CacheConfig {
            size_bytes: self.total_bytes(),
            ways: self.ways,
            line_bytes: 64,
            hit_cycles: self.hit_cycles,
        }
    }
}

/// Full per-core hierarchy configuration plus the latency constants used to
/// convert miss chains into stall cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L1 TLB geometry (modeled once, shared I/D capacity).
    pub l1_tlb: TlbConfig,
    /// Unified L2 TLB geometry.
    pub l2_tlb: TlbConfig,
    /// Shared LLC geometry.
    pub llc: LlcConfig,
    /// Page-walk cost on an L2-TLB miss, in cycles (pointer chase through
    /// the cache hierarchy, collapsed to a constant).
    pub page_walk_cycles: u64,
    /// Fraction of a data-miss latency that the out-of-order core cannot
    /// hide (memory-level-parallelism discount). Instruction fetches are
    /// never discounted: the front end stalls.
    pub data_stall_factor: f64,
    /// Optional miss-status-holding-register modeling (Table 1: 32 MSHRs).
    /// When set, misses past the L2 contend for this many outstanding-miss
    /// slots and the reference stream advances a per-phase time cursor.
    /// `None` (default) keeps the simpler flat-latency model the
    /// calibration in DESIGN.md §8 is anchored to.
    pub mshrs: Option<usize>,
}

impl HierarchyConfig {
    /// Table 1 defaults.
    pub fn table1() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::l1i(),
            l1d: CacheConfig::l1d(),
            l2: CacheConfig::l2(),
            l1_tlb: TlbConfig::l1(),
            l2_tlb: TlbConfig::l2(),
            llc: LlcConfig::table1(),
            page_walk_cycles: 120,
            data_stall_factor: 0.45,
            mshrs: None,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometries() {
        assert_eq!(CacheConfig::l1d().sets(), 64); // 48K/64/12
        assert_eq!(CacheConfig::l1i().sets(), 64); // 32K/64/8
        assert_eq!(CacheConfig::l2().sets(), 1024); // 512K/64/8
        assert_eq!(TlbConfig::l1().sets(), 32);
        assert_eq!(TlbConfig::l2().sets(), 256);
    }

    #[test]
    fn llc_aggregation() {
        let llc = LlcConfig::table1();
        assert_eq!(llc.total_bytes(), 72 * 1024 * 1024);
        let c = llc.as_cache();
        assert_eq!(c.ways, 16);
        assert_eq!(c.sets(), 72 * 1024 * 1024 / 64 / 16);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_panics() {
        CacheConfig {
            size_bytes: 1024,
            ways: 3,
            line_bytes: 64,
            hit_cycles: 1,
        }
        .sets();
    }

    #[test]
    #[should_panic(expected = "whole number of lines")]
    fn non_line_multiple_panics() {
        CacheConfig {
            size_bytes: 1000,
            ways: 2,
            line_bytes: 64,
            hit_cycles: 1,
        }
        .sets();
    }

    #[test]
    fn default_is_table1() {
        assert_eq!(HierarchyConfig::default(), HierarchyConfig::table1());
    }
}
