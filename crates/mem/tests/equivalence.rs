//! Differential equivalence: the optimized struct-of-arrays
//! [`hh_mem::SetAssocCache`] against hh-check's array-of-structs
//! [`hh_check::RefCache`] on property-generated traces.
//!
//! Where `proptests.rs` asserts structural properties of the optimized
//! cache in isolation, these tests assert *behavioural identity* with a
//! naive transcription of the paper's Algorithm 1: every access outcome,
//! every way state, every statistic, over mixed shared/private streams,
//! restricted allowed masks, region flushes and harvest-mask reloads,
//! across all four replacement policies and several harvest-mask shapes.
//! A divergence fails with hh-check's pinpointed report (operation index,
//! set, both models' way states) rather than a bare assert.

use hh_check::diff_cache;
use hh_mem::{PolicyKind, WayMask};
use hh_workload::OpTrace;
use proptest::prelude::*;

fn policies() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Rrip),
        Just(PolicyKind::hardharvest_default()),
        Just(PolicyKind::HardHarvest { candidate_frac: 0.5 }),
    ]
}

/// One raw generated operation: `(kind, key, shared, write, mask_sel)`.
/// `kind` picks access / flush / harvest-mask-reload; `mask_sel` picks an
/// allowed (or flushed) way mask from a geometry-dependent palette.
type RawOp = (u8, u64, bool, bool, u8);

fn raw_ops(max_len: usize) -> impl Strategy<Value = Vec<RawOp>> {
    prop::collection::vec(
        (0u8..12, 0u64..768, any::<bool>(), any::<bool>(), 0u8..4),
        1..max_len,
    )
}

/// Lowers geometry-independent raw ops onto a concrete way count. The
/// mask palette deliberately includes the harvest region, its complement
/// (their interleaving manufactures stale disallowed-way copies) and a
/// single-way mask (maximal contention).
fn build_trace(ops: &[RawOp], ways: usize) -> OpTrace {
    let harvest = WayMask::lower(ways / 2);
    let palette = [
        WayMask::all(ways),
        harvest,
        harvest.complement(ways),
        WayMask::lower(1),
    ];
    let mut t = OpTrace::new();
    for &(kind, key, shared, write, sel) in ops {
        let mask = palette[sel as usize % palette.len()];
        match kind {
            10 => t.record_flush(mask),
            11 => t.record_harvest_mask(WayMask::lower(sel as usize % (ways / 2 + 1))),
            _ => t.access(key, shared, write, mask),
        }
    }
    t
}

proptest! {
    /// Full equivalence on the default geometry, all policies × several
    /// harvest-region widths (including zero — no region reserved).
    #[test]
    fn optimized_cache_matches_reference(
        policy in policies(),
        harvest_ways in 0usize..=4,
        ops in raw_ops(300),
    ) {
        let (sets, ways) = (8, 8);
        let trace = build_trace(&ops, ways);
        if let Err(d) = diff_cache(sets, ways, policy, WayMask::lower(harvest_ways), &trace) {
            prop_assert!(false, "{}", d);
        }
    }

    /// Same equivalence on a minimal geometry, where every set decision is
    /// load-bearing: two ways per set means victim selection, steering and
    /// stale-copy invalidation interact on nearly every miss.
    #[test]
    fn optimized_cache_matches_reference_tiny_geometry(
        policy in policies(),
        ops in raw_ops(200),
    ) {
        let (sets, ways) = (2, 2);
        let trace = build_trace(&ops, ways);
        if let Err(d) = diff_cache(sets, ways, policy, WayMask::lower(1), &trace) {
            prop_assert!(false, "{}", d);
        }
    }

    /// Wide-associativity equivalence: 16 ways exercises the RRIP aging
    /// loop and Algorithm 1's candidate-window arithmetic far from the
    /// small-`ways` cases the unit tests pin.
    #[test]
    fn optimized_cache_matches_reference_wide(
        policy in policies(),
        harvest_ways in 0usize..=8,
        ops in raw_ops(150),
    ) {
        let (sets, ways) = (4, 16);
        let trace = build_trace(&ops, ways);
        if let Err(d) = diff_cache(sets, ways, policy, WayMask::lower(harvest_ways), &trace) {
            prop_assert!(false, "{}", d);
        }
    }
}
