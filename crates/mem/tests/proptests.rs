//! Property tests for the cache/TLB simulator.

use hh_mem::{BeladyCache, PolicyKind, SetAssocCache, TraceOp, WayMask};
use proptest::prelude::*;
use std::collections::VecDeque;

fn policies() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Rrip),
        Just(PolicyKind::hardharvest_default()),
        Just(PolicyKind::HardHarvest { candidate_frac: 0.5 }),
    ]
}

proptest! {
    /// Structural capacity: occupancy never exceeds sets × ways, and the
    /// region occupancies always partition the total.
    #[test]
    fn occupancy_is_bounded_and_partitioned(
        policy in policies(),
        keys in prop::collection::vec((0u64..4096, any::<bool>()), 1..600),
        harvest_ways in 1usize..7,
    ) {
        let ways = 8;
        let sets = 16;
        let harvest = WayMask::lower(harvest_ways);
        let mut c = SetAssocCache::new(sets, ways, policy, harvest);
        let all = WayMask::all(ways);
        for &(k, shared) in &keys {
            c.access(k, shared, all, false);
        }
        prop_assert!(c.occupancy() <= sets * ways);
        let in_h = c.occupancy_in(harvest);
        let in_nh = c.occupancy_in(harvest.complement(ways));
        prop_assert_eq!(in_h + in_nh, c.occupancy());
    }

    /// Temporal safety: immediately after any access, the same key hits
    /// (unless the allowed mask was empty).
    #[test]
    fn inserted_key_hits_next_access(
        policy in policies(),
        keys in prop::collection::vec(0u64..512, 1..200),
    ) {
        let mut c = SetAssocCache::new(8, 4, policy, WayMask::lower(2));
        let all = WayMask::all(4);
        for &k in &keys {
            c.access(k, false, all, false);
            prop_assert!(c.probe(k, all).is_some(), "key {k} vanished right after insert");
        }
    }

    /// Region flush completeness: after invalidating the harvest region,
    /// no entry remains in those ways, and the non-harvest region is
    /// untouched.
    #[test]
    fn region_flush_is_exact(
        policy in policies(),
        keys in prop::collection::vec((0u64..2048, any::<bool>()), 1..400),
    ) {
        let ways = 8;
        let harvest = WayMask::lower(4);
        let mut c = SetAssocCache::new(16, ways, policy, harvest);
        let all = WayMask::all(ways);
        for &(k, shared) in &keys {
            c.access(k, shared, all, false);
        }
        let before_h = c.occupancy_in(harvest);
        let before_nh = c.occupancy_in(harvest.complement(ways));
        let dropped = c.invalidate_ways(harvest);
        prop_assert_eq!(dropped as usize, before_h);
        prop_assert_eq!(c.occupancy_in(harvest), 0);
        prop_assert_eq!(c.occupancy_in(harvest.complement(ways)), before_nh);
        prop_assert_eq!(c.occupancy(), before_nh);
    }

    /// Partition isolation: a stream restricted to the harvest ways never
    /// places anything in the non-harvest ways.
    #[test]
    fn harvest_stream_confined_to_region(
        policy in policies(),
        keys in prop::collection::vec(0u64..4096, 1..500),
    ) {
        let ways = 8;
        let harvest = WayMask::lower(3);
        let mut c = SetAssocCache::new(32, ways, policy, harvest);
        for &k in &keys {
            c.access(k, false, harvest, false);
        }
        prop_assert_eq!(c.occupancy_in(harvest.complement(ways)), 0);
    }

    /// The LRU policy agrees with a reference deque model on a single set.
    #[test]
    fn lru_matches_reference_model(keys in prop::collection::vec(0u64..32, 1..400)) {
        let ways = 4;
        let mut c = SetAssocCache::new(1, ways, PolicyKind::Lru, WayMask::EMPTY);
        let all = WayMask::all(ways);
        let mut model: VecDeque<u64> = VecDeque::new(); // front = MRU
        for &k in &keys {
            let model_hit = model.contains(&k);
            let got = c.access(k, false, all, false).hit;
            prop_assert_eq!(got, model_hit, "key {}", k);
            if model_hit {
                let pos = model.iter().position(|&x| x == k).unwrap();
                model.remove(pos);
            } else if model.len() == ways {
                model.pop_back();
            }
            model.push_front(k);
        }
    }

    /// Belady (with bypass) never yields fewer hits than online LRU on the
    /// same trace and geometry.
    #[test]
    fn belady_upper_bounds_lru(keys in prop::collection::vec(0u64..64, 1..500)) {
        let sets = 4;
        let ways = 2;
        let all = WayMask::all(ways);
        let mut lru = SetAssocCache::new(sets, ways, PolicyKind::Lru, WayMask::EMPTY);
        for &k in &keys {
            lru.access(k, false, all, false);
        }
        let trace: Vec<TraceOp> = keys
            .iter()
            .map(|&k| TraceOp::Access { key: k, allowed: all })
            .collect();
        let opt = BeladyCache::new(sets, ways).run(&trace);
        prop_assert!(
            opt.hits >= lru.stats().hits,
            "belady {} < lru {}",
            opt.hits,
            lru.stats().hits
        );
    }

    /// Algorithm 1 steering: while both regions have empty ways, shared
    /// entries land in non-harvest ways and private entries in harvest
    /// ways.
    #[test]
    fn algorithm1_steers_by_class(shared_first in any::<bool>()) {
        let ways = 8;
        let harvest = WayMask::lower(4);
        let mut c = SetAssocCache::new(1, ways, PolicyKind::hardharvest_default(), harvest);
        let all = WayMask::all(ways);
        // Insert one shared + one private while the set is mostly empty.
        if shared_first {
            c.access(1, true, all, false);
            c.access(2, false, all, false);
        } else {
            c.access(2, false, all, false);
            c.access(1, true, all, false);
        }
        prop_assert_eq!(c.shared_occupancy_in(harvest.complement(ways)), 1);
        prop_assert_eq!(c.occupancy_in(harvest), 1);
    }
}
