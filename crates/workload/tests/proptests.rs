//! Property tests for the workload generators.

use hh_sim::{Cycles, Rng64, VmId};
use hh_workload::trace::UtilizationTrace;
use hh_workload::{BatchCatalog, LoadGen, RequestPlan, ServiceCatalog, ServiceId};
use proptest::prelude::*;

proptest! {
    /// Any invocation plan is structurally valid: io after every phase but
    /// the last, positive compute, stream covers the footprint.
    #[test]
    fn request_plans_are_well_formed(
        svc in 0u8..8,
        invocation in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let catalog = ServiceCatalog::socialnet();
        let id = ServiceId(svc);
        let profile = catalog.get(id);
        let mut rng = Rng64::new(seed);
        let plan = RequestPlan::generate(id, profile, VmId(3), invocation, &mut rng);
        prop_assert_eq!(plan.phases.len(), profile.phases());
        for (i, ph) in plan.phases.iter().enumerate() {
            prop_assert!(ph.compute > Cycles::ZERO);
            prop_assert!(ph.stream.accesses > 0);
            prop_assert_eq!(ph.io_after.is_none(), i + 1 == plan.phases.len());
            if let Some(io) = ph.io_after {
                prop_assert!(io >= Cycles::from_us(1.0), "io below the wire RTT");
            }
        }
        let total: u32 = plan.phases.iter().map(|p| p.stream.accesses).sum();
        let footprint = (profile.shared_lines() + profile.private_lines()) as u32;
        prop_assert!(total >= footprint);
    }

    /// Streams are reproducible and bounded to their regions.
    #[test]
    fn streams_deterministic_and_region_bounded(
        svc in 0u8..8,
        invocation in 0u64..100_000,
    ) {
        let catalog = ServiceCatalog::socialnet();
        let id = ServiceId(svc);
        let mut rng = Rng64::new(7);
        let plan = RequestPlan::generate(id, catalog.get(id), VmId(1), invocation, &mut rng);
        let spec = plan.phases[0].stream;
        let a: Vec<_> = spec.iter().collect();
        let b: Vec<_> = spec.iter().collect();
        prop_assert_eq!(&a, &b);
        let mask = (1u64 << 48) - 1;
        for acc in &a {
            let raw = acc.addr & mask;
            let in_shared = raw >= spec.shared_base
                && raw < spec.shared_base + spec.shared_lines * 64;
            let in_private = raw >= spec.private_base
                && raw < spec.private_base + spec.private_lines * 64;
            prop_assert!(in_shared || in_private, "stray address {raw:#x}");
            prop_assert_eq!(acc.class.is_shared(), in_shared);
        }
    }

    /// Load generators produce strictly increasing arrivals at roughly the
    /// requested rate for any seed.
    #[test]
    fn loadgen_rate_and_monotonicity(seed in any::<u64>(), rps in 100f64..2000.0) {
        let mut lg = LoadGen::poisson(rps, seed);
        let arrivals = lg.take_arrivals(2000);
        for w in arrivals.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        let span = arrivals.last().unwrap().as_secs();
        let measured = 2000.0 / span;
        prop_assert!((measured / rps - 1.0).abs() < 0.15, "rate {measured} vs {rps}");
    }

    /// Synthetic utilization traces are valid probabilities with max ≥ avg.
    #[test]
    fn traces_are_valid(seed in any::<u64>(), len in 1usize..300) {
        let mut rng = Rng64::new(seed);
        let t = UtilizationTrace::synthesize(len, &mut rng);
        prop_assert_eq!(t.len(), len);
        for &u in t.samples() {
            prop_assert!((0.0..=1.0).contains(&u));
        }
        prop_assert!(t.max() >= t.average() - 1e-12);
    }

    /// Batch unit streams cycle through footprint windows without escaping
    /// the working set.
    #[test]
    fn batch_windows_stay_in_footprint(job in 0usize..8, unit in 0u64..500) {
        let j = *BatchCatalog::paper().get(job);
        let spec = j.unit_stream(VmId(8), unit);
        prop_assert!(spec.private_lines >= 64);
        let mask = (1u64 << 48) - 1;
        for acc in spec.iter().take(200) {
            let raw = acc.addr & mask;
            if !acc.class.is_shared() {
                prop_assert!(raw >= spec.private_base);
                prop_assert!(raw < spec.private_base + spec.private_lines * 64);
            }
        }
    }
}
