//! Harvest-VM batch applications.
//!
//! The paper runs one batch application per server's Harvest VM: graph
//! analytics from GraphBIG (BFS, CC, DC, PRank), ML training from
//! FunctionBench (LRTrain, RndFTrain), data analytics from CloudSuite
//! (Hadoop) and bioinformatics from BioBench (MUMmer). Throughput — work
//! units retired per second — is the Harvest VM's target metric
//! (Section 6.6).

use hh_sim::{Cycles, VmId};
use serde::Serialize;

use crate::StreamSpec;

/// A batch application model.
///
/// A job is an endless loop of *work units*; each unit burns
/// [`BatchJob::unit_us`] of compute and issues a synthetic reference stream
/// over a large working set. Because a Harvest VM only sees the harvest
/// region of the caches, memory-intensive jobs (high reference density,
/// large footprint) gain less from harvested cores — the effect Figure 17
/// shows for RndFTrain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BatchJob {
    /// Figure 17 label.
    pub name: &'static str,
    /// Warm compute time per work unit, µs.
    pub unit_us: f64,
    /// Working-set size in KiB (far larger than microservice footprints).
    pub footprint_kb: usize,
    /// Memory references per work unit.
    pub accesses_per_unit: u32,
    /// Fraction of references that are instruction fetches.
    pub ifetch_frac: f64,
    /// Per-extra-worker slowdown of a work unit (Amdahl-style
    /// synchronization/contention penalty; graph analytics and random
    /// forests scale notoriously sub-linearly).
    pub scaling_penalty: f64,
}

impl BatchJob {
    /// Compute per unit as cycles.
    pub fn unit_cycles(&self) -> Cycles {
        Cycles::from_us(self.unit_us)
    }

    /// Working set in cache lines.
    pub fn footprint_lines(&self) -> u64 {
        (self.footprint_kb * 1024 / 64) as u64
    }

    /// Reference density (accesses per µs of compute) — the memory
    /// intensity knob.
    pub fn intensity(&self) -> f64 {
        self.accesses_per_unit as f64 / self.unit_us
    }

    /// Builds the reference stream of one work unit executed by `vm`.
    ///
    /// Batch data is private to the job (no cross-invocation sharing); only
    /// its code region is marked shared.
    pub fn unit_stream(&self, vm: VmId, unit: u64) -> StreamSpec {
        StreamSpec {
            vm,
            // Batch code region: small, shared class.
            shared_base: 0x0800_0000,
            shared_lines: 256, // 16 KiB of hot code
            // Graph/ML working sets are walked with little locality:
            // references go uniformly over the whole footprint.
            private_base: 0x4000_0000,
            private_lines: self.footprint_lines().max(64),
            accesses: self.accesses_per_unit,
            ifetch_frac: self.ifetch_frac,
            shared_data_frac: 0.05,
            seed: unit.wrapping_mul(0xD134_2543_DE82_EF95),
            uniform_private: true,
        }
    }
}

/// The 8 batch applications, one per simulated server.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BatchCatalog {
    jobs: Vec<BatchJob>,
}

impl BatchCatalog {
    /// The Figure 17 set in figure order: BFS, CC, DC, PRank, LRTrain,
    /// RndFTrain, Hadoop, MUMmer.
    pub fn paper() -> Self {
        let j = |name, unit_us, footprint_kb, accesses_per_unit, scaling_penalty| BatchJob {
            name,
            unit_us,
            footprint_kb,
            accesses_per_unit,
            ifetch_frac: 0.15,
            scaling_penalty,
        };
        BatchCatalog {
            // Reference counts are *samples* of the real streams (the
            // simulator multiplies the resulting stalls back up via
            // `batch_stall_scale`); relative intensity is what matters and
            // RndFTrain stays the most memory-intensive.
            jobs: vec![
                j("BFS", 400.0, 8 * 1024, 250, 0.080),
                j("CC", 480.0, 8 * 1024, 281, 0.075),
                j("DC", 360.0, 4 * 1024, 188, 0.055),
                j("PRank", 600.0, 16 * 1024, 375, 0.090),
                j("LRTrain", 440.0, 2 * 1024, 156, 0.050),
                // RndFTrain: the most memory-intensive job in Figure 17.
                j("RndFTrain", 520.0, 32 * 1024, 563, 0.120),
                j("Hadoop", 560.0, 8 * 1024, 219, 0.065),
                j("MUMmer", 640.0, 16 * 1024, 313, 0.055),
            ],
        }
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Job by index.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn get(&self, index: usize) -> &BatchJob {
        &self.jobs[index]
    }

    /// Iterates over jobs.
    pub fn iter(&self) -> impl Iterator<Item = &BatchJob> {
        self.jobs.iter()
    }

    /// Finds a job by name.
    pub fn by_name(&self, name: &str) -> Option<&BatchJob> {
        self.jobs.iter().find(|j| j.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_figure_17() {
        let c = BatchCatalog::paper();
        assert_eq!(c.len(), 8);
        let names: Vec<&str> = c.iter().map(|j| j.name).collect();
        assert_eq!(
            names,
            ["BFS", "CC", "DC", "PRank", "LRTrain", "RndFTrain", "Hadoop", "MUMmer"]
        );
        assert!(!c.is_empty());
    }

    #[test]
    fn rndftrain_is_most_memory_intensive() {
        let c = BatchCatalog::paper();
        let rnd = c.by_name("RndFTrain").unwrap();
        for j in c.iter().filter(|j| j.name != "RndFTrain") {
            assert!(rnd.intensity() >= j.intensity(), "{}", j.name);
        }
        assert_eq!(rnd.footprint_kb, 32 * 1024);
    }

    #[test]
    fn batch_footprints_dwarf_microservices() {
        for j in BatchCatalog::paper().iter() {
            assert!(j.footprint_kb >= 2 * 1024, "{}", j.name);
        }
    }

    #[test]
    fn unit_stream_spans_the_footprint_uniformly() {
        let j = *BatchCatalog::paper().by_name("BFS").unwrap();
        let a = j.unit_stream(VmId(8), 0);
        let b = j.unit_stream(VmId(8), 1);
        assert_eq!(a.accesses, 250);
        assert!(a.uniform_private);
        assert_eq!(a.private_lines, j.footprint_lines());
        assert_ne!(a.seed, b.seed, "distinct units draw distinct streams");
    }

    #[test]
    fn unit_cycles_scale() {
        let j = *BatchCatalog::paper().by_name("MUMmer").unwrap();
        assert_eq!(j.unit_cycles(), Cycles::from_us(640.0));
        assert!(j.footprint_lines() > 100_000);
    }
}
