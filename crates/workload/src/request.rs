//! Concrete request invocations.

use hh_sim::{Cycles, Rng64, VmId};
use serde::{Deserialize, Serialize};

use crate::{ServiceId, ServiceProfile, StreamSpec};

/// One compute phase of an invocation, followed (except after the last
/// phase) by a blocking RPC whose latency was sampled at plan time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Pure compute cycles on warm microarchitectural state; memory stalls
    /// simulated from `stream` are added on top.
    pub compute: Cycles,
    /// The phase's memory reference stream.
    pub stream: StreamSpec,
    /// Blocking I/O time after this phase (network + backend), `None` for
    /// the final phase.
    pub io_after: Option<Cycles>,
}

/// A fully-specified microservice invocation, ready to execute.
///
/// # Example
///
/// ```
/// use hh_sim::{Rng64, VmId};
/// use hh_workload::{RequestPlan, ServiceCatalog, ServiceId};
///
/// let catalog = ServiceCatalog::socialnet();
/// let mut rng = Rng64::new(1);
/// let plan = RequestPlan::generate(
///     ServiceId(0),
///     catalog.get(ServiceId(0)),
///     VmId(0),
///     /* invocation */ 17,
///     &mut rng,
/// );
/// assert_eq!(plan.phases.len(), catalog.get(ServiceId(0)).io_calls + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestPlan {
    /// Which service this invokes.
    pub service: ServiceId,
    /// Globally unique invocation number (drives private-page placement).
    pub invocation: u64,
    /// Executing VM.
    pub vm: VmId,
    /// The compute/I/O phase chain.
    pub phases: Vec<Phase>,
    /// Payload size in cache lines (DDIO deposit).
    pub payload_lines: u32,
}

impl RequestPlan {
    /// Samples one invocation of `profile`.
    pub fn generate(
        service: ServiceId,
        profile: &ServiceProfile,
        vm: VmId,
        invocation: u64,
        rng: &mut Rng64,
    ) -> Self {
        let phases = profile.phases();
        // Lognormal jitter around the profile compute time.
        let jitter = (profile.compute_sigma * rng.normal()).exp();
        let total_compute = Cycles::from_us(profile.compute_us * jitter);
        let per_phase = total_compute / phases as u64;

        // Reference count: cover the footprint roughly once per request,
        // spread across phases (the shared region is re-walked each phase,
        // private data belongs to the whole invocation).
        let footprint = profile.shared_lines() + profile.private_lines();
        let per_phase_accesses = ((footprint as f64 * 1.25) / phases as f64).ceil() as u32;

        let backend = profile.backend_dist();
        let mut out = Vec::with_capacity(phases);
        for p in 0..phases {
            let io_after = if p + 1 < phases {
                // Network RTT (1 µs) + profiled backend time.
                Some(Cycles::from_us(1.0 + backend.sample(rng)))
            } else {
                None
            };
            out.push(Phase {
                compute: per_phase,
                stream: StreamSpec {
                    vm,
                    shared_base: StreamSpec::shared_base_for(service.index()),
                    shared_lines: profile.shared_lines(),
                    private_base: StreamSpec::private_base_for(invocation),
                    private_lines: profile.private_lines(),
                    accesses: per_phase_accesses,
                    ifetch_frac: profile.ifetch_frac,
                    shared_data_frac: profile.shared_data_frac,
                    seed: invocation
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(p as u64),
                    uniform_private: false,
                },
                io_after,
            });
        }
        RequestPlan {
            service,
            invocation,
            vm,
            phases: out,
            payload_lines: profile.payload_bytes.div_ceil(64),
        }
    }

    /// Total warm compute across phases.
    pub fn total_compute(&self) -> Cycles {
        self.phases.iter().map(|p| p.compute).sum()
    }

    /// Total blocked I/O time across phases.
    pub fn total_io(&self) -> Cycles {
        self.phases.iter().filter_map(|p| p.io_after).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceCatalog;

    fn plan_for(name: &str, invocation: u64) -> RequestPlan {
        let c = ServiceCatalog::socialnet();
        let (id, p) = c.by_name(name).unwrap();
        let mut rng = Rng64::new(invocation ^ 0xABCD);
        RequestPlan::generate(id, p, VmId(3), invocation, &mut rng)
    }

    #[test]
    fn phase_count_and_io_placement() {
        let plan = plan_for("User", 1); // 3 io calls → 4 phases
        assert_eq!(plan.phases.len(), 4);
        for (i, ph) in plan.phases.iter().enumerate() {
            if i + 1 < plan.phases.len() {
                assert!(ph.io_after.is_some());
            } else {
                assert!(ph.io_after.is_none());
            }
        }
    }

    #[test]
    fn compute_near_profile_time() {
        let mut total = 0.0;
        let n = 200;
        for i in 0..n {
            total += plan_for("Text", i).total_compute().as_us();
        }
        let mean = total / n as f64;
        assert!((mean / 360.0 - 1.0).abs() < 0.15, "mean compute {mean}us");
    }

    #[test]
    fn io_time_reflects_backend_profile() {
        let plan = plan_for("HomeT", 5);
        // 3 RPCs of median ~150 µs + 1 µs wire each.
        let io = plan.total_io().as_us();
        assert!((150.0..1800.0).contains(&io), "io {io}us");
    }

    #[test]
    fn invocations_differ_but_are_reproducible() {
        let a = plan_for("CPost", 9);
        let b = plan_for("CPost", 9);
        let c = plan_for("CPost", 10);
        assert_eq!(a, b);
        assert_ne!(a.phases[0].stream.private_base, c.phases[0].stream.private_base);
    }

    #[test]
    fn payload_lines_rounded_up() {
        let plan = plan_for("Text", 2);
        assert_eq!(plan.payload_lines, 16); // 1024 B / 64
    }

    #[test]
    fn accesses_cover_footprint() {
        let c = ServiceCatalog::socialnet();
        let (_, p) = c.by_name("Text").unwrap();
        let plan = plan_for("Text", 3);
        let total_accesses: u32 = plan.phases.iter().map(|ph| ph.stream.accesses).sum();
        let footprint = (p.shared_lines() + p.private_lines()) as u32;
        assert!(total_accesses >= footprint, "{total_accesses} < {footprint}");
    }
}
