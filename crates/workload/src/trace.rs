//! Synthetic Alibaba-style core-utilization traces (paper Section 3,
//! Figures 2 and 3).
//!
//! The real traces are proprietary; the paper publishes their marginals:
//! 50 % of microservice instances average below **16.1 %** core
//! utilization, and 90 % of instances peak below **40.7 %**; utilization is
//! measured at 30-second granularity and shows bursty spikes over a low
//! baseline. The generator reproduces exactly those statistics, which is
//! all the harvesting opportunity depends on.

use hh_sim::{Cycles, Rng64};
use serde::{Deserialize, Serialize};

/// Published anchor: median of per-instance *average* utilization.
pub const MEDIAN_AVG_UTILIZATION: f64 = 0.161;
/// Published anchor: 90th percentile of per-instance *maximum* utilization.
pub const P90_MAX_UTILIZATION: f64 = 0.407;

/// Measurement granularity of the traces (30 s).
pub const SAMPLE_PERIOD: Cycles = Cycles::new(30 * 3_000_000_000);

/// One instance's utilization time series at 30-second granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTrace {
    samples: Vec<f64>,
}

impl UtilizationTrace {
    /// Synthesizes one instance trace of `len` samples.
    ///
    /// Model: a lognormal per-instance baseline (median tuned to the
    /// published 16.1 % anchor) modulated by a mean-one AR(1) shape process
    /// plus occasional multiplicative bursts, clamped to `[0, 1]`.
    pub fn synthesize(len: usize, rng: &mut Rng64) -> Self {
        assert!(len > 0, "trace needs at least one sample");
        // Baseline: median 0.155, sigma 0.30 (tuned so the *average* of the
        // modulated series lands on the published median and the burst
        // peaks land on the published p90-of-max).
        let base = (0.155f64.ln() + 0.30 * rng.normal()).exp().clamp(0.01, 0.85);
        let mut samples = Vec::with_capacity(len);
        let mut ar = 0.0f64; // AR(1) log-deviation
        for _ in 0..len {
            ar = 0.65 * ar + 0.10 * rng.normal();
            let mut u = base * ar.exp();
            // Bursty spike: a surge that eats a fraction of the VM's idle
            // headroom (a nearly-saturated VM cannot double its load, so
            // bursts are additive toward capacity, not multiplicative).
            if rng.chance(0.03) {
                u += (0.9 - u).max(0.0) * rng.range_f64(0.12, 0.32);
            }
            samples.push(u.clamp(0.0, 1.0));
        }
        UtilizationTrace { samples }
    }

    /// The samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty (never true for synthesized traces).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Average utilization over the trace.
    pub fn average(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Peak utilization over the trace.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Utilization at an absolute simulation time (wrapping around the
    /// trace end), used to modulate the open-loop load generator.
    pub fn at(&self, now: Cycles) -> f64 {
        let idx = (now.as_u64() / SAMPLE_PERIOD.as_u64()) as usize % self.samples.len();
        self.samples[idx]
    }
}

impl UtilizationTrace {
    /// Parses a trace from one CSV line of utilization samples in
    /// `[0, 1]` (the export format of [`UtilizationTrace::to_csv_line`]),
    /// so real production traces can replace the synthetic ones.
    ///
    /// # Errors
    /// Returns a message naming the offending field if any sample fails to
    /// parse or is outside `[0, 1]`, or if the line is empty.
    pub fn from_csv_line(line: &str) -> Result<Self, String> {
        let mut samples = Vec::new();
        for (i, field) in line.split(',').enumerate() {
            let field = field.trim();
            if field.is_empty() {
                continue;
            }
            let v: f64 = field
                .parse()
                .map_err(|e| format!("field {i} ({field:?}): {e}"))?;
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("field {i}: utilization {v} outside [0, 1]"));
            }
            samples.push(v);
        }
        if samples.is_empty() {
            return Err("empty trace line".into());
        }
        Ok(UtilizationTrace { samples })
    }

    /// Serializes the trace as one CSV line.
    pub fn to_csv_line(&self) -> String {
        self.samples
            .iter()
            .map(|v| format!("{v:.6}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// A population of instance traces (Figure 2's CDFs are over ~instances).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    traces: Vec<UtilizationTrace>,
}

impl TraceSet {
    /// Synthesizes `instances` traces of `len` samples each.
    pub fn synthesize(instances: usize, len: usize, seed: u64) -> Self {
        assert!(instances > 0);
        let traces = (0..instances)
            .map(|i| {
                let mut rng = Rng64::stream(seed, i as u64);
                UtilizationTrace::synthesize(len, &mut rng)
            })
            .collect();
        TraceSet { traces }
    }

    /// The traces.
    pub fn traces(&self) -> &[UtilizationTrace] {
        &self.traces
    }

    /// Sorted per-instance average utilizations (the `AlibabaAvg` CDF).
    pub fn avg_cdf(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.traces.iter().map(UtilizationTrace::average).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v
    }

    /// Sorted per-instance maximum utilizations (the `AlibabaMax` CDF).
    pub fn max_cdf(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.traces.iter().map(UtilizationTrace::max).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v
    }

    /// Quantile of a sorted CDF vector.
    pub fn quantile(sorted: &[f64], q: f64) -> f64 {
        assert!(!sorted.is_empty());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Parses a whole population from CSV (one instance per line); lines
    /// that are empty or start with `#` are skipped.
    ///
    /// # Errors
    /// Propagates the first per-line parse failure with its line number.
    pub fn from_csv(text: &str) -> Result<Self, String> {
        let mut traces = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            traces.push(
                UtilizationTrace::from_csv_line(line)
                    .map_err(|e| format!("line {}: {e}", n + 1))?,
            );
        }
        if traces.is_empty() {
            return Err("no traces in input".into());
        }
        Ok(TraceSet { traces })
    }

    /// Serializes the population as CSV, one instance per line.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# utilization samples at 30s granularity, one instance per line\n");
        for t in &self.traces {
            out.push_str(&t.to_csv_line());
            out.push('\n');
        }
        out
    }

    /// A representative bursty trace for Figure 3: the instance whose
    /// average utilization is closest to 25 % (visibly bursty yet mostly
    /// idle, like the paper's example VM).
    pub fn representative(&self) -> &UtilizationTrace {
        self.traces
            .iter()
            .min_by(|a, b| {
                let da = (a.average() - 0.25).abs();
                let db = (b.average() - 0.25).abs();
                da.partial_cmp(&db).expect("no NaN")
            })
            .expect("non-empty set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> TraceSet {
        TraceSet::synthesize(4000, 100, 42)
    }

    #[test]
    fn median_average_matches_alibaba_anchor() {
        let cdf = population().avg_cdf();
        let median = TraceSet::quantile(&cdf, 0.5);
        assert!(
            (median - MEDIAN_AVG_UTILIZATION).abs() < 0.03,
            "median avg {median:.3} vs anchor {MEDIAN_AVG_UTILIZATION}"
        );
    }

    #[test]
    fn p90_max_matches_alibaba_anchor() {
        let cdf = population().max_cdf();
        let p90 = TraceSet::quantile(&cdf, 0.9);
        assert!(
            (p90 - P90_MAX_UTILIZATION).abs() < 0.08,
            "p90 max {p90:.3} vs anchor {P90_MAX_UTILIZATION}"
        );
    }

    #[test]
    fn utilization_is_a_probability() {
        for t in population().traces().iter().take(100) {
            for &u in t.samples() {
                assert!((0.0..=1.0).contains(&u));
            }
            assert!(t.max() >= t.average());
        }
    }

    #[test]
    fn traces_are_bursty() {
        // A meaningful fraction of instances peak at >2x their average.
        let set = population();
        let bursty = set
            .traces()
            .iter()
            .filter(|t| t.max() > 2.0 * t.average())
            .count();
        assert!(
            bursty as f64 / set.traces().len() as f64 > 0.3,
            "only {bursty} bursty instances"
        );
    }

    #[test]
    fn representative_is_moderately_loaded() {
        let set = population();
        let rep = set.representative();
        assert!((0.15..0.35).contains(&rep.average()));
        assert!(rep.max() > rep.average() * 1.3, "visibly bursty");
    }

    #[test]
    fn at_wraps_and_is_deterministic() {
        let set = TraceSet::synthesize(1, 10, 7);
        let t = &set.traces()[0];
        assert_eq!(t.at(Cycles::ZERO), t.samples()[0]);
        let wrapped = t.at(SAMPLE_PERIOD * 10);
        assert_eq!(wrapped, t.samples()[0]);
        assert_eq!(t.at(SAMPLE_PERIOD * 3), t.samples()[3]);
    }

    #[test]
    fn csv_roundtrip_preserves_traces() {
        let set = TraceSet::synthesize(5, 20, 99);
        let csv = set.to_csv();
        let back = TraceSet::from_csv(&csv).unwrap();
        assert_eq!(back.traces().len(), 5);
        for (a, b) in set.traces().iter().zip(back.traces()) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.samples().iter().zip(b.samples()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn csv_rejects_bad_input() {
        assert!(UtilizationTrace::from_csv_line("0.2,nope,0.3").is_err());
        assert!(UtilizationTrace::from_csv_line("0.2,1.5").is_err());
        assert!(UtilizationTrace::from_csv_line("").is_err());
        assert!(TraceSet::from_csv("# only a comment\n").is_err());
        let err = TraceSet::from_csv("0.1,0.2\n0.3,bad\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn csv_skips_comments_and_blanks() {
        let set = TraceSet::from_csv("# header\n\n0.1,0.2,0.3\n").unwrap();
        assert_eq!(set.traces().len(), 1);
        assert_eq!(set.traces()[0].len(), 3);
    }

    #[test]
    fn synthesis_is_seed_deterministic() {
        let a = TraceSet::synthesize(10, 50, 3);
        let b = TraceSet::synthesize(10, 50, 3);
        assert_eq!(a, b);
        let c = TraceSet::synthesize(10, 50, 4);
        assert_ne!(a, c);
    }
}
