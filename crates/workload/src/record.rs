//! Cache-operation trace recording for the differential oracle.
//!
//! The `hh-check` crate replays identical operation sequences through the
//! optimized `SetAssocCache` and its naive reference model and reports the
//! first divergence. The traces come from two sources: property-generated
//! sequences (built op by op with [`OpTrace::push`]) and recordings of the
//! workload synthesizer's own phase streams ([`OpTrace::record_phase`]),
//! so the oracle exercises exactly the address mixes the simulation
//! produces — skewed shared/private references, harvest-restricted masks,
//! region flushes and HarvestMask reloads.

use hh_mem::{BatchRef, WayMask};
use serde::{Deserialize, Serialize};

use crate::StreamSpec;

/// One recorded cache/TLB operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordedOp {
    /// One reference: key, page class, store bit, and the allowed-way mask
    /// in force when it was issued.
    Access {
        /// Line/page key (already VM-namespaced).
        key: u64,
        /// The page-class `Shared` bit.
        shared: bool,
        /// Whether the reference dirties the line.
        write: bool,
        /// Ways this access may see.
        allowed: WayMask,
    },
    /// A region flush (`invalidate_ways`) over the given ways.
    InvalidateWays(WayMask),
    /// A HarvestMask register reload (core reassigned to another VM).
    SetHarvestMask(WayMask),
}

/// An ordered cache-operation trace, replayable through any cache model.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpTrace {
    ops: Vec<RecordedOp>,
}

impl OpTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        OpTrace::default()
    }

    /// The recorded operations in issue order.
    pub fn ops(&self) -> &[RecordedOp] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends one operation.
    pub fn push(&mut self, op: RecordedOp) {
        self.ops.push(op);
    }

    /// Appends one access.
    pub fn access(&mut self, key: u64, shared: bool, write: bool, allowed: WayMask) {
        self.ops.push(RecordedOp::Access {
            key,
            shared,
            write,
            allowed,
        });
    }

    /// Records every reference of a phase stream under `allowed`, in
    /// stream order — the trace replays bit-identically to what
    /// `SetAssocCache::access_run` would see from the same spec.
    pub fn record_phase(&mut self, spec: &StreamSpec, allowed: WayMask) {
        self.ops.reserve(spec.accesses as usize);
        let mut buf: Vec<BatchRef> = Vec::new();
        spec.iter().batch_into(&mut buf);
        for r in &buf {
            self.access(r.key, r.shared, r.write, allowed);
        }
    }

    /// Records a harvest-region flush.
    pub fn record_flush(&mut self, mask: WayMask) {
        self.ops.push(RecordedOp::InvalidateWays(mask));
    }

    /// Records a HarvestMask reload.
    pub fn record_harvest_mask(&mut self, mask: WayMask) {
        self.ops.push(RecordedOp::SetHarvestMask(mask));
    }
}

impl FromIterator<RecordedOp> for OpTrace {
    fn from_iter<I: IntoIterator<Item = RecordedOp>>(iter: I) -> Self {
        OpTrace {
            ops: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_sim::VmId;

    fn spec() -> StreamSpec {
        StreamSpec {
            vm: VmId(1),
            shared_base: StreamSpec::shared_base_for(0),
            shared_lines: 300,
            private_base: StreamSpec::private_base_for(3),
            private_lines: 100,
            accesses: 500,
            ifetch_frac: 0.3,
            shared_data_frac: 0.5,
            seed: 11,
            uniform_private: false,
        }
    }

    #[test]
    fn phase_recording_matches_the_stream() {
        let mut t = OpTrace::new();
        let mask = WayMask::lower(4);
        t.record_phase(&spec(), mask);
        assert_eq!(t.len(), 500);
        let direct: Vec<RecordedOp> = spec()
            .iter()
            .map(|a| RecordedOp::Access {
                key: a.line(),
                shared: a.class.is_shared(),
                write: a.kind.is_write(),
                allowed: mask,
            })
            .collect();
        assert_eq!(t.ops(), &direct[..]);
    }

    #[test]
    fn mixed_ops_keep_issue_order() {
        let mut t = OpTrace::new();
        t.access(7, true, false, WayMask::lower(2));
        t.record_flush(WayMask::lower(2));
        t.record_harvest_mask(WayMask::lower(1));
        assert_eq!(t.len(), 3);
        assert!(matches!(t.ops()[1], RecordedOp::InvalidateWays(_)));
        assert!(matches!(t.ops()[2], RecordedOp::SetHarvestMask(_)));
        let copy: OpTrace = t.ops().iter().copied().collect();
        assert_eq!(copy, t);
    }
}
