//! The 8 DeathStarBench-SocialNet-like microservice profiles.
//!
//! The paper picks 8 representative Alibaba production services and mimics
//! them with DeathStarBench services matched by execution time; requests
//! run for hundreds of microseconds, block on 1–3 synchronous RPCs to
//! backends (Memcached/Redis/MongoDB on dedicated servers), and have small
//! working sets split into cross-invocation *shared* pages and
//! per-invocation *private* pages (Sections 2.1, 3, 4.2.2).

use hh_sim::{Cycles, LogNormal};
use serde::{Deserialize, Serialize};

/// Index of a microservice in the catalog.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ServiceId(pub u8);

impl ServiceId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Which application composition the Primary VMs run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CatalogKind {
    /// The 8 SocialNet services the paper evaluates (default).
    #[default]
    SocialNet,
    /// A hotelReservation-style composition (6 services).
    HotelReservation,
}

/// Static description of one microservice.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceProfile {
    /// Short name used in the paper's figures.
    pub name: &'static str,
    /// Total on-CPU execution time of one invocation on warm structures,
    /// excluding memory stalls added by the simulator, in microseconds.
    pub compute_us: f64,
    /// Relative jitter (lognormal sigma) of per-invocation compute time.
    pub compute_sigma: f64,
    /// Number of synchronous blocking RPCs per invocation (splits the
    /// computation into `io_calls + 1` phases).
    pub io_calls: usize,
    /// Median backend service time per RPC, in microseconds (profiled on a
    /// real server in the paper; injected, not simulated).
    pub backend_us: f64,
    /// Backend latency shape (lognormal sigma).
    pub backend_sigma: f64,
    /// Shared footprint (code + libraries + read-only data) in KiB.
    pub shared_kb: usize,
    /// Private per-invocation footprint in KiB.
    pub private_kb: usize,
    /// Fraction of references that are instruction fetches.
    pub ifetch_frac: f64,
    /// Of the data references, the fraction touching shared pages.
    pub shared_data_frac: f64,
    /// Request payload size in bytes (deposited to the LLC by DDIO).
    pub payload_bytes: u32,
}

impl ServiceProfile {
    /// Warm compute time as cycles.
    pub fn compute_cycles(&self) -> Cycles {
        Cycles::from_us(self.compute_us)
    }

    /// Number of compute phases (`io_calls + 1`).
    pub fn phases(&self) -> usize {
        self.io_calls + 1
    }

    /// Backend latency distribution for this service's RPCs.
    pub fn backend_dist(&self) -> LogNormal {
        LogNormal::with_median(self.backend_us, self.backend_sigma)
    }

    /// Shared footprint in cache lines.
    pub fn shared_lines(&self) -> u64 {
        (self.shared_kb * 1024 / 64) as u64
    }

    /// Private footprint in cache lines.
    pub fn private_lines(&self) -> u64 {
        (self.private_kb * 1024 / 64) as u64
    }
}

/// The catalog of evaluated services.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServiceCatalog {
    services: Vec<ServiceProfile>,
}

impl ServiceCatalog {
    /// The 8 SocialNet services used throughout the evaluation, in the
    /// order the figures list them: Text, SGraph, User, PstStr, UsrMnt,
    /// HomeT, CPost, UrlShort.
    ///
    /// Parameters are calibrated so that (i) invocations run for hundreds
    /// of microseconds, (ii) HomeT is dominated by shared pages and User by
    /// frequent I/O — the two behaviours Section 6.1 calls out — and
    /// (iii) working sets are small relative to the hierarchy (Figure 7).
    pub fn socialnet() -> Self {
        let s = |name,
                 compute_us,
                 io_calls,
                 backend_us,
                 shared_kb,
                 private_kb,
                 shared_data_frac| ServiceProfile {
            name,
            compute_us,
            compute_sigma: 0.18,
            io_calls,
            backend_us,
            backend_sigma: 0.35,
            shared_kb,
            private_kb,
            ifetch_frac: 0.35,
            shared_data_frac,
            payload_bytes: 1024,
        };
        ServiceCatalog {
            services: vec![
                s("Text", 360.0, 1, 90.0, 96, 24, 0.55),
                s("SGraph", 500.0, 2, 110.0, 128, 32, 0.55),
                s("User", 280.0, 3, 120.0, 80, 16, 0.60),
                s("PstStr", 600.0, 2, 140.0, 160, 48, 0.50),
                s("UsrMnt", 400.0, 2, 100.0, 96, 24, 0.55),
                s("HomeT", 700.0, 3, 150.0, 224, 16, 0.80),
                s("CPost", 800.0, 3, 130.0, 192, 64, 0.50),
                s("UrlShort", 220.0, 1, 80.0, 64, 16, 0.60),
            ],
        }
    }

    /// A second catalog modeled on DeathStarBench's hotelReservation
    /// application (the suite's other widely-used composition): six
    /// services with a different balance — Search and Recommend are
    /// compute-heavier, Geo and Rate are lookup-dominated with frequent
    /// short RPCs.
    pub fn hotel_reservation() -> Self {
        let s = |name,
                 compute_us,
                 io_calls,
                 backend_us,
                 shared_kb,
                 private_kb,
                 shared_data_frac| ServiceProfile {
            name,
            compute_us,
            compute_sigma: 0.20,
            io_calls,
            backend_us,
            backend_sigma: 0.35,
            shared_kb,
            private_kb,
            ifetch_frac: 0.35,
            shared_data_frac,
            payload_bytes: 768,
        };
        ServiceCatalog {
            services: vec![
                s("Search", 640.0, 2, 140.0, 192, 48, 0.55),
                s("Geo", 180.0, 1, 70.0, 64, 8, 0.70),
                s("Rate", 200.0, 2, 80.0, 80, 16, 0.65),
                s("Profile", 320.0, 2, 110.0, 128, 24, 0.60),
                s("Recommend", 560.0, 1, 120.0, 160, 64, 0.45),
                s("Reserve", 420.0, 3, 130.0, 112, 32, 0.55),
            ],
        }
    }

    /// Builds a catalog by kind.
    pub fn of(kind: CatalogKind) -> Self {
        match kind {
            CatalogKind::SocialNet => Self::socialnet(),
            CatalogKind::HotelReservation => Self::hotel_reservation(),
        }
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.services.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.services.is_empty()
    }

    /// Profile by id.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn get(&self, id: ServiceId) -> &ServiceProfile {
        &self.services[id.index()]
    }

    /// Iterates `(ServiceId, &ServiceProfile)`.
    pub fn iter(&self) -> impl Iterator<Item = (ServiceId, &ServiceProfile)> {
        self.services
            .iter()
            .enumerate()
            .map(|(i, p)| (ServiceId(i as u8), p))
    }

    /// Looks a service up by its figure name.
    pub fn by_name(&self, name: &str) -> Option<(ServiceId, &ServiceProfile)> {
        self.iter().find(|(_, p)| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eight_services_in_figure_order() {
        let c = ServiceCatalog::socialnet();
        assert_eq!(c.len(), 8);
        let names: Vec<&str> = c.iter().map(|(_, p)| p.name).collect();
        assert_eq!(
            names,
            ["Text", "SGraph", "User", "PstStr", "UsrMnt", "HomeT", "CPost", "UrlShort"]
        );
        assert!(!c.is_empty());
    }

    #[test]
    fn invocations_run_hundreds_of_microseconds() {
        for (_, p) in ServiceCatalog::socialnet().iter() {
            assert!((100.0..=900.0).contains(&p.compute_us), "{}", p.name);
            assert!(p.io_calls >= 1, "every service blocks at least once");
            assert_eq!(p.phases(), p.io_calls + 1);
        }
    }

    #[test]
    fn working_sets_are_small() {
        // Section 3: microservices fit comfortably in half the hierarchy.
        for (_, p) in ServiceCatalog::socialnet().iter() {
            let total_kb = p.shared_kb + p.private_kb;
            assert!(total_kb <= 512, "{} footprint {total_kb} KB", p.name);
        }
    }

    #[test]
    fn homet_is_shared_heavy_and_user_is_io_heavy() {
        let c = ServiceCatalog::socialnet();
        let (_, homet) = c.by_name("HomeT").unwrap();
        let (_, user) = c.by_name("User").unwrap();
        assert!(homet.shared_data_frac >= 0.75);
        assert!(homet.shared_kb > 10 * homet.private_kb);
        assert_eq!(user.io_calls, 3);
        assert!(user.compute_us < 400.0, "User blocks often relative to work");
    }

    #[test]
    fn line_counts_match_kb() {
        let c = ServiceCatalog::socialnet();
        let (_, text) = c.by_name("Text").unwrap();
        assert_eq!(text.shared_lines(), 96 * 16);
        assert_eq!(text.private_lines(), 24 * 16);
    }

    #[test]
    fn backend_distribution_median() {
        let c = ServiceCatalog::socialnet();
        let (_, t) = c.by_name("Text").unwrap();
        let d = t.backend_dist();
        assert!(d.mean() >= 90.0, "lognormal mean exceeds median");
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(ServiceCatalog::socialnet().by_name("Nope").is_none());
    }

    #[test]
    fn hotel_catalog_shape() {
        let c = ServiceCatalog::hotel_reservation();
        assert_eq!(c.len(), 6);
        let (_, search) = c.by_name("Search").unwrap();
        let (_, geo) = c.by_name("Geo").unwrap();
        assert!(search.compute_us > 3.0 * geo.compute_us);
        let (_, reserve) = c.by_name("Reserve").unwrap();
        assert_eq!(reserve.io_calls, 3);
        for (_, p) in c.iter() {
            assert!(p.shared_kb + p.private_kb <= 512);
            assert!(p.io_calls >= 1);
        }
    }

    #[test]
    fn catalog_of_kind_dispatches() {
        assert_eq!(ServiceCatalog::of(CatalogKind::SocialNet).len(), 8);
        assert_eq!(ServiceCatalog::of(CatalogKind::HotelReservation).len(), 6);
        assert_eq!(CatalogKind::default(), CatalogKind::SocialNet);
    }
}
