//! Open-loop request arrival generation.
//!
//! The paper uses an open-loop load generator — the client issues requests
//! at trace-derived rates regardless of server progress — with an average
//! load of 65–250 requests per second per Primary-VM core, and reports
//! latency over 100 K invocations across all Primary VMs (Section 5).

use hh_sim::{Cycles, Exponential, Rng64};

use crate::trace::UtilizationTrace;

/// An open-loop arrival-time generator for one VM's request stream.
///
/// Arrivals are Poisson with a rate modulated by an Alibaba-style
/// utilization trace, so low-utilization periods alternate with bursts just
/// like production load.
///
/// # Example
///
/// ```
/// use hh_sim::{Cycles, Rng64};
/// use hh_workload::LoadGen;
///
/// let mut lg = LoadGen::poisson(1000.0, 77);
/// let t1 = lg.next_arrival();
/// let t2 = lg.next_arrival();
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct LoadGen {
    /// Mean arrival rate in requests/second at trace utilization 1.0
    /// (scaled down by the instantaneous trace value).
    peak_rps: f64,
    trace: Option<UtilizationTrace>,
    /// Millisecond-scale burstiness (Markov-modulated Poisson), if any.
    burst: Option<BurstModel>,
    rng: Rng64,
    now: Cycles,
}

/// Two-state MMPP burst model: arrivals alternate between a normal state
/// and short high-rate bursts, like real microservice traffic.
#[derive(Debug, Clone, Copy)]
struct BurstModel {
    /// Rate multiplier during a burst.
    factor: f64,
    /// Mean burst duration.
    burst_len: Cycles,
    /// Mean normal-state duration.
    normal_len: Cycles,
    /// Current state ends at this instant.
    state_until: Cycles,
    /// Currently bursting?
    bursting: bool,
}

impl LoadGen {
    /// Constant-rate Poisson arrivals at `rps` requests per second.
    ///
    /// # Panics
    /// Panics if `rps` is not strictly positive.
    pub fn poisson(rps: f64, seed: u64) -> Self {
        assert!(rps > 0.0, "rate must be positive");
        LoadGen {
            peak_rps: rps,
            trace: None,
            burst: None,
            rng: Rng64::new(seed),
            now: Cycles::ZERO,
        }
    }

    /// Bursty arrivals (two-state MMPP): short bursts at `factor ×` the
    /// normal rate, with mean burst length `burst_ms` covering
    /// `burst_frac` of the time. The long-run average rate is `avg_rps` —
    /// this models the millisecond-scale burstiness of real microservice
    /// traffic that makes core reclamation latency so visible in the tail.
    ///
    /// # Panics
    /// Panics unless `avg_rps > 0`, `factor > 1`, `burst_ms > 0` and
    /// `burst_frac` in `(0, 0.5]`.
    pub fn bursty(avg_rps: f64, factor: f64, burst_ms: f64, burst_frac: f64, seed: u64) -> Self {
        assert!(avg_rps > 0.0, "rate must be positive");
        assert!(factor > 1.0, "burst factor must exceed 1");
        assert!(burst_ms > 0.0 && burst_frac > 0.0 && burst_frac <= 0.5);
        // Solve the base rate so the time-average equals avg_rps.
        let base = avg_rps / (1.0 - burst_frac + burst_frac * factor);
        let burst_len = Cycles::from_ms(burst_ms);
        let normal_len = Cycles::from_ms(burst_ms * (1.0 - burst_frac) / burst_frac);
        LoadGen {
            peak_rps: base,
            trace: None,
            burst: Some(BurstModel {
                factor,
                burst_len,
                normal_len,
                state_until: Cycles::ZERO,
                bursting: true, // flips to normal at t=0
            }),
            rng: Rng64::new(seed),
            now: Cycles::ZERO,
        }
    }

    /// Trace-modulated arrivals: the instantaneous rate is
    /// `peak_rps × trace.at(t) / trace.average()`, preserving `peak_rps`
    /// as the long-run average while keeping the trace's bursts.
    ///
    /// # Panics
    /// Panics if `avg_rps` is not strictly positive or the trace is idle.
    pub fn from_trace(avg_rps: f64, trace: UtilizationTrace, seed: u64) -> Self {
        assert!(avg_rps > 0.0, "rate must be positive");
        assert!(trace.average() > 0.0, "trace never active");
        LoadGen {
            peak_rps: avg_rps / trace.average(),
            trace: Some(trace),
            burst: None,
            rng: Rng64::new(seed),
            now: Cycles::ZERO,
        }
    }

    /// Absolute time of the next arrival (strictly increasing).
    pub fn next_arrival(&mut self) -> Cycles {
        // Advance the burst state machine past `now`.
        if let Some(b) = &mut self.burst {
            while self.now >= b.state_until {
                b.bursting = !b.bursting;
                let mean = if b.bursting { b.burst_len } else { b.normal_len };
                let sojourn =
                    Exponential::with_mean(mean.as_u64() as f64).sample(&mut self.rng);
                b.state_until = b.state_until + Cycles::new((sojourn as u64).max(1));
            }
        }
        // Thinning-free approach: sample the gap at the rate in effect at
        // the current instant; state changes are slow relative to
        // inter-arrival gaps, so the approximation is tight.
        let mut rate = match &self.trace {
            Some(t) => (self.peak_rps * t.at(self.now)).max(self.peak_rps * 0.02),
            None => self.peak_rps,
        };
        if let Some(b) = &self.burst {
            if b.bursting {
                rate *= b.factor;
            }
        }
        let gap_s = Exponential::new(rate).sample(&mut self.rng);
        let gap = Cycles::from_secs(gap_s).max(Cycles::new(1));
        self.now += gap;
        self.now
    }

    /// Generates all arrivals up to `horizon`, in order.
    pub fn arrivals_until(&mut self, horizon: Cycles) -> Vec<Cycles> {
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t > horizon {
                break;
            }
            out.push(t);
        }
        out
    }

    /// Generates exactly `n` arrivals, in order.
    pub fn take_arrivals(&mut self, n: usize) -> Vec<Cycles> {
        (0..n).map(|_| self.next_arrival()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::UtilizationTrace;

    #[test]
    fn poisson_rate_converges() {
        let mut lg = LoadGen::poisson(200.0, 1);
        let arrivals = lg.take_arrivals(5_000);
        let span_s = arrivals.last().unwrap().as_secs();
        let rate = 5_000.0 / span_s;
        assert!((rate / 200.0 - 1.0).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut lg = LoadGen::poisson(10_000.0, 2);
        let arrivals = lg.take_arrivals(1_000);
        for w in arrivals.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn arrivals_until_respects_horizon() {
        let mut lg = LoadGen::poisson(1_000.0, 3);
        let horizon = Cycles::from_secs(0.5);
        let arrivals = lg.arrivals_until(horizon);
        assert!(!arrivals.is_empty());
        assert!(arrivals.iter().all(|&t| t <= horizon));
        let expected = 500.0;
        let got = arrivals.len() as f64;
        assert!((got / expected - 1.0).abs() < 0.2, "got {got}");
    }

    #[test]
    fn trace_modulation_preserves_average_rate() {
        let mut rng = Rng64::new(9);
        let trace = UtilizationTrace::synthesize(50, &mut rng);
        let mut lg = LoadGen::from_trace(150.0, trace, 4);
        // Run long enough to cover many 30 s trace periods.
        let arrivals = lg.take_arrivals(60_000);
        let span_s = arrivals.last().unwrap().as_secs();
        let rate = 60_000.0 / span_s;
        assert!(
            (rate / 150.0 - 1.0).abs() < 0.35,
            "long-run rate {rate} should approximate 150"
        );
    }

    #[test]
    fn trace_modulation_creates_bursts() {
        let mut rng = Rng64::new(11);
        let trace = UtilizationTrace::synthesize(50, &mut rng);
        let mut lg = LoadGen::from_trace(100.0, trace, 5);
        let horizon = Cycles::from_secs(600.0);
        let arrivals = lg.arrivals_until(horizon);
        // Count arrivals per 30 s bucket; bursts make the max bucket far
        // exceed the min bucket.
        let mut buckets = vec![0u32; 20];
        for a in &arrivals {
            let b = (a.as_secs() / 30.0) as usize;
            if b < buckets.len() {
                buckets[b] += 1;
            }
        }
        let max = *buckets.iter().max().unwrap() as f64;
        let min = *buckets.iter().min().unwrap() as f64;
        assert!(max > 1.5 * (min + 1.0), "buckets {buckets:?}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        LoadGen::poisson(0.0, 1);
    }
}
