//! Workload models for the HardHarvest reproduction.
//!
//! The paper evaluates 8 latency-critical SocialNet microservices from
//! DeathStarBench in Primary VMs, driven at Alibaba-trace-derived request
//! rates, with 8 batch applications (GraphBIG, FunctionBench, CloudSuite,
//! BioBench) in Harvest VMs. This crate provides:
//!
//! * [`ServiceProfile`] / [`ServiceCatalog`] — parameterized models of the
//!   8 microservices (execution phases, blocking I/O calls, backend
//!   latencies, shared/private memory footprints);
//! * [`RequestPlan`] — one concrete invocation: compute phases separated by
//!   blocking RPCs, each phase owning a deterministic synthetic address
//!   stream ([`PhaseStream`]);
//! * [`BatchJob`] / [`BatchCatalog`] — the 8 Harvest-VM batch applications
//!   with distinct memory intensities;
//! * [`trace`] — the synthetic Alibaba-like utilization-trace generator
//!   behind Figures 2 and 3;
//! * [`LoadGen`] — the open-loop (client-independent) arrival generator.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod loadgen;
pub mod record;
mod request;
mod service;
mod stream;
pub mod trace;

pub use batch::{BatchCatalog, BatchJob};
pub use loadgen::LoadGen;
pub use record::{OpTrace, RecordedOp};
pub use request::{Phase, RequestPlan};
pub use service::{CatalogKind, ServiceCatalog, ServiceId, ServiceProfile};
pub use stream::{PhaseStream, StreamSpec};
