//! Deterministic synthetic address streams for compute phases.
//!
//! A phase's stream is a *sampled* representative of the memory references
//! the real service would issue: instruction fetches over the shared code
//! region, data references split between shared pages (reused across
//! invocations of the service) and private pages (unique per invocation,
//! never reused afterwards). Popularity is skewed — a hot subset absorbs
//! most references — matching the small effective working sets measured in
//! Section 3.

use hh_mem::{Access, AccessKind, BatchRef, PageClass};
use hh_sim::{Rng64, VmId};
use serde::{Deserialize, Serialize};

/// Compact description of one phase's address stream; the accesses are
/// produced lazily and deterministically by [`StreamSpec::iter`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Issuing VM (namespaces all addresses).
    pub vm: VmId,
    /// Base byte address of the service's shared region inside the VM.
    pub shared_base: u64,
    /// Shared-region size in cache lines; the first third is code.
    pub shared_lines: u64,
    /// Base byte address of this invocation's private region.
    pub private_base: u64,
    /// Private-region size in cache lines.
    pub private_lines: u64,
    /// Number of references in this phase.
    pub accesses: u32,
    /// Fraction of references that are instruction fetches.
    pub ifetch_frac: f64,
    /// Fraction of *data* references that touch shared pages.
    pub shared_data_frac: f64,
    /// RNG seed (derived from invocation id, so the stream is reproducible
    /// and distinct per invocation).
    pub seed: u64,
    /// Draw private-region references uniformly instead of hot/cold
    /// skewed. Graph analytics and ML training walk their working sets
    /// with little locality; microservice heaps are skewed.
    pub uniform_private: bool,
}

impl StreamSpec {
    /// Lazily generates the accesses of this phase.
    pub fn iter(&self) -> PhaseStream {
        PhaseStream {
            spec: *self,
            rng: Rng64::new(self.seed),
            remaining: self.accesses,
        }
    }

    /// Derives the conventional shared-region base for a service.
    pub fn shared_base_for(service_index: usize) -> u64 {
        ((service_index as u64) + 1) << 30
    }

    /// Derives the private-region base for an invocation. Each invocation
    /// gets a fresh 1 MiB window, so private pages are never re-touched by
    /// later invocations — the property Section 4.2.2's Shared bit
    /// exploits. Windows wrap after 2²⁴ invocations to stay inside the
    /// 48-bit modeled address space (far beyond any single run's count).
    pub fn private_base_for(invocation: u64) -> u64 {
        (1u64 << 44) + ((invocation & 0x00FF_FFFF) << 20)
    }
}

/// Lazy iterator over a phase's [`Access`]es.
#[derive(Debug, Clone)]
pub struct PhaseStream {
    spec: StreamSpec,
    rng: Rng64,
    remaining: u32,
}

/// Skewed line selector: 80 % of references go to a hot fifth of the
/// region. Cheap stand-in for a Zipf draw at simulation rates.
#[inline]
fn skewed(rng: &mut Rng64, lines: u64) -> u64 {
    if lines <= 1 {
        return 0;
    }
    if rng.chance(0.8) {
        rng.below((lines / 5).max(1))
    } else {
        rng.below(lines)
    }
}

impl Iterator for PhaseStream {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let s = &self.spec;
        let code_lines = (s.shared_lines / 3).max(1);
        let r = self.rng.f64();
        let (addr, kind, class) = if r < s.ifetch_frac {
            // Instruction fetch in the code third of the shared region.
            let line = skewed(&mut self.rng, code_lines);
            (
                s.shared_base + line * 64,
                AccessKind::InstrFetch,
                PageClass::Shared,
            )
        } else {
            let write = self.rng.chance(0.3);
            let kind = if write {
                AccessKind::DataWrite
            } else {
                AccessKind::DataRead
            };
            if self.rng.chance(s.shared_data_frac) {
                let data_lines = s.shared_lines.saturating_sub(code_lines).max(1);
                let line = skewed(&mut self.rng, data_lines);
                (
                    s.shared_base + (code_lines + line) * 64,
                    kind,
                    PageClass::Shared,
                )
            } else {
                let lines = s.private_lines.max(1);
                let line = if s.uniform_private {
                    self.rng.below(lines)
                } else {
                    skewed(&mut self.rng, lines)
                };
                (s.private_base + line * 64, kind, PageClass::Private)
            }
        };
        Some(Access::new(s.vm, addr, kind, class))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for PhaseStream {}

impl PhaseStream {
    /// Drains the remaining accesses into [`BatchRef`]s, in stream order,
    /// appending to `buf` (cleared first). The batch feeds
    /// `SetAssocCache::access_run`, replacing per-reference call dispatch
    /// with one loop; because order is preserved, replaying the batch is
    /// bit-identical to iterating the stream access by access.
    pub fn batch_into(self, buf: &mut Vec<BatchRef>) {
        buf.clear();
        buf.reserve(self.len());
        for acc in self {
            buf.push(BatchRef {
                key: acc.line(),
                shared: acc.class.is_shared(),
                write: acc.kind.is_write(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> StreamSpec {
        StreamSpec {
            vm: VmId(1),
            shared_base: StreamSpec::shared_base_for(0),
            shared_lines: 1536,
            private_base: StreamSpec::private_base_for(42),
            private_lines: 384,
            accesses: 4000,
            ifetch_frac: 0.35,
            shared_data_frac: 0.55,
            seed: 7,
            uniform_private: false,
        }
    }

    #[test]
    fn deterministic_and_exact_length() {
        let a: Vec<Access> = spec().iter().collect();
        let b: Vec<Access> = spec().iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4000);
        assert_eq!(spec().iter().len(), 4000);
    }

    #[test]
    fn composition_matches_fractions() {
        let accesses: Vec<Access> = spec().iter().collect();
        let n = accesses.len() as f64;
        let ifetch = accesses.iter().filter(|a| a.kind.is_ifetch()).count() as f64 / n;
        assert!((ifetch - 0.35).abs() < 0.03, "ifetch {ifetch}");
        let shared = accesses
            .iter()
            .filter(|a| a.class.is_shared())
            .count() as f64
            / n;
        // ifetch (all shared) + 55% of the rest ≈ 0.71
        assert!((shared - 0.71).abs() < 0.04, "shared {shared}");
    }

    #[test]
    fn ifetches_hit_the_code_region_only() {
        let s = spec();
        let code_top = s.shared_base + (s.shared_lines / 3) * 64;
        for a in s.iter().filter(|a| a.kind.is_ifetch()) {
            let raw = a.addr & ((1 << 48) - 1);
            assert!((s.shared_base..code_top).contains(&raw));
        }
    }

    #[test]
    fn private_accesses_stay_in_invocation_window() {
        let s = spec();
        for a in s.iter().filter(|a| !a.class.is_shared()) {
            let raw = a.addr & ((1 << 48) - 1);
            assert!(raw >= s.private_base);
            assert!(raw < s.private_base + (1 << 20));
        }
    }

    #[test]
    fn different_invocations_use_disjoint_private_windows() {
        assert_ne!(
            StreamSpec::private_base_for(1),
            StreamSpec::private_base_for(2)
        );
        assert!(StreamSpec::private_base_for(2) - StreamSpec::private_base_for(1) >= 1 << 20);
    }

    #[test]
    fn hot_subset_absorbs_most_references() {
        let s = spec();
        let hot_top = s.shared_base + (s.shared_lines / 3 / 5).max(1) * 64;
        let ifetches: Vec<Access> = s.iter().filter(|a| a.kind.is_ifetch()).collect();
        let hot = ifetches
            .iter()
            .filter(|a| (a.addr & ((1 << 48) - 1)) < hot_top)
            .count() as f64;
        let frac = hot / ifetches.len() as f64;
        assert!(frac > 0.7, "hot fraction {frac}");
    }

    #[test]
    fn batch_into_preserves_stream_order() {
        let s = spec();
        let mut buf = vec![BatchRef { key: 9, shared: false, write: false }];
        s.iter().batch_into(&mut buf);
        let scalar: Vec<BatchRef> = s
            .iter()
            .map(|a| BatchRef {
                key: a.line(),
                shared: a.class.is_shared(),
                write: a.kind.is_write(),
            })
            .collect();
        assert_eq!(buf, scalar);
        assert_eq!(buf.len(), 4000);
    }

    #[test]
    fn writes_appear_but_are_minority() {
        let writes = spec()
            .iter()
            .filter(|a| a.kind.is_write())
            .count() as f64
            / 4000.0;
        assert!(writes > 0.1 && writes < 0.3, "write fraction {writes}");
    }
}
