//! The per-server discrete-event simulation.

use std::collections::BTreeMap;

use hh_hwqueue::{Controller, ControllerConfig, EnqueueOutcome, VmKind};
use hh_mem::{CoreMem, Dram, Llc, PolicyKind, Visibility};
use hh_noc::{ControlTree, Mesh2D};
use hh_sim::invariant::{invariant, InvariantSet, InvariantViolation};
use hh_sim::{CoreId, Cycles, EventQueue, Rng64, VmId};
use hh_trace::{trace_event, trace_gauge, trace_hist};
use hh_trace::{FlushScope, ReassignKind, TraceEvent, TraceSession, NO_INDEX};
use hh_workload::{BatchCatalog, BatchJob, LoadGen, RequestPlan, ServiceCatalog, ServiceId};


use crate::{HarvestMode, ServerConfig, ServerMetrics, SwReassign};

/// Why a core most recently became idle — determines stealability
/// (Term vs Block, Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IdleReason {
    /// Idle because a request completed (stealable in both modes).
    Termination,
    /// Idle because the running request blocked on I/O (stealable only in
    /// -Block systems).
    Blocked,
}

/// What a core does once its transition latency elapses.
#[derive(Debug, Clone, Copy, PartialEq)]
enum After {
    /// Become a Harvest-VM worker (extra `start_delay` before the first
    /// unit covers the side-channel-free flush window).
    ServeHarvest { start_delay: Cycles },
    /// Execute a specific dequeued request.
    ServeReq { token: u64 },
    /// Join the emergency buffer (software harvesting).
    JoinBuffer,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Run {
    Idle,
    Req { token: u64 },
    Unit { end: Cycles },
    Transition { after: After },
}

#[derive(Debug)]
struct Core {
    run: Run,
    /// The VM this core is logically bound to (its `MyManager`).
    bound: usize,
    /// VM whose microarchitectural state is resident, `None` right after a
    /// full flush.
    resident: Option<usize>,
    idle_reason: IdleReason,
    in_buffer: bool,
    /// If a buffer core is temporarily serving a VM, which one.
    temp_for: Option<usize>,
    /// Background harvest-region flush completion time.
    hidden_until: Cycles,
    /// Generation counter guarding against stale completion events.
    gen: u64,
}

#[derive(Debug)]
struct Req {
    plan: RequestPlan,
    phase: usize,
    arrival: Cycles,
    exec: Cycles,
    io: Cycles,
    reassign_wait: Cycles,
    flush_wait: Cycles,
}

#[derive(Debug)]
enum Ev {
    Arrival { vm: usize },
    IoDone { vm: usize, token: u64 },
    PhaseDone { core: usize, gen: u64 },
    UnitDone { core: usize, gen: u64 },
    TransitionDone { core: usize, gen: u64 },
    AgentTick,
}

/// Cost breakdown of one cross-VM switch.
#[derive(Debug, Clone, Copy, Default)]
struct SwitchCost {
    /// Time the core is unavailable.
    block: Cycles,
    /// Extra delay before harvest work may start (side-channel window).
    start_delay: Cycles,
    /// Background-flush window hiding harvest ways from the Primary VM.
    hidden: Cycles,
    /// Portion attributable to reassignment machinery.
    reassign_part: Cycles,
    /// Portion attributable to flushing on the critical path.
    flush_part: Cycles,
}

/// One simulated server (Table 1: 36 cores, 8 Primary VMs, 1 Harvest VM).
///
/// # Example
///
/// ```no_run
/// use hh_server::{ServerConfig, ServerSim, SystemSpec};
///
/// let cfg = ServerConfig::small(SystemSpec::hardharvest_block());
/// let metrics = ServerSim::new(cfg).run();
/// assert!(metrics.completed() > 0);
/// ```
#[derive(Debug)]
pub struct ServerSim {
    cfg: ServerConfig,
    catalog: ServiceCatalog,
    job: BatchJob,
    now: Cycles,
    events: EventQueue<Ev>,
    cores: Vec<Core>,
    mems: Vec<CoreMem>,
    llc: Llc,
    dram: Dram,
    ctrl: Controller,
    tree: ControlTree,
    /// Regular NoC carrying Request-Context-Memory traffic (Section 4.1.8).
    mesh: Mesh2D,
    rng: Rng64,
    requests: BTreeMap<u64, Req>,
    /// Pre-generated arrival streams per Primary VM (reversed: pop()).
    pending_arrivals: Vec<Vec<Cycles>>,
    next_token: u64,
    next_invocation: u64,
    /// Remaining durations of preempted batch units.
    partial_units: Vec<Cycles>,
    next_unit: u64,
    /// Emergency-buffer membership (software harvesting).
    buffer: Vec<usize>,
    /// EWMA of busy cores per Primary VM (agent prediction).
    ewma_busy: Vec<f64>,
    /// EWMA of observed block durations per Primary VM, in µs (drives the
    /// Adaptive harvesting policy).
    ewma_block_us: Vec<f64>,
    /// The software harvesting agent is a single user-space actor: its
    /// detach/attach operations serialize. Busy-until horizon.
    agent_busy_until: Cycles,
    /// Cores currently executing batch units (drives the batch job's
    /// sub-linear parallel scaling).
    active_units: usize,
    /// Per-Primary-VM hypervisor-pause horizon: software detach/attach
    /// takes the VM's lock and stalls its vCPUs (the KVM pain the paper
    /// measures in Figure 4). Dispatches before this instant wait.
    vm_paused_until: Vec<Cycles>,
    metrics: ServerMetrics,
    total_requests: u64,
    completed: u64,
    /// Structured tracing session; `None` (one branch per site) unless
    /// tracing is enabled process-wide (`HH_TRACE`, see `hh-trace`).
    trace: Option<Box<TraceSession>>,
}

impl ServerSim {
    /// Builds a cold server.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`ServerConfig::validate`]).
    pub fn new(cfg: ServerConfig) -> Self {
        cfg.validate();
        let catalog = ServiceCatalog::of(cfg.catalog);
        let job = *BatchCatalog::paper().get(cfg.batch_job);
        let policy = if cfg.system.opts.smart_repl {
            PolicyKind::HardHarvest {
                candidate_frac: cfg.eviction_candidate_frac.unwrap_or(0.75),
            }
        } else {
            PolicyKind::Lru
        };

        let n_primary = cfg.primary_vms;
        let harvest_vm = n_primary; // last VM index
        let mut cores = Vec::with_capacity(cfg.cores);
        let mut mems = Vec::with_capacity(cfg.cores);
        for i in 0..cfg.cores {
            // Core-to-VM binding: first 4 per primary VM, then harvest base
            // cores; leftovers bind to the harvest VM too (they are the
            // "unallocated" cores harvest VMs may always use).
            let bound = if i < n_primary * cfg.cores_per_primary {
                i / cfg.cores_per_primary
            } else {
                harvest_vm
            };
            cores.push(Core {
                run: Run::Idle,
                bound,
                resident: None,
                idle_reason: IdleReason::Termination,
                in_buffer: false,
                temp_for: None,
                hidden_until: Cycles::ZERO,
                gen: 0,
            });
            let mut mem = CoreMem::new(&cfg.hierarchy, cfg.harvest_frac, policy);
            if cfg.capacity_frac < 1.0 {
                mem.set_capacity_fraction(cfg.capacity_frac);
            }
            mem.set_infinite(cfg.infinite_cache);
            mems.push(mem);
        }

        // LLC: CAT partition per VM, proportional to cores. The LLC scales
        // with the configured core count (`per_core_bytes` semantics).
        let mut vm_cores: Vec<usize> = vec![cfg.cores_per_primary; n_primary];
        vm_cores.push(cfg.cores - n_primary * cfg.cores_per_primary);
        let mut llc_conf = cfg.llc;
        llc_conf.cores = cfg.cores;
        let llc_cfg = llc_conf.as_cache();
        let llc = Llc::new(llc_cfg.sets(), llc_cfg.ways, &vm_cores);

        // Hardware controller bookkeeping (used as the queue substrate in
        // every system; software systems add access latencies on top).
        let base_ctrl = ControllerConfig::table1();
        let mut ctrl = Controller::new(ControllerConfig {
            chunks: cfg.rq_chunks,
            // A shrunken RQ (overflow ablation) provisions fewer QM pairs;
            // every VM still needs one chunk.
            max_vms: base_ctrl.max_vms.min(cfg.rq_chunks),
            ..base_ctrl
        });
        for (vm, &cores_of) in vm_cores.iter().enumerate() {
            let kind = if vm == harvest_vm {
                VmKind::Harvest
            } else {
                VmKind::Primary
            };
            ctrl.register_vm(VmId::from(vm), kind, cores_of);
        }
        for (i, c) in cores.iter().enumerate() {
            ctrl.qm_mut(VmId::from(c.bound)).bind_core(CoreId::from(i));
        }

        // Pre-generate open-loop arrivals per Primary VM.
        let mut pending_arrivals = Vec::with_capacity(n_primary);
        for vm in 0..n_primary {
            let mut lg = if cfg.bursty_load {
                // 5x bursts of ~30 ms mean covering ~6% of the time: the
                // millisecond-scale burstiness of production microservice
                // traffic (Section 3, Figure 3).
                LoadGen::bursty(cfg.rps_per_vm, 5.0, 30.0, 0.06, cfg.seed ^ (vm as u64) << 8)
            } else {
                LoadGen::poisson(cfg.rps_per_vm, cfg.seed ^ (vm as u64) << 8)
            };
            let mut arr = lg.take_arrivals(cfg.requests_per_vm);
            arr.reverse(); // pop from the back in order
            pending_arrivals.push(arr);
        }

        let total_requests = (cfg.requests_per_vm * n_primary) as u64;
        let metrics = ServerMetrics::new(cfg.system.name, catalog.len());
        let trace = hh_trace::enabled().then(|| {
            Box::new(TraceSession::new(format!(
                "{}/seed={:#x}",
                cfg.system.name, cfg.seed
            )))
        });
        ServerSim {
            catalog,
            job,
            now: Cycles::ZERO,
            events: EventQueue::with_capacity(4096),
            cores,
            mems,
            llc,
            dram: Dram::default(),
            ctrl,
            tree: ControlTree::table1(),
            mesh: Mesh2D::table1(),
            rng: Rng64::stream(cfg.seed, 0xFEED),
            requests: BTreeMap::new(),
            pending_arrivals,
            next_token: 1,
            next_invocation: 0,
            partial_units: Vec::new(),
            next_unit: 0,
            buffer: Vec::new(),
            ewma_busy: vec![0.0; n_primary],
            ewma_block_us: vec![0.0; n_primary],
            agent_busy_until: Cycles::ZERO,
            active_units: 0,
            vm_paused_until: vec![Cycles::ZERO; n_primary],
            metrics,
            total_requests,
            completed: 0,
            trace,
            cfg,
        }
    }

    fn harvest_vm(&self) -> usize {
        self.cfg.primary_vms
    }

    /// Runs to completion and returns the metrics.
    ///
    /// # Panics
    /// Panics if the simulation deadlocks (events exhausted with requests
    /// outstanding) — that is a simulator bug, not a workload condition.
    pub fn run(mut self) -> ServerMetrics {
        // Seed initial events.
        for vm in 0..self.cfg.primary_vms {
            self.schedule_next_arrival(vm);
        }
        if self.cfg.system.harvest_busy {
            // Harvest base cores start batch work immediately.
            let harvest = self.harvest_vm();
            let idle: Vec<usize> = (0..self.cores.len())
                .filter(|&i| self.cores[i].bound == harvest)
                .collect();
            for i in idle {
                self.cores[i].resident = Some(harvest);
                self.start_unit(i, Cycles::ZERO);
            }
        }
        // The software agent runs whenever its services matter: demand
        // prediction for the steal reserve, emergency-buffer upkeep, and
        // the placement safety net. A fully hardware design (cheap context
        // switch + partitioned flush) needs none of it.
        let full_hw = self.cfg.system.opts.hw_ctxtsw && self.cfg.system.opts.partition;
        let uses_agent = !full_hw
            && (self.cfg.system.mode.enabled() || self.cfg.system.buffer_cores > 0);
        if uses_agent {
            self.events
                .push(self.cfg.latency.agent_tick, Ev::AgentTick);
        }

        // Pure runaway backstop: real runs use a few million events; only a
        // scheduling livelock could approach this.
        let mut budget: u64 = 500_000_000;
        while let Some((t, ev)) = self.events.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            budget -= 1;
            if budget == 0 {
                panic!(
                    "event budget exhausted at {} with {}/{} done; queues: {:?}; cores: {:?}",
                    self.now,
                    self.completed,
                    self.total_requests,
                    (0..=self.cfg.primary_vms)
                        .map(|v| self.ctrl.qm(VmId::from(v)).queue().ready_len())
                        .collect::<Vec<_>>(),
                    self.cores.iter().map(|c| format!("{:?}", c.run)).collect::<Vec<_>>(),
                );
            }
            self.handle(ev);
            #[cfg(debug_assertions)]
            if budget % 4096 == 0 {
                if let Err(v) = self.check_invariants() {
                    self.report_invariant_violation(&v);
                    panic!("at {}: {v}", self.now);
                }
            }
            if self.completed >= self.total_requests {
                break;
            }
        }
        assert!(
            self.completed >= self.total_requests,
            "simulation deadlocked: {}/{} requests completed at {}",
            self.completed,
            self.total_requests,
            self.now
        );

        // Final accounting.
        self.metrics.end_time = self.now;
        for mem in &self.mems {
            let s = mem.l2_stats();
            self.metrics.l2_hits += s.hits;
            self.metrics.l2_misses += s.misses;
        }
        self.finish_trace();
        self.metrics
    }

    /// Records a structured report of a failed invariant check and ships
    /// the session to the collector so the evidence survives the ensuing
    /// panic.
    #[cfg(debug_assertions)]
    fn report_invariant_violation(&mut self, v: &InvariantViolation) {
        if let Some(mut t) = self.trace.take() {
            t.record(TraceEvent::InvariantViolation {
                t: self.now,
                message: v.to_string(),
            });
            hh_trace::submit(t.finish(self.now));
        }
    }

    /// Harvests the leaf crates' intrinsic counters into the session
    /// registry, attaches the metrics summary, and submits the session.
    fn finish_trace(&mut self) {
        let Some(mut t) = self.trace.take() else { return };
        let mut split = hh_mem::VisSplit::default();
        let mut flushes = hh_mem::FlushStats::default();
        for mem in &self.mems {
            let s = mem.l2_split();
            split.primary_hits += s.primary_hits;
            split.primary_misses += s.primary_misses;
            split.harvest_hits += s.harvest_hits;
            split.harvest_misses += s.harvest_misses;
            let f = mem.flush_stats();
            flushes.full_flushes += f.full_flushes;
            flushes.region_flushes += f.region_flushes;
            flushes.lines_dropped += f.lines_dropped;
        }
        t.count("mem.l2_hits_primary", split.primary_hits);
        t.count("mem.l2_misses_primary", split.primary_misses);
        t.count("mem.l2_hits_harvest", split.harvest_hits);
        t.count("mem.l2_misses_harvest", split.harvest_misses);
        t.count("mem.flushes_full", flushes.full_flushes);
        t.count("mem.flushes_region", flushes.region_flushes);
        t.count("mem.flush_lines_dropped", flushes.lines_dropped);
        for vm in 0..=self.cfg.primary_vms {
            let q = self.ctrl.qm(VmId::from(vm)).queue();
            t.count("hwqueue.enqueued", q.enqueued_total());
            t.count("hwqueue.overflowed", q.overflowed());
            t.count("hwqueue.overflow_served", q.overflow_served());
        }
        t.count("server.requests_completed", self.completed);
        t.count("server.reassignments", self.metrics.reassignments);
        t.count("server.reclaims", self.metrics.reclaims);
        t.count("server.batch_units", self.metrics.batch_units);
        t.count("server.queue_overflows", self.metrics.queue_overflows);
        t.set_summary_json(self.metrics.summary().to_json());
        hh_trace::submit(t.finish(self.now));
    }

    /// Adjusts the busy-core level, mirroring it onto the trace gauge.
    fn busy_add(&mut self, delta: f64) {
        self.metrics.busy_cores.add(self.now, delta);
        if self.trace.is_some() {
            let now = self.now;
            let level = self.metrics.busy_cores.level();
            trace_gauge!(self.trace, "server.busy_cores", NO_INDEX, now, level);
        }
    }

    /// Records a flush span plus the cache-epoch marker for `core`.
    fn note_flush(&mut self, core: usize, scope: FlushScope, dur: Cycles, background: bool, dropped: u64) {
        if self.trace.is_none() {
            return;
        }
        let now = self.now;
        let stats = self.mems[core].flush_stats();
        let epoch = stats.full_flushes + stats.region_flushes;
        trace_event!(
            self.trace,
            TraceEvent::FlushSpan {
                start: now,
                dur,
                core: core as u32,
                scope,
                background,
                dropped_lines: dropped,
            }
        );
        trace_event!(
            self.trace,
            TraceEvent::CacheEpoch { t: now, core: core as u32, epoch, dropped_lines: dropped }
        );
    }

    /// Records a reassignment marker plus its blocking-window span.
    fn note_reassign(&mut self, core: usize, kind: ReassignKind, block: Cycles) {
        if self.trace.is_none() {
            return;
        }
        let now = self.now;
        trace_event!(
            self.trace,
            TraceEvent::Reassign { t: now, core: core as u32, kind, cost: block }
        );
        trace_event!(
            self.trace,
            TraceEvent::TransitionSpan { start: now, dur: block, core: core as u32, kind }
        );
    }

    fn schedule_next_arrival(&mut self, vm: usize) {
        if let Some(t) = self.pending_arrivals[vm].pop() {
            self.events.push(t, Ev::Arrival { vm });
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Arrival { vm } => self.on_arrival(vm),
            Ev::IoDone { vm, token } => self.on_io_done(vm, token),
            Ev::PhaseDone { core, gen } => {
                if self.cores[core].gen == gen {
                    self.on_phase_done(core);
                }
            }
            Ev::UnitDone { core, gen } => {
                if self.cores[core].gen == gen {
                    self.on_unit_done(core);
                }
            }
            Ev::TransitionDone { core, gen } => {
                if self.cores[core].gen == gen {
                    self.on_transition_done(core);
                }
            }
            Ev::AgentTick => self.on_agent_tick(),
        }
    }

    // ----- request arrival / readiness ---------------------------------

    fn on_arrival(&mut self, vm: usize) {
        self.schedule_next_arrival(vm);
        let service = ServiceId((vm % self.catalog.len()) as u8);
        let token = self.next_token;
        self.next_token += 1;
        let invocation = self.next_invocation;
        self.next_invocation += 1;
        let plan = RequestPlan::generate(
            service,
            self.catalog.get(service),
            VmId::from(vm),
            invocation,
            &mut self.rng,
        );
        // DDIO: the NIC deposits the payload into the destination VM's LLC
        // partition (Figure 8(a) step 2).
        for l in 0..plan.payload_lines as u64 {
            self.llc
                .ddio_deposit((invocation << 8) | l, VmId::from(vm));
        }
        self.requests.insert(
            token,
            Req {
                plan,
                phase: 0,
                arrival: self.now,
                exec: Cycles::ZERO,
                io: Cycles::ZERO,
                reassign_wait: Cycles::ZERO,
                flush_wait: Cycles::ZERO,
            },
        );
        let outcome = self.ctrl.enqueue(VmId::from(vm), token, self.now);
        if outcome == EnqueueOutcome::Overflow {
            self.metrics.queue_overflows += 1;
        }
        if self.trace.is_some() {
            let now = self.now;
            let depth = self.ctrl.qm(VmId::from(vm)).queue().ready_len() as u32;
            trace_event!(
                self.trace,
                TraceEvent::RequestArrival { t: now, vm: vm as u32, token }
            );
            trace_event!(
                self.trace,
                TraceEvent::Enqueue {
                    t: now,
                    vm: vm as u32,
                    token,
                    depth,
                    overflow: outcome == EnqueueOutcome::Overflow,
                }
            );
            trace_gauge!(self.trace, "hwqueue.ready_depth", vm as u32, now, depth as f64);
        }
        self.try_serve(vm);
    }

    fn on_io_done(&mut self, vm: usize, token: u64) {
        self.ctrl.qm_mut(VmId::from(vm)).mark_ready(token);
        self.try_serve(vm);
    }

    /// Tries to place ready requests of `vm` on cores: idle bound cores
    /// first, then the emergency buffer, then reclamation of loaned cores.
    ///
    /// With the hardware scheduler, buffer/reclaim paths fire instantly on
    /// any readiness event (the QM raises the interrupt itself). Without
    /// it, a starved VM must wait for the software agent's next decision
    /// point (`allow_reclaim` is only true from tick-driven sweeps and
    /// unit-boundary checks) — the detection latency that makes software
    /// harvesting so painful for sub-millisecond requests.
    fn try_serve_with(&mut self, vm: usize, allow_reclaim: bool) {
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(guard < 100_000, "try_serve spinning on vm{vm}");
            if !self.ctrl.qm(VmId::from(vm)).has_ready() {
                return;
            }
            // 1. An idle core of this VM (bound or temporarily attached).
            if let Some(core) = self.find_idle_core(vm) {
                let (token, _, _) = self
                    .ctrl
                    .qm_mut(VmId::from(vm))
                    .dequeue()
                    .expect("has_ready");
                self.dispatch(core, vm, token, Cycles::ZERO, Cycles::ZERO);
                continue;
            }
            if !allow_reclaim && !self.cfg.system.opts.hw_sched && !self.cfg.system.eager_steal
            {
                return;
            }
            // 2. Emergency buffer (software harvesting): standby cores can
            // serve any starved Primary VM immediately.
            if !self.buffer.is_empty() {
                let core = self.buffer.remove(0);
                let (token, _, _) = self
                    .ctrl
                    .qm_mut(VmId::from(vm))
                    .dequeue()
                    .expect("has_ready");
                self.attach_buffer_core(core, vm, token);
                // Return one loaned core toward the buffer to conserve
                // capacity, if this VM has one out.
                if let Some(loaned) = self.find_reclaimable_core(vm) {
                    self.begin_return_to_buffer(loaned, vm);
                }
                continue;
            }
            // 3. Direct reclamation (Figure 8(c) / Figure 10).
            if !self.cfg.system.mode.enabled() {
                return;
            }
            if let Some(core) = self.find_reclaimable_core(vm) {
                let (token, _, _) = self
                    .ctrl
                    .qm_mut(VmId::from(vm))
                    .dequeue()
                    .expect("has_ready");
                self.reclaim(core, vm, token);
                continue;
            }
            return;
        }
    }

    /// Event-driven placement attempt (arrival / I/O completion).
    fn try_serve(&mut self, vm: usize) {
        self.try_serve_with(vm, false);
    }

    fn find_idle_core(&self, vm: usize) -> Option<usize> {
        // Cores on loan to the Harvest VM are *not* idle cores of this VM,
        // even if momentarily idle (the Figure 4 idle-Harvest-VM mode);
        // they must come back through the reclaim path and pay its cost.
        let loaned = self.ctrl.qm(VmId::from(vm)).loaned_cores();
        let eligible = |i: usize, c: &Core| {
            matches!(c.run, Run::Idle)
                && !c.in_buffer
                && (c.temp_for == Some(vm) || (c.bound == vm && c.temp_for.is_none()))
                && !loaned.contains(&CoreId::from(i))
        };
        // Prefer a core whose caches already hold this VM's state.
        let mut fallback = None;
        for (i, c) in self.cores.iter().enumerate() {
            if eligible(i, c) {
                if c.resident == Some(vm) {
                    return Some(i);
                }
                fallback.get_or_insert(i);
            }
        }
        fallback
    }

    /// A loaned core currently running (or idling as) Harvest work.
    fn find_reclaimable_core(&self, vm: usize) -> Option<usize> {
        self.ctrl
            .qm(VmId::from(vm))
            .loaned_cores()
            .iter()
            .map(|c| c.index())
            .find(|&i| matches!(self.cores[i].run, Run::Unit { .. } | Run::Idle))
    }

    // ----- dispatch and execution ---------------------------------------

    /// Per-dispatch overhead: discovery (polling unless the hardware
    /// scheduler notifies), queue access, and request-context load.
    fn dispatch_overhead(&mut self, core: usize, vm: usize) -> Cycles {
        let l = &self.cfg.latency;
        let o = &self.cfg.system.opts;
        let mut cost = Cycles::ZERO;
        if o.hw_sched {
            cost += self.tree.round_trip(CoreId::from(core));
        } else {
            // Software discovery: polling plus scheduler wake-up. Median is
            // a few µs but the tail is long (run-queue delays, preempted
            // pollers) — lognormal, like measured Linux wake-up latencies.
            let delay_ns =
                hh_sim::LogNormal::with_median(l.poll_mean.as_ns(), 1.3).sample(&mut self.rng);
            cost += Cycles::from_ns(delay_ns);
        }
        if o.hw_queue {
            cost += Cycles::new(4); // SRAM chunk access
        } else {
            // Memory-mapped queue: lock + coherence misses; contention
            // grows with queue depth (cores, NIC-DDIO and the scheduler
            // all fight over the same lines, Section 4.1.6).
            let depth = self.ctrl.qm(VmId::from(vm)).queue().ready_len() as u64;
            let contention = 1 + depth.min(40) / 4;
            cost += l.mm_queue * contention
                + Cycles::new(self.rng.below(l.mm_queue.as_u64().max(1)));
        }
        cost += if o.hw_ctxtsw {
            // Hardware save/restore via the Request Context Memory on the
            // regular NoC (Section 4.1.8).
            l.hw_ctxt + self.mesh.latency_to_center(CoreId::from(core)) * 2
        } else {
            l.sw_dispatch
        };
        cost
    }

    /// Places `token`'s current phase on an idle `core` of the same VM.
    fn dispatch(&mut self, core: usize, vm: usize, token: u64, reassign: Cycles, flush: Cycles) {
        if self.trace.is_some() {
            let now = self.now;
            let depth = self.ctrl.qm(VmId::from(vm)).queue().ready_len() as u32;
            trace_event!(
                self.trace,
                TraceEvent::Dispatch { t: now, vm: vm as u32, core: core as u32, token, depth }
            );
            trace_gauge!(self.trace, "hwqueue.ready_depth", vm as u32, now, depth as f64);
        }
        let mut overhead = self.dispatch_overhead(core, vm);
        // vCPUs stalled by an in-flight hypervisor detach/attach cannot
        // pick up work until the lock is released.
        let pause = self.vm_paused_until[vm].saturating_sub(self.now);
        overhead += pause;
        self.begin_phase(core, vm, token, overhead, reassign + pause, flush);
    }

    /// Starts executing the current phase after `lead` cycles of overhead.
    fn begin_phase(
        &mut self,
        core: usize,
        vm: usize,
        token: u64,
        lead: Cycles,
        reassign: Cycles,
        flush: Cycles,
    ) {
        let vis = if self.cores[core].hidden_until > self.now && self.cfg.system.opts.partition {
            Visibility::PrimaryFlushPending
        } else {
            Visibility::Primary
        };
        let stream = {
            let req = &self.requests[&token];
            req.plan.phases[req.phase].stream
        };
        let stalls = self.stream_stalls(core, &stream, vis);
        let compute = {
            let req = &self.requests[&token];
            req.plan.phases[req.phase].compute
        };
        let duration = compute + stalls;
        {
            let req = self.requests.get_mut(&token).expect("live request");
            req.exec += duration;
            req.reassign_wait += reassign;
            req.flush_wait += flush;
        }
        let c = &mut self.cores[core];
        c.run = Run::Req { token };
        c.resident = Some(vm);
        c.temp_for = c.temp_for.filter(|_| true); // unchanged
        c.gen += 1;
        let gen = c.gen;
        self.busy_add(1.0);
        if self.trace.is_some() {
            let now = self.now;
            trace_event!(
                self.trace,
                TraceEvent::PhaseSpan {
                    start: now,
                    dur: lead + duration,
                    core: core as u32,
                    vm: vm as u32,
                    token,
                }
            );
        }
        self.events
            .push(self.now + lead + duration, Ev::PhaseDone { core, gen });
    }

    fn stream_stalls(
        &mut self,
        core: usize,
        spec: &hh_workload::StreamSpec,
        vis: Visibility,
    ) -> Cycles {
        // With MSHR modeling the stream advances a time cursor so that
        // outstanding-miss occupancy (and DRAM bank occupancy) reflect the
        // real pacing of the phase; the default model issues the sampled
        // references at the phase start.
        let cursor_mode = self.cfg.hierarchy.mshrs.is_some();
        let mem = &mut self.mems[core];
        let mut total = Cycles::ZERO;
        for acc in spec.iter() {
            let t = if cursor_mode { self.now + total } else { self.now };
            total += mem.access(t, acc, vis, &mut self.llc, &mut self.dram).stall;
        }
        total
    }

    fn on_phase_done(&mut self, core: usize) {
        let token = match self.cores[core].run {
            Run::Req { token } => token,
            _ => unreachable!("phase-done on non-request core"),
        };
        self.busy_add(-1.0);
        let vm = self.requests[&token].plan.vm.index();
        let io_after = {
            let req = &self.requests[&token];
            req.plan.phases[req.phase].io_after
        };
        match io_after {
            Some(io) => {
                {
                    let req = self.requests.get_mut(&token).expect("live request");
                    req.phase += 1;
                    req.io += io;
                }
                self.ctrl.qm_mut(VmId::from(vm)).mark_blocked(token);
                // The adaptive policy learns each VM's typical block length.
                let e = &mut self.ewma_block_us[vm];
                *e = 0.8 * *e + 0.2 * io.as_us();
                if self.trace.is_some() {
                    let now = self.now;
                    trace_event!(
                        self.trace,
                        TraceEvent::RequestBlocked { t: now, core: core as u32, token, io }
                    );
                }
                self.events.push(self.now + io, Ev::IoDone { vm, token });
                self.core_idle(core, IdleReason::Blocked);
            }
            None => {
                let req = self.requests.remove(&token).expect("live request");
                self.ctrl.qm_mut(VmId::from(vm)).complete(token);
                self.completed += 1;
                let latency = self.now - req.arrival;
                if self.trace.is_some() {
                    let now = self.now;
                    trace_event!(
                        self.trace,
                        TraceEvent::RequestComplete {
                            t: now,
                            vm: vm as u32,
                            core: core as u32,
                            token,
                            latency,
                        }
                    );
                    trace_hist!(self.trace, "server.latency_us", latency.as_us());
                }
                let svc = &mut self.metrics.services[req.plan.service.index()];
                svc.latency_ms.record(latency.as_ms());
                svc.exec += req.exec;
                svc.io += req.io;
                svc.reassign_wait += req.reassign_wait;
                svc.flush_wait += req.flush_wait;
                svc.completed += 1;
                self.core_idle(core, IdleReason::Termination);
            }
        }
    }

    /// A core finished or lost its work: serve the bound VM, else harvest.
    fn core_idle(&mut self, core: usize, reason: IdleReason) {
        let c = &mut self.cores[core];
        c.run = Run::Idle;
        c.idle_reason = reason;
        c.gen += 1;
        let harvest = self.harvest_vm();
        let temp_for = self.cores[core].temp_for;
        let bound = self.cores[core].bound;
        let serve_vm = temp_for.unwrap_or(bound);

        if self.ctrl.qm(VmId::from(serve_vm)).has_ready() {
            let (token, _, _) = self
                .ctrl
                .qm_mut(VmId::from(serve_vm))
                .dequeue()
                .expect("has_ready");
            self.dispatch(core, serve_vm, token, Cycles::ZERO, Cycles::ZERO);
            return;
        }
        // A buffer core with no more work returns to the buffer.
        if temp_for.is_some() {
            self.begin_return_to_buffer(core, serve_vm);
            return;
        }
        if bound == harvest {
            if self.cfg.system.harvest_busy {
                self.start_unit(core, Cycles::ZERO);
            }
            return;
        }
        // Hardware harvesting: steal immediately when the QM forwards the
        // spinning core to the Harvest VM (Figure 8(b)). Software systems
        // wait for the agent tick.
        let stealable = match self.cfg.system.mode {
            HarvestMode::Disabled => false,
            HarvestMode::OnTermination => reason == IdleReason::Termination,
            HarvestMode::OnBlock => true,
            // Steal on a block only while this VM's blocks are long enough
            // to amortize the round trip (Section 4.1.5 future work).
            HarvestMode::Adaptive => {
                reason == IdleReason::Termination
                    || self.ewma_block_us[bound] >= self.cfg.adaptive_block_threshold_us
            }
        };
        if stealable
            && (self.cfg.system.opts.hw_sched || self.cfg.system.eager_steal)
            && self.away_count(bound) < self.allowed_away(bound)
        {
            self.lend_to_harvest(core);
        }
    }

    // ----- cross-VM transitions -----------------------------------------

    /// Software detach/attach goes through the hypervisor and takes the
    /// VM's lock, briefly stalling its vCPUs (Section 3: hypervisor calls
    /// are half the 5 ms KVM cost). Hardware reassignment never enters the
    /// hypervisor.
    fn pause_vm_for_hypervisor(&mut self, vm: usize) {
        if self.cfg.system.opts.hw_sched || !self.cfg.system.reassign_enabled {
            return;
        }
        let l = self.cfg.latency;
        let pause = match self.cfg.system.sw_reassign {
            SwReassign::Kvm => l.kvm_detach_attach,
            SwReassign::Optimized => l.opt_detach_attach,
        };
        let until = self.now + pause;
        self.vm_paused_until[vm] = self.vm_paused_until[vm].max(until);
    }

    /// Queueing delay behind the single software agent, and occupancy of
    /// the agent for `work` (no-op for hardware scheduling, where each QM
    /// acts independently — Section 4.1.1's "no global lock").
    fn agent_serialize(&mut self, work: Cycles) -> Cycles {
        if self.cfg.system.opts.hw_sched {
            return Cycles::ZERO;
        }
        let wait = self.agent_busy_until.saturating_sub(self.now);
        self.agent_busy_until = self.now + wait + work;
        wait
    }

    /// Latency decomposition of a cross-VM switch of `core`.
    fn switch_cost(&mut self, core: usize, to_harvest: bool) -> SwitchCost {
        let sys = self.cfg.system;
        let l = self.cfg.latency;
        let mut cost = SwitchCost::default();

        if sys.reassign_enabled {
            // Software hypervisor operations have heavy latency tails
            // (locks, RCU grace periods, scheduler interference): sample
            // lognormally around the median cost. KVM's 5 ms is dominated
            // by fixed work, so it only jitters mildly; the optimized
            // path's sub-millisecond syscalls have the long tail. The
            // hardware paths are deterministic.
            let mut sw_op = |median: Cycles, sigma: f64| {
                Cycles::from_ns(
                    hh_sim::LogNormal::with_median(median.as_ns(), sigma).sample(&mut self.rng),
                )
            };
            let detach = if sys.opts.hw_sched {
                l.hw_reassign
            } else {
                match sys.sw_reassign {
                    SwReassign::Kvm => sw_op(l.kvm_detach_attach, 0.3),
                    SwReassign::Optimized => sw_op(l.opt_detach_attach, 1.1),
                }
            };
            let ctxt = if sys.opts.hw_ctxtsw {
                l.hw_ctxt + self.mesh.latency_to_center(CoreId::from(core)) * 2
            } else {
                match sys.sw_reassign {
                    SwReassign::Kvm => sw_op(l.kvm_ctxt, 0.3),
                    SwReassign::Optimized => sw_op(l.opt_ctxt, 1.1),
                }
            };
            let queue_behind_agent = self.agent_serialize(detach);
            cost.reassign_part = queue_behind_agent + detach + ctxt;
            cost.block += cost.reassign_part;
        }

        if sys.flush_enabled {
            if sys.opts.partition {
                let f = if sys.opts.fast_flush {
                    self.cfg.flush.hardware_region()
                } else {
                    // Software region flush: proportional share of wbinvd.
                    let full = self.cfg.flush.software(&mut self.rng);
                    Cycles::new((full.as_u64() as f64 * self.cfg.harvest_frac) as u64)
                };
                let dropped = self.mems[core].flush_harvest_region();
                self.note_flush(core, FlushScope::HarvestRegion, f, !to_harvest, dropped);
                if to_harvest {
                    // Harvest may not start until the worst-case flush
                    // window elapses (timing side channel, Section 4.2.1).
                    cost.start_delay = f;
                    cost.flush_part = f;
                } else {
                    // Reclaim: Primary restarts immediately; the harvest
                    // region is flushed in the background.
                    cost.hidden = f;
                }
            } else {
                let f = if sys.opts.fast_flush {
                    self.cfg.flush.hardware_full()
                } else {
                    self.cfg.flush.software(&mut self.rng)
                };
                let dropped = self.mems[core].flush_all();
                self.note_flush(core, FlushScope::Full, f, false, dropped);
                cost.flush_part = f;
                cost.block += f;
            }
        }
        cost
    }

    /// Primary→Harvest: the core starts pulling Harvest-VM work.
    fn lend_to_harvest(&mut self, core: usize) {
        let bound = self.cores[core].bound;
        debug_assert_ne!(bound, self.harvest_vm());
        let cost = self.switch_cost(core, true);
        self.note_reassign(core, ReassignKind::Lend, cost.block);
        self.pause_vm_for_hypervisor(bound);
        self.ctrl
            .qm_mut(VmId::from(bound))
            .lend_core(CoreId::from(core));
        self.metrics.reassignments += 1;
        let c = &mut self.cores[core];
        c.run = Run::Transition {
            after: After::ServeHarvest {
                start_delay: cost.start_delay,
            },
        };
        c.gen += 1;
        let gen = c.gen;
        self.events
            .push(self.now + cost.block, Ev::TransitionDone { core, gen });
    }

    /// Harvest→Primary: interrupt a loaned core and hand it `token`.
    fn reclaim(&mut self, core: usize, vm: usize, token: u64) {
        self.pause_vm_for_hypervisor(vm);
        self.preempt_unit(core);
        self.ctrl
            .qm_mut(VmId::from(vm))
            .reclaim_core(CoreId::from(core));
        self.metrics.reassignments += 1;
        self.metrics.reclaims += 1;
        let cost = self.switch_cost(core, false);
        self.note_reassign(core, ReassignKind::Reclaim, cost.block + cost.flush_part);
        if self.trace.is_some() {
            let us = (cost.block + cost.flush_part).as_us();
            trace_hist!(self.trace, "server.reclaim_latency_us", us);
        }
        let c = &mut self.cores[core];
        c.resident = Some(vm);
        c.hidden_until = self.now + cost.block + cost.hidden;
        c.run = Run::Transition {
            after: After::ServeReq { token },
        };
        c.gen += 1;
        let gen = c.gen;
        {
            let req = self.requests.get_mut(&token).expect("live request");
            req.reassign_wait += cost.reassign_part;
            req.flush_wait += cost.flush_part;
        }
        self.events
            .push(self.now + cost.block + cost.flush_part, Ev::TransitionDone { core, gen });
    }

    /// A buffer core attaches to `vm` to serve `token` (SmartHarvest's
    /// fast path). Buffer cores were flushed when they joined, so no flush
    /// is needed — only the attach and context load.
    fn attach_buffer_core(&mut self, core: usize, vm: usize, token: u64) {
        let l = self.cfg.latency;
        let queue_behind_agent = self.agent_serialize(l.buffer_attach);
        let block = queue_behind_agent
            + l.buffer_attach
            + if self.cfg.system.opts.hw_ctxtsw {
                l.hw_ctxt
            } else {
                l.opt_ctxt
            };
        self.metrics.reassignments += 1;
        self.note_reassign(core, ReassignKind::BufferAttach, block);
        let c = &mut self.cores[core];
        c.in_buffer = false;
        c.temp_for = Some(vm);
        c.resident = Some(vm);
        c.run = Run::Transition {
            after: After::ServeReq { token },
        };
        c.gen += 1;
        let gen = c.gen;
        {
            let req = self.requests.get_mut(&token).expect("live request");
            req.reassign_wait += block;
        }
        self.events
            .push(self.now + block, Ev::TransitionDone { core, gen });
    }

    /// Sends a core (idle or loaned) toward the emergency buffer: detach
    /// and flush so later attaches are fast.
    fn begin_return_to_buffer(&mut self, core: usize, owner_vm: usize) {
        // If the core is on loan to the Harvest VM, take it back first.
        if self
            .ctrl
            .qm(VmId::from(owner_vm))
            .loaned_cores()
            .contains(&CoreId::from(core))
        {
            self.preempt_unit(core);
            self.ctrl
                .qm_mut(VmId::from(owner_vm))
                .reclaim_core(CoreId::from(core));
        }
        let l = self.cfg.latency;
        let flush = self.cfg.flush.software(&mut self.rng);
        let block = l.opt_detach_attach + flush;
        let dropped = self.mems[core].flush_all();
        self.note_flush(core, FlushScope::Full, flush, false, dropped);
        self.note_reassign(core, ReassignKind::ReturnToBuffer, block);
        let c = &mut self.cores[core];
        c.temp_for = None;
        c.resident = None;
        c.run = Run::Transition {
            after: After::JoinBuffer,
        };
        c.gen += 1;
        let gen = c.gen;
        self.events
            .push(self.now + block, Ev::TransitionDone { core, gen });
    }

    fn on_transition_done(&mut self, core: usize) {
        let after = match self.cores[core].run {
            Run::Transition { after } => after,
            _ => unreachable!("transition-done on non-transitioning core"),
        };
        match after {
            After::ServeHarvest { start_delay } => {
                self.cores[core].resident = Some(self.harvest_vm());
                // If the owner already has work piled up and no free core,
                // hand the core straight back.
                let bound = self.cores[core].bound;
                if self.cfg.system.opts.hw_sched
                    && self.ctrl.qm(VmId::from(bound)).has_ready()
                    && self.find_idle_core(bound).is_none()
                {
                    let (token, _, _) = self
                        .ctrl
                        .qm_mut(VmId::from(bound))
                        .dequeue()
                        .expect("has_ready");
                    self.cores[core].run = Run::Idle;
                    self.reclaim(core, bound, token);
                    return;
                }
                if self.cfg.system.harvest_busy {
                    self.start_unit(core, start_delay);
                } else {
                    // Figure 4 mode: the Harvest VM is idle; the core just
                    // sits loaned.
                    self.cores[core].run = Run::Idle;
                    self.cores[core].gen += 1;
                }
            }
            After::ServeReq { token } => {
                let vm = self.requests[&token].plan.vm.index();
                self.begin_phase(core, vm, token, Cycles::ZERO, Cycles::ZERO, Cycles::ZERO);
            }
            After::JoinBuffer => {
                let c = &mut self.cores[core];
                c.run = Run::Idle;
                c.in_buffer = true;
                c.gen += 1;
                self.buffer.push(core);
                // A fresh buffer core may unblock a starved VM.
                self.sweep_ready_vms();
            }
        }
    }

    // ----- harvest batch execution ---------------------------------------

    fn start_unit(&mut self, core: usize, lead: Cycles) {
        let harvest = self.harvest_vm();
        let duration = if let Some(rem) = self.partial_units.pop() {
            // Preempted remainders are already scaled wall time; do not
            // re-apply the parallel-scaling multiplier.
            rem
        } else {
            let unit = self.next_unit;
            self.next_unit += 1;
            let vis = if self.cfg.system.opts.partition {
                Visibility::Harvest
            } else {
                Visibility::Primary
            };
            let spec = self.job.unit_stream(VmId::from(harvest), unit);
            self.mems[core].set_dram_weight(self.cfg.batch_stall_scale.max(1.0));
            let stalls = self.stream_stalls(core, &spec, vis);
            self.mems[core].set_dram_weight(1.0);
            let scaled =
                Cycles::new((stalls.as_u64() as f64 * self.cfg.batch_stall_scale) as u64);
            let base = self.job.unit_cycles() + scaled;
            // Sub-linear parallel scaling: synchronization and shared-state
            // contention stretch each unit as more vCPUs run concurrently
            // (graph analytics and ML training scale far from linearly).
            let n = self.active_units as f64;
            Cycles::new((base.as_u64() as f64 * (1.0 + self.job.scaling_penalty * n)) as u64)
        };
        self.active_units += 1;
        let end = self.now + lead + duration;
        let c = &mut self.cores[core];
        c.run = Run::Unit { end };
        c.gen += 1;
        let gen = c.gen;
        self.busy_add(1.0);
        if self.trace.is_some() {
            let now = self.now;
            trace_event!(
                self.trace,
                TraceEvent::UnitSpan { start: now, dur: lead + duration, core: core as u32 }
            );
        }
        self.events.push(end, Ev::UnitDone { core, gen });
    }

    fn on_unit_done(&mut self, core: usize) {
        self.busy_add(-1.0);
        self.active_units = self.active_units.saturating_sub(1);
        self.metrics.batch_units += 1;
        // Between units, honour a pending reclaim by the owner VM — the
        // QM's interrupt logic exists only in hardware (Section 4.1.5); a
        // software Harvest VM cannot see the Primary VM's queue and keeps
        // running until the agent intervenes.
        let bound = self.cores[core].bound;
        let harvest = self.harvest_vm();
        if self.cfg.system.opts.hw_sched
            && bound != harvest
            && self.ctrl.qm(VmId::from(bound)).has_ready()
            && self.find_idle_core(bound).is_none()
        {
            let (token, _, _) = self
                .ctrl
                .qm_mut(VmId::from(bound))
                .dequeue()
                .expect("has_ready");
            // busy_cores was already decremented above; clear the run state
            // so the reclaim's preempt does not double-count it.
            self.cores[core].run = Run::Idle;
            self.reclaim(core, bound, token);
            return;
        }
        self.start_unit(core, Cycles::ZERO);
    }

    fn preempt_unit(&mut self, core: usize) {
        if let Run::Unit { end } = self.cores[core].run {
            if end > self.now {
                self.partial_units.push(end - self.now);
            }
            self.busy_add(-1.0);
            self.active_units = self.active_units.saturating_sub(1);
        }
        self.cores[core].gen += 1;
    }

    // ----- software harvesting agent -------------------------------------

    fn on_agent_tick(&mut self) {
        if self.completed >= self.total_requests {
            return;
        }
        let harvest = self.harvest_vm();
        // Update per-VM demand prediction: a decaying *peak* of concurrent
        // busy cores. SmartHarvest predicts near-future demand; predicting
        // the recent peak (not the mean) is what keeps typical requests
        // from ever touching the reclaim machinery.
        for vm in 0..self.cfg.primary_vms {
            let busy = self
                .cores
                .iter()
                .filter(|c| c.bound == vm && matches!(c.run, Run::Req { .. }))
                .count() as f64;
            self.ewma_busy[vm] = (self.ewma_busy[vm] * 0.97).max(busy);
        }
        // Release surplus buffer cores back to their bound VMs (the buffer
        // only needs `buffer_cores` standbys; extras just waste capacity).
        while self.buffer.len() > self.cfg.system.buffer_cores {
            let core = self.buffer.pop().expect("non-empty");
            let c = &mut self.cores[core];
            c.in_buffer = false;
            c.idle_reason = IdleReason::Termination;
            c.gen += 1;
        }
        // Refill the emergency buffer from idle (stealable) primary cores
        // whose VM still has headroom (at most one per tick; it joins the
        // list when its detach+flush transition completes).
        if self.buffer.len() < self.cfg.system.buffer_cores {
            let candidate = (0..self.cores.len()).find(|&i| {
                self.core_is_stealable_idx(i)
                    && self.away_count(self.cores[i].bound)
                        < self.allowed_away(self.cores[i].bound)
            });
            if let Some(core) = candidate {
                let owner = self.cores[core].bound;
                self.begin_return_to_buffer(core, owner);
            }
        }
        // Lend predicted-idle cores to the Harvest VM.
        if self.cfg.system.mode.enabled() {
            for vm in 0..self.cfg.primary_vms {
                for _ in 0..2 {
                    if self.away_count(vm) >= self.allowed_away(vm) {
                        break;
                    }
                    if let Some(core) = self.find_stealable_core_of(vm) {
                        // Keep enough free cores to cover the predicted
                        // peak concurrency; lend the rest.
                        let busy = self
                            .cores
                            .iter()
                            .filter(|c| c.bound == vm && matches!(c.run, Run::Req { .. }))
                            .count() as f64;
                        let free = self
                            .cores
                            .iter()
                            .enumerate()
                            .filter(|(i, c)| {
                                c.bound == vm && self.core_is_stealable_idx(*i)
                            })
                            .count() as f64;
                        let needed_free = (self.ewma_busy[vm] - busy + 0.5).max(0.0);
                        if free > needed_free {
                            self.lend_to_harvest(core);
                            continue;
                        }
                    }
                    break;
                }
            }
        }
        let _ = harvest;
        // The tick also acts as the software scheduler's safety net: any
        // VM with work that slipped through event-driven serving gets
        // another placement attempt.
        self.sweep_ready_vms();
        self.events
            .push(self.now + self.cfg.latency.agent_tick, Ev::AgentTick);
    }

    /// Placement retry for every Primary VM with ready work, with the
    /// agent's authority to reclaim/attach cores.
    fn sweep_ready_vms(&mut self) {
        for vm in 0..self.cfg.primary_vms {
            if self.ctrl.qm(VmId::from(vm)).has_ready() {
                self.try_serve_with(vm, true);
            }
        }
    }

    /// How many cores the software agent may keep away from `vm` at once:
    /// the static cap, tightened by the demand prediction (reserve enough
    /// resident cores to cover the recent peak concurrency plus slack).
    /// Hardware harvesting ignores prediction — reclamation is cheap.
    fn allowed_away(&self, vm: usize) -> usize {
        let cap = self.cfg.system.max_loaned_per_vm;
        // Once a cross-VM switch is essentially free — hardware context
        // switching plus partitioned (background) flushing — prediction
        // buys nothing and the QM forwards every idle core (the full
        // HardHarvest behaviour). While switches are expensive, the agent
        // reserves enough resident cores to cover recent peak demand.
        let o = &self.cfg.system.opts;
        if (o.hw_ctxtsw && o.partition) || !self.cfg.system.predictive_reserve {
            return cap;
        }
        let reserve = (self.ewma_busy[vm] + 0.5).ceil() as usize;
        cap.min(self.cfg.cores_per_primary.saturating_sub(reserve))
    }

    /// Cores of `vm` currently away from it: on loan to the Harvest VM,
    /// parked in the emergency buffer, or temporarily serving another VM.
    fn away_count(&self, vm: usize) -> usize {
        let loaned = self.ctrl.qm(VmId::from(vm)).loaned_cores().len();
        let parked = self
            .cores
            .iter()
            .filter(|c| c.bound == vm && (c.in_buffer || c.temp_for.is_some()))
            .count();
        loaned + parked
    }

    fn core_is_stealable_idx(&self, i: usize) -> bool {
        // A core already on loan (idle only because the Harvest VM itself
        // is idle, as in the Figure 4 setup) cannot be lent twice.
        let c = &self.cores[i];
        if c.bound != self.harvest_vm()
            && self
                .ctrl
                .qm(VmId::from(c.bound))
                .loaned_cores()
                .contains(&CoreId::from(i))
        {
            return false;
        }
        self.core_is_stealable(c)
    }

    fn core_is_stealable(&self, c: &Core) -> bool {
        matches!(c.run, Run::Idle)
            && !c.in_buffer
            && c.temp_for.is_none()
            && c.bound != self.harvest_vm()
            && match self.cfg.system.mode {
                HarvestMode::Disabled => self.cfg.system.buffer_cores > 0,
                HarvestMode::OnTermination => c.idle_reason == IdleReason::Termination,
                HarvestMode::OnBlock => true,
                HarvestMode::Adaptive => {
                    c.idle_reason == IdleReason::Termination
                        || self.ewma_block_us[c.bound] >= self.cfg.adaptive_block_threshold_us
                }
            }
    }

    /// The named structural invariants of a mid-simulation server state.
    /// A violation of any of them is a simulator bug, never a workload
    /// condition. Packaged as an [`InvariantSet`] so the `hh-check` oracle
    /// suite, property tests and the periodic debug hook all run the same
    /// rules and get the same pinpointed reports.
    fn invariant_set() -> InvariantSet<ServerSim> {
        InvariantSet::new()
            .with(invariant("busy-core-level-bounds", |s: &ServerSim| {
                let level = s.metrics.busy_cores.level();
                if (-1e-9..=s.cfg.cores as f64 + 1e-9).contains(&level) {
                    Ok(())
                } else {
                    Err(format!(
                        "busy-core level {level} outside [0, {}]",
                        s.cfg.cores
                    ))
                }
            }))
            .with(invariant("rq-chunk-conservation", |s: &ServerSim| {
                if s.ctrl.chunk_accounting_ok() {
                    Ok(())
                } else {
                    Err(format!(
                        "owned+free chunk accounting broken (free={})",
                        s.ctrl.free_chunks()
                    ))
                }
            }))
            .with(invariant("subqueue-fifo-order", |s: &ServerSim| {
                for vm in 0..=s.cfg.primary_vms {
                    let arr = s.ctrl.qm(VmId::from(vm)).queue().ready_arrivals();
                    if let Some(w) = arr.windows(2).find(|w| w[0] > w[1]) {
                        return Err(format!(
                            "vm{vm} ready entries out of FIFO order: {} after {}",
                            w[1], w[0]
                        ));
                    }
                }
                Ok(())
            }))
            .with(invariant("buffer-list-consistency", |s: &ServerSim| {
                for &b in &s.buffer {
                    if !s.cores[b].in_buffer {
                        return Err(format!("buffer list/flag mismatch on core {b}"));
                    }
                    if !matches!(s.cores[b].run, Run::Idle) {
                        return Err(format!("buffered core {b} is not idle"));
                    }
                }
                Ok(())
            }))
            .with(invariant("loaned-core-binding", |s: &ServerSim| {
                for vm in 0..s.cfg.primary_vms {
                    let qm = s.ctrl.qm(VmId::from(vm));
                    for c in qm.loaned_cores() {
                        let core = &s.cores[c.index()];
                        if core.bound != vm {
                            return Err(format!("loaned core {c} not bound to vm{vm}"));
                        }
                        if core.in_buffer {
                            return Err(format!("loaned core {c} sits in the buffer"));
                        }
                    }
                }
                Ok(())
            }))
            .with(invariant("live-request-tokens", |s: &ServerSim| {
                for (i, c) in s.cores.iter().enumerate() {
                    if let Run::Req { token } = c.run {
                        if !s.requests.contains_key(&token) {
                            return Err(format!("core {i} runs unknown request {token}"));
                        }
                    }
                }
                Ok(())
            }))
    }

    /// Checks every structural invariant against the current state,
    /// returning the first violation (named rule plus offending values).
    /// Run automatically every few thousand events in debug builds; also
    /// callable from tests and the `hh-check` harness at any point.
    pub fn check_invariants(&self) -> Result<(), InvariantViolation> {
        Self::invariant_set().check_all(self)
    }

    fn find_stealable_core(&self) -> Option<usize> {
        (0..self.cores.len()).find(|&i| self.core_is_stealable_idx(i))
    }

    fn find_stealable_core_of(&self, vm: usize) -> Option<usize> {
        (0..self.cores.len())
            .find(|&i| self.cores[i].bound == vm && self.core_is_stealable_idx(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemSpec;

    fn run_small(system: SystemSpec, seed: u64) -> ServerMetrics {
        let mut cfg = ServerConfig::small(system);
        cfg.seed = seed;
        ServerSim::new(cfg).run()
    }

    #[test]
    fn no_harvest_completes_all_requests() {
        let m = run_small(SystemSpec::no_harvest(), 1);
        assert_eq!(m.completed(), 240);
        assert!(m.reassignments == 0, "NoHarvest never reassigns");
        assert!(m.batch_units > 0, "harvest VM works on its base cores");
    }

    #[test]
    fn hardharvest_block_completes_and_harvests() {
        let m = run_small(SystemSpec::hardharvest_block(), 2);
        assert_eq!(m.completed(), 240);
        assert!(m.reassignments > 0, "cores should move");
        assert!(m.reclaims > 0, "primaries should reclaim");
    }

    #[test]
    fn harvesting_increases_batch_throughput() {
        let none = run_small(SystemSpec::no_harvest(), 3);
        let hh = run_small(SystemSpec::hardharvest_block(), 3);
        assert!(
            hh.batch_units_per_sec() > none.batch_units_per_sec(),
            "hh {} <= none {}",
            hh.batch_units_per_sec(),
            none.batch_units_per_sec()
        );
    }

    #[test]
    fn software_harvesting_hurts_tail_latency_more_than_hardware() {
        let sw = run_small(SystemSpec::harvest_block(), 4);
        let hw = run_small(SystemSpec::hardharvest_block(), 4);
        let sw_p99 = sw.pooled_latency_ms().p99();
        let hw_p99 = hw.pooled_latency_ms().p99();
        assert!(
            sw_p99 > hw_p99,
            "software p99 {sw_p99} should exceed hardware p99 {hw_p99}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_small(SystemSpec::hardharvest_term(), 7);
        let b = run_small(SystemSpec::hardharvest_term(), 7);
        assert_eq!(a.pooled_latency_ms().values(), b.pooled_latency_ms().values());
        assert_eq!(a.batch_units, b.batch_units);
        assert_eq!(a.reassignments, b.reassignments);
    }

    #[test]
    fn utilization_monotone_no_harvest_lowest() {
        let none = run_small(SystemSpec::no_harvest(), 5);
        let hh = run_small(SystemSpec::hardharvest_block(), 5);
        assert!(
            hh.avg_busy_cores() > none.avg_busy_cores(),
            "hh {} vs none {}",
            hh.avg_busy_cores(),
            none.avg_busy_cores()
        );
    }

    #[test]
    fn term_mode_reassigns_less_than_block_mode() {
        let term = run_small(SystemSpec::hardharvest_term(), 6);
        let block = run_small(SystemSpec::hardharvest_block(), 6);
        assert!(
            block.reassignments >= term.reassignments,
            "block {} < term {}",
            block.reassignments,
            term.reassignments
        );
    }

    #[test]
    fn adaptive_sits_between_term_and_block() {
        let term = run_small(SystemSpec::hardharvest_term(), 9);
        let adaptive = run_small(SystemSpec::hardharvest_adaptive(), 9);
        let block = run_small(SystemSpec::hardharvest_block(), 9);
        assert!(
            adaptive.reassignments >= term.reassignments,
            "adaptive {} < term {}",
            adaptive.reassignments,
            term.reassignments
        );
        assert!(
            adaptive.reassignments <= block.reassignments,
            "adaptive {} > block {}",
            adaptive.reassignments,
            block.reassignments
        );
        assert_eq!(adaptive.completed(), 240);
    }

    #[test]
    fn eager_steal_multiplies_software_reassignments() {
        // The software baselines steal per idle event (eager); a variant
        // that only steals at agent ticks moves cores far less often.
        let mut lazy = SystemSpec::harvest_block();
        lazy.eager_steal = false;
        let lazy = run_small(lazy, 10);
        let eager = run_small(SystemSpec::harvest_block(), 10);
        assert!(
            eager.reassignments > lazy.reassignments,
            "eager {} <= lazy {}",
            eager.reassignments,
            lazy.reassignments
        );
    }

    #[test]
    fn loan_cap_limits_concurrent_loans() {
        let mut capped = SystemSpec::hardharvest_block();
        capped.max_loaned_per_vm = 1;
        let capped_m = run_small(capped, 11);
        let free_m = run_small(SystemSpec::hardharvest_block(), 11);
        assert!(capped_m.batch_units < free_m.batch_units);
        assert_eq!(capped_m.completed(), 240);
    }

    #[test]
    fn invariants_hold_on_a_fresh_server() {
        let sim = ServerSim::new(ServerConfig::small(SystemSpec::hardharvest_block()));
        sim.check_invariants()
            .expect("fresh server must satisfy every structural invariant");
    }

    #[test]
    fn latencies_are_sub_50ms() {
        let m = run_small(SystemSpec::hardharvest_block(), 8);
        let mut lat = m.pooled_latency_ms();
        assert!(lat.p99() < 50.0, "p99 {}", lat.p99());
        assert!(lat.median() > 0.1, "median {}", lat.median());
    }
}
