//! System specification: the five evaluated architectures, the ablation
//! knobs, and all latency models.

use hh_mem::{FlushModel, HierarchyConfig, LlcConfig, PolicyKind};
use hh_sim::Cycles;
use hh_workload::CatalogKind;
use serde::{Deserialize, Serialize};

/// When a Primary-VM core may be stolen (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HarvestMode {
    /// No harvesting; idle cores stay idle (the NoHarvest baseline).
    Disabled,
    /// Steal only cores idle because a request *terminated* (-Term).
    OnTermination,
    /// Also steal cores idle because a request *blocked on I/O* (-Block).
    OnBlock,
    /// The paper's Section 4.1.5 future-work policy, implemented here as an
    /// extension: steal on blocking calls only while the VM's observed
    /// block durations are long enough to amortize the switch; otherwise
    /// behave like `-Term`.
    Adaptive,
}

impl HarvestMode {
    /// Whether harvesting is on at all.
    pub fn enabled(self) -> bool {
        !matches!(self, HarvestMode::Disabled)
    }

    /// Whether a core idled by a blocking call is *unconditionally*
    /// stealable ([`HarvestMode::Adaptive`] decides per VM at run time).
    pub fn steals_on_block(self) -> bool {
        matches!(self, HarvestMode::OnBlock)
    }
}

/// The cumulative hardware-optimization flags of Figures 12/13/15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OptFlags {
    /// In-hardware request scheduling: QMs notify cores instantly instead
    /// of cores polling and the agent deciding at ticks (+Sched).
    pub hw_sched: bool,
    /// Dedicated SRAM request queues instead of memory-mapped queues
    /// (+Queue).
    pub hw_queue: bool,
    /// In-hardware context save/restore incl. VM state registers
    /// (+CtxtSw).
    pub hw_ctxtsw: bool,
    /// Harvest/non-harvest way partitioning of private caches and TLBs
    /// (+Part). Off ⇒ full flush on every cross-VM switch.
    pub partition: bool,
    /// Efficient hardware flush/invalidate engine (+Flush).
    pub fast_flush: bool,
    /// The Algorithm 1 replacement policy (the final HardHarvest step);
    /// off ⇒ LRU.
    pub smart_repl: bool,
}

impl OptFlags {
    /// Everything on — the full HardHarvest design.
    pub fn all() -> Self {
        OptFlags {
            hw_sched: true,
            hw_queue: true,
            hw_ctxtsw: true,
            partition: true,
            fast_flush: true,
            smart_repl: true,
        }
    }
}

/// Software-path detach/attach cost class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwReassign {
    /// Stock KVM hypervisor calls: ≈2.5 ms detach/attach + ≈2.5 ms context
    /// load (Section 3: "moving a core across VMs takes ~5 ms").
    Kvm,
    /// SmartHarvest's optimized path: ≈100 µs + ≈100 µs.
    Optimized,
}

/// All latency constants of the reassignment paths.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// KVM detach+attach hypervisor calls.
    pub kvm_detach_attach: Cycles,
    /// KVM VM-context load.
    pub kvm_ctxt: Cycles,
    /// SmartHarvest optimized detach+attach.
    pub opt_detach_attach: Cycles,
    /// SmartHarvest optimized context load.
    pub opt_ctxt: Cycles,
    /// Hardware QM-mediated reassignment (no hypervisor): "a few µs".
    pub hw_reassign: Cycles,
    /// Hardware context switch (µManycore-style): "a few 10s of ns".
    pub hw_ctxt: Cycles,
    /// Software request-dispatch overhead (thread wake + queue pop).
    pub sw_dispatch: Cycles,
    /// Median extra delay before a polling core notices ready work and the
    /// software scheduler dispatches it (no hardware scheduler). Sampled
    /// lognormally — the tail of software wake-ups is long.
    pub poll_mean: Cycles,
    /// Extra per-dequeue cost of a memory-mapped queue vs the SRAM queue
    /// (lock + coherence misses).
    pub mm_queue: Cycles,
    /// Software harvesting-agent monitoring period.
    pub agent_tick: Cycles,
    /// Emergency-buffer attach cost (SmartHarvest keeps standby cores that
    /// can be handed to a Primary VM quickly).
    pub buffer_attach: Cycles,
}

impl LatencyModel {
    /// Paper-calibrated defaults (Sections 3 and 4.1.1).
    pub fn paper() -> Self {
        LatencyModel {
            kvm_detach_attach: Cycles::from_ms(2.5),
            kvm_ctxt: Cycles::from_ms(2.5),
            opt_detach_attach: Cycles::from_us(100.0),
            opt_ctxt: Cycles::from_us(100.0),
            hw_reassign: Cycles::from_us(2.0),
            hw_ctxt: Cycles::from_ns(50.0),
            sw_dispatch: Cycles::from_ns(600.0),
            poll_mean: Cycles::from_us(18.0),
            mm_queue: Cycles::from_ns(500.0),
            agent_tick: Cycles::from_us(500.0),
            buffer_attach: Cycles::from_us(30.0),
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// A complete evaluated system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemSpec {
    /// Figure label.
    pub name: &'static str,
    /// Harvesting aggressiveness.
    pub mode: HarvestMode,
    /// Hardware-optimization flags.
    pub opts: OptFlags,
    /// Software reassignment class used when `opts.hw_sched`/`hw_ctxtsw`
    /// are off.
    pub sw_reassign: SwReassign,
    /// Whether cross-VM switches flush at all (Figure 4 isolates
    /// reassignment cost by never flushing).
    pub flush_enabled: bool,
    /// Whether reassignment costs are paid (Figure 5's Flush-* bars
    /// isolate flushing by making reassignment free).
    pub reassign_enabled: bool,
    /// Whether the Harvest VM actually executes work (Figure 4 runs an
    /// always-idle Harvest VM so caches stay unpolluted).
    pub harvest_busy: bool,
    /// Emergency-buffer size for software harvesting (0 for hardware).
    pub buffer_cores: usize,
    /// Cap on simultaneously-loaned cores per Primary VM. The paper's
    /// Figure 4 characterization moves one core at a time; production
    /// software harvesting is similarly conservative. Hardware harvesting
    /// has no such cap (`usize::MAX`).
    pub max_loaned_per_vm: usize,
    /// Steal/reclaim on every idle/ready event even without the hardware
    /// scheduler (the Figures 4/5 characterization scripts move cores per
    /// event, paying full software costs each time).
    pub eager_steal: bool,
    /// Keep enough resident cores to cover predicted peak demand
    /// (SmartHarvest's load prediction). The Section 3 characterization
    /// scripts have no prediction: they steal every idle core.
    pub predictive_reserve: bool,
}

impl SystemSpec {
    fn base(name: &'static str, mode: HarvestMode) -> Self {
        SystemSpec {
            name,
            mode,
            opts: OptFlags::default(),
            sw_reassign: SwReassign::Optimized,
            flush_enabled: true,
            reassign_enabled: true,
            harvest_busy: true,
            // SmartHarvest steals per idle event (that is why it needs an
            // emergency buffer for the common reclaim), but leaves each VM
            // one resident core of headroom; the buffer and headroom serve
            // the median request, mispredicted bursts pay the full
            // software reassignment in the tail.
            buffer_cores: 2,
            max_loaned_per_vm: usize::MAX,
            eager_steal: true,
            predictive_reserve: true,
        }
    }

    /// The conventional no-harvesting system.
    pub fn no_harvest() -> Self {
        let mut s = Self::base("NoHarvest", HarvestMode::Disabled);
        s.buffer_cores = 0;
        s
    }

    /// [`SystemSpec::no_harvest`] under a figure-specific label (e.g.
    /// Figure 4's "No-Move", Figure 5's "No Flush").
    pub fn no_harvest_named(name: &'static str) -> Self {
        let mut s = Self::no_harvest();
        s.name = name;
        s
    }

    /// SmartHarvest-style software harvesting on request termination —
    /// the paper's baseline.
    pub fn harvest_term() -> Self {
        Self::base("Harvest-Term", HarvestMode::OnTermination)
    }

    /// Software harvesting that also steals on blocking I/O.
    pub fn harvest_block() -> Self {
        Self::base("Harvest-Block", HarvestMode::OnBlock)
    }

    /// HardHarvest stealing only on termination.
    pub fn hardharvest_term() -> Self {
        SystemSpec {
            opts: OptFlags::all(),
            buffer_cores: 0,
            max_loaned_per_vm: usize::MAX,
            ..Self::base("HardHarvest-Term", HarvestMode::OnTermination)
        }
    }

    /// HardHarvest stealing on termination and on blocking I/O — the
    /// paper's full proposal.
    pub fn hardharvest_block() -> Self {
        SystemSpec {
            opts: OptFlags::all(),
            buffer_cores: 0,
            max_loaned_per_vm: usize::MAX,
            ..Self::base("HardHarvest-Block", HarvestMode::OnBlock)
        }
    }

    /// The Section 4.1.5 future-work extension: HardHarvest that harvests
    /// on blocking calls only when a VM's blocks are long enough to be
    /// worth it.
    pub fn hardharvest_adaptive() -> Self {
        SystemSpec {
            opts: OptFlags::all(),
            buffer_cores: 0,
            max_loaned_per_vm: usize::MAX,
            ..Self::base("HardHarvest-Adaptive", HarvestMode::Adaptive)
        }
    }

    /// The five headline systems in figure order.
    pub fn evaluated_five() -> Vec<SystemSpec> {
        vec![
            Self::no_harvest(),
            Self::harvest_term(),
            Self::harvest_block(),
            Self::hardharvest_term(),
            Self::hardharvest_block(),
        ]
    }

    /// The Figure 12 cumulative ladder, starting from `harvest_block`.
    pub fn fig12_ladder() -> Vec<SystemSpec> {
        type Step = (&'static str, fn(&mut OptFlags));
        let mut out = vec![Self::harvest_term(), Self::harvest_block()];
        let mut s = Self::harvest_block();
        let steps: [Step; 6] = [
            ("+Sched", |o| o.hw_sched = true),
            ("+Queue", |o| o.hw_queue = true),
            ("+CtxtSw", |o| o.hw_ctxtsw = true),
            ("+Part", |o| o.partition = true),
            ("+Flush", |o| o.fast_flush = true),
            ("HardHarvest", |o| o.smart_repl = true),
        ];
        for (name, apply) in steps {
            apply(&mut s.opts);
            s.name = name;
            // The emergency buffer compensates for *expensive* software
            // reassignment; it becomes pointless only once context switch
            // and flush are both handled in hardware.
            if s.opts.hw_ctxtsw && s.opts.partition {
                s.buffer_cores = 0;
            }
            out.push(s);
        }
        out
    }

    /// The Figure 13 ablation: CtxtSw only, Sched only, both.
    pub fn fig13_ablation() -> Vec<SystemSpec> {
        let mk = |name, sched, ctxt| {
            let mut s = Self::harvest_block();
            s.name = name;
            s.opts.hw_sched = sched;
            s.opts.hw_ctxtsw = ctxt;
            s
        };
        vec![
            Self::harvest_block(),
            mk("+CtxtSw", false, true),
            mk("+Sched", true, false),
            mk("+CtxtSw&Sched", true, true),
        ]
    }

    /// The Figure 15 ladder: optimizations on NoHarvest (no harvesting, so
    /// partition/flush are irrelevant; the final step is the replacement
    /// policy alone).
    pub fn fig15_ladder() -> Vec<SystemSpec> {
        type Step = (&'static str, fn(&mut OptFlags));
        let mut out = vec![Self::no_harvest()];
        let mut s = Self::no_harvest();
        let steps: [Step; 4] = [
            ("+Sched", |o| o.hw_sched = true),
            ("+Queue", |o| o.hw_queue = true),
            ("+CtxtSw", |o| o.hw_ctxtsw = true),
            ("+ReplPolicy", |o| o.smart_repl = true),
        ];
        for (name, apply) in steps {
            apply(&mut s.opts);
            s.name = name;
            out.push(s);
        }
        out
    }

    /// The cache replacement policy this system runs in private
    /// caches/TLBs.
    pub fn cache_policy(&self) -> PolicyKind {
        if self.opts.smart_repl {
            PolicyKind::hardharvest_default()
        } else {
            PolicyKind::Lru
        }
    }
}

/// Everything needed to simulate one server.
#[derive(Debug, Clone, Serialize)]
pub struct ServerConfig {
    /// The evaluated system.
    pub system: SystemSpec,
    /// Cores per server (Table 1: 36).
    pub cores: usize,
    /// Number of Primary VMs (8).
    pub primary_vms: usize,
    /// Cores per Primary VM (4 — the most common Alibaba instance size).
    pub cores_per_primary: usize,
    /// The Harvest VM's base core allocation (4).
    pub harvest_base_cores: usize,
    /// Private-hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Shared LLC geometry.
    pub llc: LlcConfig,
    /// Fraction of private-structure ways in the harvest region (Table 1:
    /// 50 %).
    pub harvest_frac: f64,
    /// Flush latency models.
    pub flush: FlushModel,
    /// Reassignment latency models.
    pub latency: LatencyModel,
    /// Average offered load per Primary VM in requests/second (the paper
    /// drives 65–250 RPS per core on 4-core VMs).
    pub rps_per_vm: f64,
    /// Invocations to complete per Primary VM before stopping.
    pub requests_per_vm: usize,
    /// Which batch job index (into [`hh_workload::BatchCatalog`]) the
    /// Harvest VM runs.
    pub batch_job: usize,
    /// Multiplier applied to batch stall samples (the unit streams are
    /// subsampled for simulation speed; see DESIGN.md).
    pub batch_stall_scale: f64,
    /// Way-enable fraction for the Figure 7 capacity study (1.0 = full).
    pub capacity_frac: f64,
    /// Figure 7's idealized infinite caches/TLBs.
    pub infinite_cache: bool,
    /// Override of the eviction-candidate fraction `M` (Figure 19);
    /// `None` keeps the policy default of 0.75.
    pub eviction_candidate_frac: Option<f64>,
    /// Minimum EWMA block duration (µs) for [`HarvestMode::Adaptive`] to
    /// keep stealing on blocking calls.
    pub adaptive_block_threshold_us: f64,
    /// Request-queue chunks in the controller (Table 1: 32; the overflow
    /// ablation shrinks this).
    pub rq_chunks: usize,
    /// Drive arrivals with millisecond-scale bursts (MMPP), like the
    /// paper's real-trace invocation rates. `false` = plain Poisson.
    pub bursty_load: bool,
    /// Which microservice composition the Primary VMs run.
    pub catalog: CatalogKind,
    /// Random seed.
    pub seed: u64,
}

impl ServerConfig {
    /// Table 1 server with the given system, at a moderate load.
    pub fn table1(system: SystemSpec) -> Self {
        ServerConfig {
            system,
            cores: 36,
            primary_vms: 8,
            cores_per_primary: 4,
            harvest_base_cores: 4,
            hierarchy: HierarchyConfig::table1(),
            llc: LlcConfig::table1(),
            harvest_frac: 0.5,
            flush: FlushModel::paper(),
            latency: LatencyModel::paper(),
            rps_per_vm: 800.0, // 200 RPS/core, inside the paper's 65-250
            requests_per_vm: 1000,
            batch_job: 0,
            batch_stall_scale: 16.0,
            capacity_frac: 1.0,
            infinite_cache: false,
            eviction_candidate_frac: None,
            adaptive_block_threshold_us: 120.0,
            rq_chunks: 32,
            bursty_load: true,
            catalog: CatalogKind::SocialNet,
            seed: 0xC0FFEE,
        }
    }

    /// A scaled-down configuration for unit/integration tests: fewer cores
    /// and requests so a test finishes in milliseconds.
    pub fn small(system: SystemSpec) -> Self {
        let mut c = Self::table1(system);
        c.cores = 13;
        c.primary_vms = 2;
        c.requests_per_vm = 120;
        c
    }

    /// Total Primary cores.
    pub fn primary_cores(&self) -> usize {
        self.primary_vms * self.cores_per_primary
    }

    /// Sanity-checks the topology.
    ///
    /// # Panics
    /// Panics if VMs need more cores than the server has.
    pub fn validate(&self) {
        assert!(
            self.primary_cores() + self.harvest_base_cores <= self.cores,
            "VMs oversubscribe the server"
        );
        assert!(self.harvest_frac > 0.0 && self.harvest_frac < 1.0);
        assert!(self.rps_per_vm > 0.0 && self.requests_per_vm > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_systems_have_expected_shape() {
        let five = SystemSpec::evaluated_five();
        assert_eq!(five.len(), 5);
        assert_eq!(five[0].name, "NoHarvest");
        assert!(!five[0].mode.enabled());
        assert!(five[1].mode.enabled() && !five[1].mode.steals_on_block());
        assert!(five[2].mode.steals_on_block());
        assert_eq!(five[3].opts, OptFlags::all());
        assert_eq!(five[4].name, "HardHarvest-Block");
        assert!(five[4].mode.steals_on_block());
    }

    #[test]
    fn software_systems_keep_a_buffer_and_hardware_does_not() {
        assert_eq!(SystemSpec::harvest_term().buffer_cores, 2);
        assert_eq!(SystemSpec::hardharvest_block().buffer_cores, 0);
    }

    #[test]
    fn fig12_ladder_is_cumulative() {
        let ladder = SystemSpec::fig12_ladder();
        assert_eq!(ladder.len(), 8);
        assert_eq!(ladder[2].name, "+Sched");
        assert!(ladder[2].opts.hw_sched && !ladder[2].opts.hw_queue);
        assert!(ladder[4].opts.hw_ctxtsw && !ladder[4].opts.partition);
        let last = ladder.last().unwrap();
        assert_eq!(last.name, "HardHarvest");
        assert_eq!(last.opts, OptFlags::all());
    }

    #[test]
    fn fig13_ablation_combos() {
        let a = SystemSpec::fig13_ablation();
        assert_eq!(a.len(), 4);
        assert!(!a[1].opts.hw_sched && a[1].opts.hw_ctxtsw);
        assert!(a[2].opts.hw_sched && !a[2].opts.hw_ctxtsw);
        assert!(a[3].opts.hw_sched && a[3].opts.hw_ctxtsw);
    }

    #[test]
    fn fig15_ladder_never_harvests() {
        for s in SystemSpec::fig15_ladder() {
            assert!(!s.mode.enabled(), "{}", s.name);
            assert!(!s.opts.partition && !s.opts.fast_flush);
        }
    }

    #[test]
    fn cache_policy_tracks_smart_repl() {
        assert_eq!(SystemSpec::no_harvest().cache_policy(), PolicyKind::Lru);
        assert_eq!(
            SystemSpec::hardharvest_block().cache_policy(),
            PolicyKind::hardharvest_default()
        );
    }

    #[test]
    fn table1_config_validates() {
        let c = ServerConfig::table1(SystemSpec::hardharvest_block());
        c.validate();
        assert_eq!(c.primary_cores(), 32);
        ServerConfig::small(SystemSpec::no_harvest()).validate();
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn oversubscription_panics() {
        let mut c = ServerConfig::table1(SystemSpec::no_harvest());
        c.cores = 8;
        c.validate();
    }

    #[test]
    fn latency_model_matches_paper_anchors() {
        let l = LatencyModel::paper();
        // KVM total ≈ 5 ms; optimized ≈ 200 µs; hardware ≈ 2 µs; with
        // hardware context switching ≈ 50 ns.
        assert!(((l.kvm_detach_attach + l.kvm_ctxt).as_ms() - 5.0).abs() < 0.01);
        assert!(((l.opt_detach_attach + l.opt_ctxt).as_us() - 200.0).abs() < 0.1);
        assert!((l.hw_reassign.as_us() - 2.0).abs() < 0.1);
        assert!((l.hw_ctxt.as_ns() - 50.0).abs() < 2.0);
    }
}
