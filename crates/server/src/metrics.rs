//! Per-server measurement collection.

use hh_sim::stats::{Samples, TimeWeighted};
use hh_sim::Cycles;
use serde::Serialize;

/// Per-service latency and breakdown accounting.
#[derive(Debug, Default, Clone, Serialize)]
pub struct ServiceMetrics {
    /// End-to-end latency samples in milliseconds (NIC arrival →
    /// completion).
    pub latency_ms: Samples,
    /// Total execution time (compute + memory stalls) across completed
    /// requests, for the Figure 6 breakdown.
    pub exec: Cycles,
    /// Total blocked-on-I/O time across completed requests.
    pub io: Cycles,
    /// Total time requests waited on core-reassignment machinery.
    pub reassign_wait: Cycles,
    /// Total time requests waited on flush/invalidate machinery.
    pub flush_wait: Cycles,
    /// Completed requests.
    pub completed: u64,
}

impl ServiceMetrics {
    /// Mean per-request execution time in milliseconds.
    pub fn mean_exec_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.exec.as_ms() / self.completed as f64
        }
    }

    /// Mean per-request reassignment wait in milliseconds.
    pub fn mean_reassign_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.reassign_wait.as_ms() / self.completed as f64
        }
    }

    /// Mean per-request flush wait in milliseconds.
    pub fn mean_flush_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.flush_wait.as_ms() / self.completed as f64
        }
    }
}

/// Everything a server run reports.
#[derive(Debug, Clone, Serialize)]
pub struct ServerMetrics {
    /// System label the run used.
    pub system: &'static str,
    /// Per-service metrics, indexed by service id.
    pub services: Vec<ServiceMetrics>,
    /// Busy-core integral (level = cores executing request phases or batch
    /// units).
    pub busy_cores: TimeWeighted,
    /// Simulated end time.
    pub end_time: Cycles,
    /// Batch work units completed by the Harvest VM.
    pub batch_units: u64,
    /// Cross-VM core reassignments performed.
    pub reassignments: u64,
    /// Reassignments triggered by reclamation (Primary demanded its core).
    pub reclaims: u64,
    /// Aggregated L2 hits across all cores.
    pub l2_hits: u64,
    /// Aggregated L2 misses across all cores.
    pub l2_misses: u64,
    /// Requests that overflowed the hardware subqueues.
    pub queue_overflows: u64,
}

impl ServerMetrics {
    /// Creates an empty collection for `services` services.
    pub fn new(system: &'static str, services: usize) -> Self {
        ServerMetrics {
            system,
            services: (0..services).map(|_| ServiceMetrics::default()).collect(),
            busy_cores: TimeWeighted::new(),
            end_time: Cycles::ZERO,
            batch_units: 0,
            reassignments: 0,
            reclaims: 0,
            l2_hits: 0,
            l2_misses: 0,
            queue_overflows: 0,
        }
    }

    /// Average busy cores over the run (the Section 6.7 metric).
    pub fn avg_busy_cores(&self) -> f64 {
        self.busy_cores.average(self.end_time)
    }

    /// Batch throughput in work units per second.
    pub fn batch_units_per_sec(&self) -> f64 {
        let secs = self.end_time.as_secs();
        if secs == 0.0 {
            0.0
        } else {
            self.batch_units as f64 / secs
        }
    }

    /// Aggregate L2 hit rate across the server's cores.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// All latency samples pooled across services (for the figure-level
    /// "Average" bars).
    pub fn pooled_latency_ms(&self) -> Samples {
        let mut all = Samples::new();
        for s in &self.services {
            all.merge(&s.latency_ms);
        }
        all
    }

    /// Total completed requests.
    pub fn completed(&self) -> u64 {
        self.services.iter().map(|s| s.completed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_are_zero() {
        let m = ServerMetrics::new("X", 3);
        assert_eq!(m.services.len(), 3);
        assert_eq!(m.avg_busy_cores(), 0.0);
        assert_eq!(m.batch_units_per_sec(), 0.0);
        assert_eq!(m.l2_hit_rate(), 0.0);
        assert_eq!(m.completed(), 0);
    }

    #[test]
    fn pooled_latency_merges_services() {
        let mut m = ServerMetrics::new("X", 2);
        m.services[0].latency_ms.record(1.0);
        m.services[1].latency_ms.record(3.0);
        let mut pooled = m.pooled_latency_ms();
        assert_eq!(pooled.len(), 2);
        assert_eq!(pooled.percentile(1.0), 3.0);
    }

    #[test]
    fn service_means_divide_by_completed() {
        let mut s = ServiceMetrics {
            exec: Cycles::from_ms(10.0),
            reassign_wait: Cycles::from_ms(2.0),
            flush_wait: Cycles::from_ms(1.0),
            completed: 5,
            ..ServiceMetrics::default()
        };
        s.latency_ms.record(1.0);
        assert!((s.mean_exec_ms() - 2.0).abs() < 1e-9);
        assert!((s.mean_reassign_ms() - 0.4).abs() < 1e-9);
        assert!((s.mean_flush_ms() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn throughput_uses_end_time() {
        let mut m = ServerMetrics::new("X", 1);
        m.batch_units = 3000;
        m.end_time = Cycles::from_secs(2.0);
        assert!((m.batch_units_per_sec() - 1500.0).abs() < 1e-9);
    }
}
