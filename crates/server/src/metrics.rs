//! Per-server measurement collection.

use hh_sim::stats::{Samples, TimeWeighted};
use hh_sim::Cycles;
use serde::Serialize;

/// Per-service latency and breakdown accounting.
#[derive(Debug, Default, Clone, Serialize)]
pub struct ServiceMetrics {
    /// End-to-end latency samples in milliseconds (NIC arrival →
    /// completion).
    pub latency_ms: Samples,
    /// Total execution time (compute + memory stalls) across completed
    /// requests, for the Figure 6 breakdown.
    pub exec: Cycles,
    /// Total blocked-on-I/O time across completed requests.
    pub io: Cycles,
    /// Total time requests waited on core-reassignment machinery.
    pub reassign_wait: Cycles,
    /// Total time requests waited on flush/invalidate machinery.
    pub flush_wait: Cycles,
    /// Completed requests.
    pub completed: u64,
}

impl ServiceMetrics {
    /// Mean per-request execution time in milliseconds.
    pub fn mean_exec_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.exec.as_ms() / self.completed as f64
        }
    }

    /// Mean per-request reassignment wait in milliseconds.
    pub fn mean_reassign_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.reassign_wait.as_ms() / self.completed as f64
        }
    }

    /// Mean per-request flush wait in milliseconds.
    pub fn mean_flush_ms(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.flush_wait.as_ms() / self.completed as f64
        }
    }
}

/// Everything a server run reports.
#[derive(Debug, Clone, Serialize)]
pub struct ServerMetrics {
    /// System label the run used.
    pub system: &'static str,
    /// Per-service metrics, indexed by service id.
    pub services: Vec<ServiceMetrics>,
    /// Busy-core integral (level = cores executing request phases or batch
    /// units).
    pub busy_cores: TimeWeighted,
    /// Simulated end time.
    pub end_time: Cycles,
    /// Batch work units completed by the Harvest VM.
    pub batch_units: u64,
    /// Cross-VM core reassignments performed.
    pub reassignments: u64,
    /// Reassignments triggered by reclamation (Primary demanded its core).
    pub reclaims: u64,
    /// Aggregated L2 hits across all cores.
    pub l2_hits: u64,
    /// Aggregated L2 misses across all cores.
    pub l2_misses: u64,
    /// Requests that overflowed the hardware subqueues.
    pub queue_overflows: u64,
}

impl ServerMetrics {
    /// Creates an empty collection for `services` services.
    pub fn new(system: &'static str, services: usize) -> Self {
        ServerMetrics {
            system,
            services: (0..services).map(|_| ServiceMetrics::default()).collect(),
            busy_cores: TimeWeighted::new(),
            end_time: Cycles::ZERO,
            batch_units: 0,
            reassignments: 0,
            reclaims: 0,
            l2_hits: 0,
            l2_misses: 0,
            queue_overflows: 0,
        }
    }

    /// Average busy cores over the run (the Section 6.7 metric).
    pub fn avg_busy_cores(&self) -> f64 {
        self.busy_cores.average(self.end_time)
    }

    /// Batch throughput in work units per second.
    pub fn batch_units_per_sec(&self) -> f64 {
        // Zero elapsed time iff zero cycles: test the integer source
        // instead of comparing the derived float for equality.
        if self.end_time.as_u64() == 0 {
            0.0
        } else {
            self.batch_units as f64 / self.end_time.as_secs()
        }
    }

    /// Aggregate L2 hit rate across the server's cores.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// All latency samples pooled across services (for the figure-level
    /// "Average" bars).
    pub fn pooled_latency_ms(&self) -> Samples {
        let mut all = Samples::new();
        for s in &self.services {
            all.merge(&s.latency_ms);
        }
        all
    }

    /// Total completed requests.
    pub fn completed(&self) -> u64 {
        self.services.iter().map(|s| s.completed).sum()
    }

    /// Condenses the run into the headline numbers (the ones the paper's
    /// evaluation section quotes): utilization, cache behaviour, batch
    /// throughput, and pooled tail latency.
    pub fn summary(&self) -> MetricsSummary {
        let pooled = self.pooled_latency_ms();
        let (p50, p99) = if pooled.len() == 0 {
            (0.0, 0.0)
        } else {
            let mut pooled = pooled;
            (pooled.percentile(0.50), pooled.percentile(0.99))
        };
        MetricsSummary {
            system: self.system,
            completed: self.completed(),
            end_time_ms: self.end_time.as_ms(),
            avg_busy_cores: self.avg_busy_cores(),
            l2_hit_rate: self.l2_hit_rate(),
            batch_units: self.batch_units,
            batch_units_per_sec: self.batch_units_per_sec(),
            latency_p50_ms: p50,
            latency_p99_ms: p99,
            reassignments: self.reassignments,
            reclaims: self.reclaims,
            queue_overflows: self.queue_overflows,
        }
    }
}

/// The headline numbers of one server run, in report-ready form.
///
/// Produced by [`ServerMetrics::summary`]; serialized by hand via
/// [`MetricsSummary::to_json`] because the offline `serde` shim does not
/// emit anything.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSummary {
    /// System label the run used.
    pub system: &'static str,
    /// Total completed requests.
    pub completed: u64,
    /// Simulated end time in milliseconds.
    pub end_time_ms: f64,
    /// Average busy cores over the run.
    pub avg_busy_cores: f64,
    /// Aggregate L2 hit rate.
    pub l2_hit_rate: f64,
    /// Batch work units completed by the Harvest VM.
    pub batch_units: u64,
    /// Batch throughput in work units per second.
    pub batch_units_per_sec: f64,
    /// Pooled median end-to-end latency in milliseconds.
    pub latency_p50_ms: f64,
    /// Pooled 99th-percentile end-to-end latency in milliseconds.
    pub latency_p99_ms: f64,
    /// Cross-VM core reassignments performed.
    pub reassignments: u64,
    /// Reassignments triggered by reclamation.
    pub reclaims: u64,
    /// Requests that overflowed the hardware subqueues.
    pub queue_overflows: u64,
}

impl MetricsSummary {
    /// Renders the summary as a JSON object (stable key order).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "0".into()
            }
        }
        format!(
            concat!(
                "{{\"system\":\"{}\",\"completed\":{},\"end_time_ms\":{},",
                "\"avg_busy_cores\":{},\"l2_hit_rate\":{},\"batch_units\":{},",
                "\"batch_units_per_sec\":{},\"latency_p50_ms\":{},",
                "\"latency_p99_ms\":{},\"reassignments\":{},\"reclaims\":{},",
                "\"queue_overflows\":{}}}"
            ),
            self.system,
            self.completed,
            num(self.end_time_ms),
            num(self.avg_busy_cores),
            num(self.l2_hit_rate),
            self.batch_units,
            num(self.batch_units_per_sec),
            num(self.latency_p50_ms),
            num(self.latency_p99_ms),
            self.reassignments,
            self.reclaims,
            self.queue_overflows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_are_zero() {
        let m = ServerMetrics::new("X", 3);
        assert_eq!(m.services.len(), 3);
        assert_eq!(m.avg_busy_cores(), 0.0);
        assert_eq!(m.batch_units_per_sec(), 0.0);
        assert_eq!(m.l2_hit_rate(), 0.0);
        assert_eq!(m.completed(), 0);
    }

    #[test]
    fn pooled_latency_merges_services() {
        let mut m = ServerMetrics::new("X", 2);
        m.services[0].latency_ms.record(1.0);
        m.services[1].latency_ms.record(3.0);
        let mut pooled = m.pooled_latency_ms();
        assert_eq!(pooled.len(), 2);
        assert_eq!(pooled.percentile(1.0), 3.0);
    }

    #[test]
    fn service_means_divide_by_completed() {
        let mut s = ServiceMetrics {
            exec: Cycles::from_ms(10.0),
            reassign_wait: Cycles::from_ms(2.0),
            flush_wait: Cycles::from_ms(1.0),
            completed: 5,
            ..ServiceMetrics::default()
        };
        s.latency_ms.record(1.0);
        assert!((s.mean_exec_ms() - 2.0).abs() < 1e-9);
        assert!((s.mean_reassign_ms() - 0.4).abs() < 1e-9);
        assert!((s.mean_flush_ms() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn summary_condenses_and_serializes() {
        let mut m = ServerMetrics::new("HH", 2);
        m.end_time = Cycles::from_secs(1.0);
        m.busy_cores.set(Cycles::ZERO, 4.0);
        m.batch_units = 500;
        m.l2_hits = 75;
        m.l2_misses = 25;
        m.reassignments = 7;
        m.reclaims = 3;
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.services[0].latency_ms.record(v);
        }
        m.services[0].completed = 4;
        let s = m.summary();
        assert_eq!(s.system, "HH");
        assert_eq!(s.completed, 4);
        assert_eq!(s.latency_p50_ms, 2.0);
        assert_eq!(s.latency_p99_ms, 4.0);
        assert!((s.avg_busy_cores - 4.0).abs() < 1e-9);
        assert!((s.l2_hit_rate - 0.75).abs() < 1e-12);
        assert!((s.batch_units_per_sec - 500.0).abs() < 1e-9);
        let json = s.to_json();
        assert!(json.starts_with("{\"system\":\"HH\""));
        assert!(json.contains("\"latency_p99_ms\":4"));
        assert!(json.ends_with('}'));
        // Empty metrics summarize without dividing by zero.
        let empty = ServerMetrics::new("X", 1).summary();
        assert_eq!(empty.latency_p50_ms, 0.0);
        assert_eq!(empty.completed, 0);
    }

    #[test]
    fn throughput_uses_end_time() {
        let mut m = ServerMetrics::new("X", 1);
        m.batch_units = 3000;
        m.end_time = Cycles::from_secs(2.0);
        assert!((m.batch_units_per_sec() - 1500.0).abs() < 1e-9);
    }
}
