//! Full-system server simulator for the HardHarvest reproduction.
//!
//! [`ServerSim`] models one Table 1 server — 36 cores, 8 four-core Primary
//! VMs running DeathStarBench-like microservices, one Harvest VM running a
//! batch job — under any of the evaluated systems ([`SystemSpec`]):
//! `NoHarvest`, software harvesting (`Harvest-Term`/`-Block`, SmartHarvest
//! style with an emergency buffer and an agent tick), and hardware
//! harvesting (`HardHarvest-Term`/`-Block`), plus every cumulative ablation
//! of Figures 12, 13 and 15.
//!
//! Cache, TLB, flush and cold-restart effects come from the access-level
//! [`hh_mem`] hierarchy simulation; queueing and notification from the
//! [`hh_hwqueue`] controller; reassignment and context-switch latencies
//! from the calibrated [`LatencyModel`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod metrics;
mod sim;

pub use config::{
    HarvestMode, LatencyModel, OptFlags, ServerConfig, SwReassign, SystemSpec,
};
pub use metrics::{ServerMetrics, ServiceMetrics};
pub use sim::ServerSim;
