//! The HardHarvest hardware controller (paper Section 4.1).
//!
//! A processor chip carries one centralized controller holding:
//!
//! * a single physical **Request Queue (RQ)** of 32 chunks × 64 entries,
//!   dynamically divided into per-VM logical *subqueues* whose chunks are
//!   tracked by per-VM **RQ-Maps**;
//! * one **Queue Manager (QM)** per VM, which enqueues arriving requests,
//!   hands requests to spinning cores, tracks blocked-on-I/O requests, and
//!   knows which of a Primary VM's bound cores are *on loan* to the Harvest
//!   VM;
//! * one **VM State Register Set** per VM (VMCS pointer, CR0/3/4, GDTR,
//!   LDTR, IDTR, …) so a core can context-switch into a VM without touching
//!   the hypervisor;
//! * a per-VM **HarvestMask** register describing the cache/TLB harvest
//!   region;
//! * a software **In-memory Overflow Subqueue** per VM for requests that do
//!   not fit in the hardware chunks.
//!
//! [`Controller`] owns the chunk pool and the QMs and implements the
//! donation protocol of Section 4.1.2; [`storage`] reproduces the
//! Section 6.8 cost accounting.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod controller;
mod manager;
mod rqmap;
pub mod storage;
mod subqueue;

pub use controller::{Controller, ControllerConfig};
pub use manager::{QueueManager, VmKind, VmStateRegs};
pub use rqmap::{ChunkId, ChunkPool, RqMap};
pub use subqueue::{DequeueSource, EnqueueOutcome, Subqueue};
