//! The RQ-Map: logical→physical chunk translation of one subqueue
//! (paper Section 4.1.2).
//!
//! A subqueue is logically contiguous but its chunks need not be physically
//! contiguous. Every Queue Manager holds an RQ-Map of up to 32 entries,
//! each a 5-bit physical chunk id plus a valid bit (24 B total). Donating a
//! chunk invalidates the *tail* entry; receiving one appends at the tail.
//!
//! [`ChunkPool`] owns the physical chunk ids of the whole RQ and checks the
//! global exclusivity invariant: a physical chunk belongs to at most one
//! RQ-Map at a time.

use serde::{Deserialize, Serialize};

/// Identifier of a physical RQ chunk (5 bits in hardware: 0..32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChunkId(pub u8);

/// The per-VM logical→physical chunk map.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RqMap {
    /// Physical chunk ids in logical order (head first).
    chunks: Vec<ChunkId>,
    /// Hardware capacity of the map (32 entries in Table 1).
    capacity: usize,
}

impl RqMap {
    /// Creates an empty map with the Table 1 capacity of 32 entries.
    pub fn new() -> Self {
        Self::with_capacity(32)
    }

    /// Creates an empty map holding at most `capacity` chunk entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0);
        RqMap {
            chunks: Vec::new(),
            capacity,
        }
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Whether the map holds no chunks.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// The physical chunk backing logical chunk `logical`.
    pub fn translate(&self, logical: usize) -> Option<ChunkId> {
        self.chunks.get(logical).copied()
    }

    /// Appends a received chunk at the tail.
    ///
    /// # Panics
    /// Panics if the map is full or already holds `chunk`.
    pub fn append(&mut self, chunk: ChunkId) {
        assert!(self.chunks.len() < self.capacity, "RQ-Map full");
        assert!(!self.chunks.contains(&chunk), "chunk already mapped");
        self.chunks.push(chunk);
    }

    /// Donates the tail chunk (invalidating its entry), if any.
    pub fn donate_tail(&mut self) -> Option<ChunkId> {
        self.chunks.pop()
    }

    /// Physical chunks in logical order.
    pub fn chunks(&self) -> &[ChunkId] {
        &self.chunks
    }

    /// Storage cost in bytes: `capacity` entries × (5-bit id + valid bit),
    /// rounded up per the paper's 24 B figure for 32 entries.
    pub fn storage_bytes(&self) -> usize {
        (self.capacity * 6).div_ceil(8)
    }
}

/// The pool of physical chunks of one controller, tracking ownership.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkPool {
    /// Owner per physical chunk: `None` = free.
    owners: Vec<Option<u16>>,
}

impl ChunkPool {
    /// Creates a pool of `chunks` free chunks.
    ///
    /// # Panics
    /// Panics if `chunks` is 0 or exceeds the 5-bit id space (32).
    pub fn new(chunks: usize) -> Self {
        assert!(chunks > 0 && chunks <= 32, "5-bit chunk ids");
        ChunkPool {
            owners: vec![None; chunks],
        }
    }

    /// Allocates a free chunk to `owner`, lowest id first.
    pub fn allocate(&mut self, owner: u16) -> Option<ChunkId> {
        let idx = self.owners.iter().position(Option::is_none)?;
        self.owners[idx] = Some(owner);
        Some(ChunkId(idx as u8))
    }

    /// Releases a chunk back to the pool.
    ///
    /// # Panics
    /// Panics if the chunk is not currently owned by `owner`.
    pub fn release(&mut self, chunk: ChunkId, owner: u16) {
        let slot = &mut self.owners[chunk.0 as usize];
        assert_eq!(*slot, Some(owner), "release by non-owner");
        *slot = None;
    }

    /// Transfers a chunk between owners (donation protocol).
    ///
    /// # Panics
    /// Panics if the chunk is not owned by `from`.
    pub fn transfer(&mut self, chunk: ChunkId, from: u16, to: u16) {
        let slot = &mut self.owners[chunk.0 as usize];
        assert_eq!(*slot, Some(from), "transfer from non-owner");
        *slot = Some(to);
    }

    /// Number of unowned chunks.
    pub fn free(&self) -> usize {
        self.owners.iter().filter(|o| o.is_none()).count()
    }

    /// Chunks owned by `owner`.
    pub fn owned_by(&self, owner: u16) -> Vec<ChunkId> {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == Some(owner))
            .map(|(i, _)| ChunkId(i as u8))
            .collect()
    }

    /// Invariant: every chunk has at most one owner (structurally true) and
    /// ownership sums to the pool size.
    pub fn accounting_ok(&self) -> bool {
        self.free() + self.owners.iter().filter(|o| o.is_some()).count() == self.owners.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_appends_and_donates_at_tail() {
        let mut m = RqMap::new();
        m.append(ChunkId(3));
        m.append(ChunkId(7));
        m.append(ChunkId(1));
        assert_eq!(m.len(), 3);
        assert_eq!(m.translate(0), Some(ChunkId(3)));
        assert_eq!(m.translate(2), Some(ChunkId(1)));
        assert_eq!(m.donate_tail(), Some(ChunkId(1)));
        assert_eq!(m.len(), 2);
        assert_eq!(m.translate(2), None);
    }

    #[test]
    fn map_storage_is_24_bytes_at_table1_capacity() {
        assert_eq!(RqMap::new().storage_bytes(), 24);
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn duplicate_chunk_panics() {
        let mut m = RqMap::new();
        m.append(ChunkId(5));
        m.append(ChunkId(5));
    }

    #[test]
    #[should_panic(expected = "RQ-Map full")]
    fn overflow_panics() {
        let mut m = RqMap::with_capacity(2);
        m.append(ChunkId(0));
        m.append(ChunkId(1));
        m.append(ChunkId(2));
    }

    #[test]
    fn pool_allocate_release_transfer() {
        let mut p = ChunkPool::new(4);
        let a = p.allocate(1).unwrap();
        let b = p.allocate(1).unwrap();
        assert_eq!(p.free(), 2);
        assert_eq!(p.owned_by(1), vec![a, b]);
        p.transfer(b, 1, 2);
        assert_eq!(p.owned_by(2), vec![b]);
        p.release(a, 1);
        assert_eq!(p.free(), 3);
        assert!(p.accounting_ok());
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut p = ChunkPool::new(2);
        assert!(p.allocate(0).is_some());
        assert!(p.allocate(0).is_some());
        assert!(p.allocate(0).is_none());
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn release_by_wrong_owner_panics() {
        let mut p = ChunkPool::new(2);
        let c = p.allocate(1).unwrap();
        p.release(c, 9);
    }

    #[test]
    #[should_panic(expected = "5-bit")]
    fn oversized_pool_panics() {
        ChunkPool::new(33);
    }
}
