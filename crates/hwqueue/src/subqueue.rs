//! A per-VM logical request subqueue over physical RQ chunks, with the
//! in-memory overflow subqueue.

use std::collections::VecDeque;

use hh_sim::Cycles;
use serde::{Deserialize, Serialize};

/// Lifecycle of an entry in a subqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Status {
    /// Waiting to be dequeued.
    Ready,
    /// Dequeued by a core, currently executing. The entry stays resident
    /// so the request can re-enter `Blocked`/`Ready` without re-enqueueing.
    Running,
    /// Stalled on a blocking I/O call; the pointer stays in the subqueue
    /// (Section 4.1.5).
    Blocked,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Slot {
    token: u64,
    arrival: Cycles,
    status: Status,
}

/// Where an enqueued request landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// Stored in an SRAM chunk entry.
    Hardware,
    /// The hardware subqueue was full; stored in the in-memory overflow
    /// subqueue (slower to access).
    Overflow,
}

/// Where a dequeued request came from (overflow dequeues pay a memory
/// access instead of an SRAM access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeueSource {
    /// Served from an SRAM chunk.
    Hardware,
    /// Served after being promoted from the in-memory overflow subqueue.
    Overflow,
}

/// One VM's logical subqueue: a FIFO of request tokens over a set of RQ
/// chunks, spilling to the overflow queue when full.
///
/// Entries occupy a slot from enqueue until completion (running and blocked
/// requests keep their pointer resident, per Section 4.1.5).
///
/// # Example
///
/// ```
/// use hh_hwqueue::{EnqueueOutcome, Subqueue};
/// use hh_sim::Cycles;
///
/// let mut q = Subqueue::new(1, 2); // 1 chunk of 2 entries
/// assert_eq!(q.enqueue(10, Cycles::ZERO), EnqueueOutcome::Hardware);
/// assert_eq!(q.enqueue(11, Cycles::ZERO), EnqueueOutcome::Hardware);
/// assert_eq!(q.enqueue(12, Cycles::ZERO), EnqueueOutcome::Overflow);
/// let (token, _, _) = q.dequeue_ready().unwrap();
/// assert_eq!(token, 10);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Subqueue {
    /// Resident entries (hardware slots).
    slots: Vec<Slot>,
    /// Overflowed ready entries, FIFO.
    overflow: VecDeque<Slot>,
    /// Number of chunks currently owned.
    chunks: usize,
    /// Entries per chunk (64 in Table 1).
    entries_per_chunk: usize,
    /// Tokens whose slot came from the overflow queue (they pay the memory
    /// latency on dequeue).
    overflow_served: u64,
    /// Peak hardware occupancy observed.
    peak_occupancy: usize,
    /// Total enqueues since creation.
    enqueued_total: u64,
    /// Enqueues that landed in the overflow subqueue (hardware full).
    overflowed: u64,
}

impl Subqueue {
    /// Creates a subqueue owning `chunks` chunks of `entries_per_chunk`.
    ///
    /// # Panics
    /// Panics if `entries_per_chunk` is zero.
    pub fn new(chunks: usize, entries_per_chunk: usize) -> Self {
        assert!(entries_per_chunk > 0);
        Subqueue {
            slots: Vec::new(),
            overflow: VecDeque::new(),
            chunks,
            entries_per_chunk,
            overflow_served: 0,
            peak_occupancy: 0,
            enqueued_total: 0,
            overflowed: 0,
        }
    }

    /// Hardware capacity in entries.
    pub fn capacity(&self) -> usize {
        self.chunks * self.entries_per_chunk
    }

    /// Number of chunks currently owned.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Entries resident in hardware (any status).
    pub fn occupancy(&self) -> usize {
        self.slots.len()
    }

    /// Entries waiting in the overflow subqueue.
    pub fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    /// Ready entries resident anywhere.
    pub fn ready_len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.status == Status::Ready)
            .count()
            + self.overflow.len()
    }

    /// Whether any request is ready to run.
    pub fn has_ready(&self) -> bool {
        self.overflow
            .front()
            .is_some()
            || self.slots.iter().any(|s| s.status == Status::Ready)
    }

    /// Peak hardware occupancy observed since creation.
    pub fn peak_occupancy(&self) -> usize {
        self.peak_occupancy
    }

    /// Arrival stamps of all ready entries in the order `dequeue_ready`
    /// would serve them: hardware slots front to back, then the overflow
    /// subqueue. Because enqueue times are monotone and every internal
    /// movement (overflow promotion, chunk shedding, preemption) preserves
    /// relative order, this sequence must be non-decreasing — the FIFO
    /// invariant the `hh-check` suite and the `ServerSim` debug hook
    /// verify.
    pub fn ready_arrivals(&self) -> Vec<Cycles> {
        self.slots
            .iter()
            .filter(|s| s.status == Status::Ready)
            .map(|s| s.arrival)
            .chain(self.overflow.iter().map(|s| s.arrival))
            .collect()
    }

    /// Number of dequeues that had been demoted to the overflow queue.
    pub fn overflow_served(&self) -> u64 {
        self.overflow_served
    }

    /// Total enqueues since creation.
    pub fn enqueued_total(&self) -> u64 {
        self.enqueued_total
    }

    /// Enqueues that spilled to the overflow subqueue (hardware full).
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Enqueues a ready request.
    pub fn enqueue(&mut self, token: u64, now: Cycles) -> EnqueueOutcome {
        let slot = Slot {
            token,
            arrival: now,
            status: Status::Ready,
        };
        self.enqueued_total += 1;
        if self.slots.len() < self.capacity() {
            self.slots.push(slot);
            self.peak_occupancy = self.peak_occupancy.max(self.slots.len());
            EnqueueOutcome::Hardware
        } else {
            self.overflow.push_back(slot);
            self.overflowed += 1;
            EnqueueOutcome::Overflow
        }
    }

    /// Dequeues the oldest ready request (FIFO within the VM,
    /// Section 4.1.5) and marks it running. Returns the token, its arrival
    /// time, and whether it was served from hardware or overflow.
    pub fn dequeue_ready(&mut self) -> Option<(u64, Cycles, DequeueSource)> {
        if let Some(pos) = self.slots.iter().position(|s| s.status == Status::Ready) {
            self.slots[pos].status = Status::Running;
            let s = self.slots[pos];
            return Some((s.token, s.arrival, DequeueSource::Hardware));
        }
        if let Some(mut s) = self.overflow.pop_front() {
            // Promote into hardware if a slot is free, else serve directly
            // from memory (it still occupies a logical slot while running).
            s.status = Status::Running;
            self.slots.push(s);
            self.peak_occupancy = self.peak_occupancy.max(self.slots.len());
            self.overflow_served += 1;
            return Some((s.token, s.arrival, DequeueSource::Overflow));
        }
        None
    }

    /// Marks a running request blocked on I/O; its slot stays resident.
    ///
    /// # Panics
    /// Panics if `token` is not currently running (a protocol violation).
    pub fn mark_blocked(&mut self, token: u64) {
        let s = self
            .slots
            .iter_mut()
            .find(|s| s.token == token && s.status == Status::Running)
            // hh-lint: allow(unwrap-in-hot-path): documented protocol panic; the scheduler
            // contract (see # Panics) makes this state unreachable.
            .expect("mark_blocked: token not running");
        s.status = Status::Blocked;
    }

    /// Marks a blocked request ready again (its I/O response arrived).
    ///
    /// # Panics
    /// Panics if `token` is not currently blocked.
    pub fn mark_ready(&mut self, token: u64) {
        let s = self
            .slots
            .iter_mut()
            .find(|s| s.token == token && s.status == Status::Blocked)
            // hh-lint: allow(unwrap-in-hot-path): documented protocol panic; the scheduler
            // contract (see # Panics) makes this state unreachable.
            .expect("mark_ready: token not blocked");
        s.status = Status::Ready;
    }

    /// Returns a preempted request to the ready state without losing its
    /// queue position (core reclaimed by its Primary VM, Figure 10).
    ///
    /// # Panics
    /// Panics if `token` is not currently running.
    pub fn preempt(&mut self, token: u64) {
        let s = self
            .slots
            .iter_mut()
            .find(|s| s.token == token && s.status == Status::Running)
            // hh-lint: allow(unwrap-in-hot-path): documented protocol panic; the scheduler
            // contract (see # Panics) makes this state unreachable.
            .expect("preempt: token not running");
        s.status = Status::Ready;
    }

    /// Removes a completed request, freeing its slot and promoting one
    /// overflow entry if any is waiting.
    ///
    /// # Panics
    /// Panics if `token` is not resident.
    pub fn complete(&mut self, token: u64) {
        let pos = self
            .slots
            .iter()
            .position(|s| s.token == token)
            // hh-lint: allow(unwrap-in-hot-path): documented protocol panic; the scheduler
            // contract (see # Panics) makes this state unreachable.
            .expect("complete: token not resident");
        self.slots.remove(pos);
        if self.slots.len() < self.capacity() {
            if let Some(s) = self.overflow.pop_front() {
                self.slots.push(s);
                self.peak_occupancy = self.peak_occupancy.max(self.slots.len());
            }
        }
    }

    /// Grows the subqueue by `n` chunks (received from a departing or
    /// donating VM). Promotes overflow entries into the new space.
    pub fn add_chunks(&mut self, n: usize) {
        self.chunks += n;
        while self.slots.len() < self.capacity() {
            match self.overflow.pop_front() {
                Some(s) => {
                    self.slots.push(s);
                    self.peak_occupancy = self.peak_occupancy.max(self.slots.len());
                }
                None => break,
            }
        }
    }

    /// Sheds `n` chunks from the tail (donated to a new VM). Entries that
    /// no longer fit move to the overflow subqueue (Section 4.1.2). Returns
    /// the number of chunks actually shed (a subqueue keeps at least one).
    pub fn shed_chunks(&mut self, n: usize) -> usize {
        let sheddable = self.chunks.saturating_sub(1).min(n);
        self.chunks -= sheddable;
        while self.slots.len() > self.capacity() {
            // Move the *youngest ready* entries out; running/blocked entries
            // must stay resident because a core or the NIC will touch them.
            if let Some(pos) = self
                .slots
                .iter()
                .rposition(|s| s.status == Status::Ready)
            {
                let s = self.slots.remove(pos);
                self.overflow.push_front(s);
            } else {
                // Nothing movable: tolerate transient over-occupancy.
                break;
            }
        }
        sheddable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(chunks: usize) -> Subqueue {
        Subqueue::new(chunks, 4)
    }

    #[test]
    fn fifo_order() {
        let mut s = q(2);
        for t in 0..5 {
            s.enqueue(t, Cycles::new(t));
        }
        for t in 0..5 {
            let (tok, arr, _) = s.dequeue_ready().unwrap();
            assert_eq!(tok, t);
            assert_eq!(arr, Cycles::new(t));
            s.complete(tok);
        }
        assert!(s.dequeue_ready().is_none());
    }

    #[test]
    fn overflow_on_full() {
        let mut s = q(1); // 4 slots
        for t in 0..4 {
            assert_eq!(s.enqueue(t, Cycles::ZERO), EnqueueOutcome::Hardware);
        }
        assert_eq!(s.enqueue(4, Cycles::ZERO), EnqueueOutcome::Overflow);
        assert_eq!(s.overflow_len(), 1);
        assert_eq!(s.ready_len(), 5);
        // Completing one resident request promotes the overflowed one.
        let (tok, _, _) = s.dequeue_ready().unwrap();
        s.complete(tok);
        assert_eq!(s.overflow_len(), 0);
        assert_eq!(s.occupancy(), 4);
    }

    #[test]
    fn blocked_requests_keep_slots_and_resume_in_order() {
        let mut s = q(1);
        s.enqueue(1, Cycles::ZERO);
        s.enqueue(2, Cycles::ZERO);
        let (t1, _, _) = s.dequeue_ready().unwrap();
        s.mark_blocked(t1);
        // While 1 is blocked, 2 runs.
        let (t2, _, _) = s.dequeue_ready().unwrap();
        assert_eq!(t2, 2);
        assert!(!s.has_ready());
        // Response arrives: 1 becomes ready again.
        s.mark_ready(1);
        assert!(s.has_ready());
        let (t, _, src) = s.dequeue_ready().unwrap();
        assert_eq!(t, 1);
        assert_eq!(src, DequeueSource::Hardware);
    }

    #[test]
    fn preempt_requeues_without_losing_position() {
        let mut s = q(1);
        s.enqueue(7, Cycles::ZERO);
        s.enqueue(8, Cycles::ZERO);
        let (t, _, _) = s.dequeue_ready().unwrap();
        assert_eq!(t, 7);
        s.preempt(7);
        // 7 is ready again and still ahead of 8.
        let (t, _, _) = s.dequeue_ready().unwrap();
        assert_eq!(t, 7);
    }

    #[test]
    fn chunk_donation_spills_ready_entries() {
        let mut s = q(2); // 8 slots
        for t in 0..8 {
            s.enqueue(t, Cycles::ZERO);
        }
        let shed = s.shed_chunks(1);
        assert_eq!(shed, 1);
        assert_eq!(s.capacity(), 4);
        assert_eq!(s.occupancy(), 4);
        assert_eq!(s.overflow_len(), 4);
        // FIFO preserved across the spill.
        let mut order = Vec::new();
        while let Some((t, _, _)) = s.dequeue_ready() {
            order.push(t);
            s.complete(t);
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn shed_keeps_at_least_one_chunk() {
        let mut s = q(2);
        assert_eq!(s.shed_chunks(10), 1);
        assert_eq!(s.chunks(), 1);
    }

    #[test]
    fn add_chunks_promotes_overflow() {
        let mut s = q(1);
        for t in 0..6 {
            s.enqueue(t, Cycles::ZERO);
        }
        assert_eq!(s.overflow_len(), 2);
        s.add_chunks(1);
        assert_eq!(s.overflow_len(), 0);
        assert_eq!(s.occupancy(), 6);
    }

    #[test]
    fn running_blocked_entries_survive_shed() {
        let mut s = q(2);
        for t in 0..8 {
            s.enqueue(t, Cycles::ZERO);
        }
        // Run and block four of them.
        for _ in 0..4 {
            let (t, _, _) = s.dequeue_ready().unwrap();
            s.mark_blocked(t);
        }
        s.shed_chunks(1);
        // Blocked entries must still be resident (they were tokens 0..4).
        for t in 0..4 {
            s.mark_ready(t); // would panic if not resident/blocked
        }
    }

    #[test]
    fn overflow_dequeue_is_tagged() {
        let mut s = Subqueue::new(1, 1);
        s.enqueue(1, Cycles::ZERO);
        s.enqueue(2, Cycles::ZERO);
        let (t, _, src) = s.dequeue_ready().unwrap();
        assert_eq!((t, src), (1, DequeueSource::Hardware));
        // Token 1 still running and occupying the only hw slot; token 2
        // must be served from overflow.
        let (t, _, src) = s.dequeue_ready().unwrap();
        assert_eq!((t, src), (2, DequeueSource::Overflow));
        assert_eq!(s.overflow_served(), 1);
    }

    #[test]
    #[should_panic(expected = "not running")]
    fn blocking_a_ready_request_panics() {
        let mut s = q(1);
        s.enqueue(1, Cycles::ZERO);
        s.mark_blocked(1);
    }

    #[test]
    fn ready_arrivals_stay_fifo_across_shed_and_promote() {
        let mut s = q(2); // 8 slots
        for t in 0..10 {
            s.enqueue(t, Cycles::new(t));
        }
        let check = |s: &Subqueue| {
            let arr = s.ready_arrivals();
            assert!(
                arr.windows(2).all(|w| w[0] <= w[1]),
                "ready arrivals out of order: {arr:?}"
            );
        };
        check(&s);
        s.shed_chunks(1); // spills youngest ready entries
        check(&s);
        let (t, _, _) = s.dequeue_ready().unwrap();
        s.complete(t); // promotes an overflow entry
        check(&s);
        s.add_chunks(2);
        check(&s);
        assert_eq!(s.ready_arrivals().len(), s.ready_len());
    }

    #[test]
    fn enqueue_counters_split_hardware_and_overflow() {
        let mut s = q(1); // 4 hardware slots
        for t in 0..6 {
            s.enqueue(t, Cycles::ZERO);
        }
        assert_eq!(s.enqueued_total(), 6);
        assert_eq!(s.overflowed(), 2);
        // Draining does not disturb the enqueue-side counters.
        while let Some((t, _, _)) = s.dequeue_ready() {
            s.complete(t);
        }
        assert_eq!(s.enqueued_total(), 6);
        assert_eq!(s.overflowed(), 2);
    }

    #[test]
    fn peak_occupancy_tracks_high_water() {
        let mut s = q(2);
        for t in 0..6 {
            s.enqueue(t, Cycles::ZERO);
        }
        for t in 0..6 {
            s.dequeue_ready();
            s.complete(t);
        }
        assert_eq!(s.peak_occupancy(), 6);
        assert_eq!(s.occupancy(), 0);
    }
}
