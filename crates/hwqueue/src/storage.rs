//! Storage, area and power cost accounting (paper Section 6.8).
//!
//! The paper counts, per server:
//!
//! * the controller: a 2K-entry RQ at 66 bits/entry (2 status bits + a
//!   64-bit payload pointer) plus, per QM/VM-State pair, 16 × 8 B state
//!   registers, a 24 B RQ-Map and a 5 B HarvestMask — 18.9 KB total;
//! * one extra `Shared` bit in every TLB, L1 D-cache and L2 cache entry —
//!   67.8 KB per 36-core server in the paper's accounting;
//! * area/power overheads of 0.19 % / 0.16 % of the multicore after McPAT
//!   modeling scaled to 7 nm.
//!
//! [`StorageCost`] recomputes the controller numbers exactly from first
//! principles and estimates the area/power fractions with a documented
//! SRAM-bit ratio model (we do not re-implement McPAT; the estimate's job
//! is to confirm the *order of magnitude*, which it does).

use serde::{Deserialize, Serialize};

use crate::ControllerConfig;

/// Bit-level inventory of the structures HardHarvest adds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageCost {
    /// RQ bits: entries × 66.
    pub rq_bits: u64,
    /// Per-QM bits (state registers + RQ-Map + HarvestMask) × QM count.
    pub qm_bits: u64,
    /// Extra `Shared` bits across all cores' TLBs, L1D and L2.
    pub shared_bits: u64,
    /// Number of cores the shared bits were counted over.
    pub cores: usize,
}

/// Bits per RQ entry: 2 status bits + 64-bit payload pointer.
pub const RQ_ENTRY_BITS: u64 = 66;

/// RQ-Map size: 32 entries × (5-bit physical chunk id + 1 valid bit) = 24 B.
pub const RQ_MAP_BYTES: u64 = 24;

/// HarvestMask register: one bit per way across the six partitioned
/// structures, rounded to 5 B.
pub const HARVEST_MASK_BYTES: u64 = 5;

impl StorageCost {
    /// Computes the inventory for a controller configuration and the Table 1
    /// per-core structure geometry.
    ///
    /// `l1d_lines`, `l2_lines`, `l1_tlb_entries`, `l2_tlb_entries` are per
    /// core; `cores` is per server (36 in the paper).
    pub fn compute(
        config: &ControllerConfig,
        cores: usize,
        l1d_lines: u64,
        l2_lines: u64,
        l1_tlb_entries: u64,
        l2_tlb_entries: u64,
    ) -> Self {
        let rq_entries = (config.chunks * config.entries_per_chunk) as u64;
        let rq_bits = rq_entries * RQ_ENTRY_BITS;
        let per_qm_bits = 16 * 8 * 8 + RQ_MAP_BYTES * 8 + HARVEST_MASK_BYTES * 8;
        let qm_bits = per_qm_bits * config.max_vms as u64;
        let per_core_shared = l1d_lines + l2_lines + l1_tlb_entries + l2_tlb_entries;
        StorageCost {
            rq_bits,
            qm_bits,
            shared_bits: per_core_shared * cores as u64,
            cores,
        }
    }

    /// The paper's exact configuration: Table 1 geometry, 36 cores.
    pub fn paper() -> Self {
        Self::compute(
            &ControllerConfig::table1(),
            36,
            48 * 1024 / 64, // L1D lines
            512 * 1024 / 64, // L2 lines
            128,             // L1 TLB entries
            2048,            // L2 TLB entries
        )
    }

    /// Controller storage in bytes (paper: 18.9 KB).
    pub fn controller_bytes(&self) -> u64 {
        (self.rq_bits + self.qm_bits) / 8
    }

    /// Controller storage per core in bytes (paper: 0.53 KB).
    pub fn controller_bytes_per_core(&self) -> f64 {
        self.controller_bytes() as f64 / self.cores as f64
    }

    /// Shared-bit storage in bytes per server.
    pub fn shared_bit_bytes(&self) -> u64 {
        self.shared_bits / 8
    }

    /// Total added bytes per server.
    pub fn total_bytes(&self) -> u64 {
        self.controller_bytes() + self.shared_bit_bytes()
    }

    /// Estimated area overhead as a fraction of the multicore.
    ///
    /// Model: added SRAM bits relative to the chip's dominant SRAM budget
    /// (LLC + L2 + L1s), times a periphery factor of 2.0 for the added
    /// structures' decoders/comparators/muxes, times a logic-dilution
    /// factor of 0.55 (caches are roughly half the die of a server core
    /// complex). The paper's McPAT number is 0.19 %.
    pub fn area_fraction(&self, chip_sram_bytes: u64) -> f64 {
        let periphery = 2.0;
        let sram_share_of_die = 0.55;
        (self.total_bytes() as f64 * periphery) / chip_sram_bytes as f64 * sram_share_of_die
    }

    /// Estimated power overhead as a fraction of the multicore; SRAM
    /// leakage/dynamic scales close to capacity, and the control structures
    /// are accessed far less often than L1s, so power tracks slightly below
    /// area. The paper's McPAT number is 0.16 %.
    pub fn power_fraction(&self, chip_sram_bytes: u64) -> f64 {
        self.area_fraction(chip_sram_bytes) * 0.85
    }

    /// The chip SRAM budget of the Table 1 server: 72 MB LLC + 36 × 512 KB
    /// L2 + 36 × 80 KB L1.
    pub fn table1_chip_sram_bytes() -> u64 {
        72 * 1024 * 1024 + 36 * 512 * 1024 + 36 * 80 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controller_storage_matches_paper() {
        let s = StorageCost::paper();
        // 2048 entries × 66 bits = 16,896 B; 16 × 157 B = 2,512 B;
        // total 19,408 B ≈ 18.95 KB — the paper reports 18.9 KB.
        assert_eq!(s.rq_bits, 2048 * 66);
        assert_eq!(s.controller_bytes(), 19_408);
        let kb = s.controller_bytes() as f64 / 1024.0;
        assert!((kb - 18.9).abs() < 0.1, "controller {kb:.2} KB");
        // 0.53 KB per core.
        let per_core_kb = s.controller_bytes_per_core() / 1024.0;
        assert!((per_core_kb - 0.53).abs() < 0.01, "{per_core_kb:.3} KB/core");
    }

    #[test]
    fn shared_bits_are_tens_of_kb() {
        let s = StorageCost::paper();
        let kb = s.shared_bit_bytes() as f64 / 1024.0;
        // Our first-principles count gives ~49 KB; the paper reports
        // 67.8 KB (they appear to count additional per-entry metadata).
        // Same order, same conclusion: negligible.
        assert!((40.0..90.0).contains(&kb), "shared bits {kb:.1} KB");
    }

    #[test]
    fn area_and_power_fractions_are_sub_percent() {
        let s = StorageCost::paper();
        let sram = StorageCost::table1_chip_sram_bytes();
        let area = s.area_fraction(sram) * 100.0;
        let power = s.power_fraction(sram) * 100.0;
        assert!(area < 0.5, "area {area:.3}%");
        assert!(power < area, "power {power:.3}% < area");
        assert!(area > 0.01, "not absurdly small either: {area:.4}%");
    }

    #[test]
    fn cost_scales_with_cores() {
        let small = StorageCost::compute(&ControllerConfig::table1(), 8, 768, 8192, 128, 2048);
        let big = StorageCost::compute(&ControllerConfig::table1(), 64, 768, 8192, 128, 2048);
        assert_eq!(small.controller_bytes(), big.controller_bytes());
        assert!(big.shared_bit_bytes() > small.shared_bit_bytes());
    }
}
