//! The centralized HardHarvest controller: chunk pool + Queue Managers.

use hh_sim::{Cycles, VmId};
use serde::{Deserialize, Serialize};

use crate::{ChunkPool, EnqueueOutcome, QueueManager, Subqueue, VmKind};

/// Controller sizing (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Physical RQ chunks (32).
    pub chunks: usize,
    /// Entries per chunk (64).
    pub entries_per_chunk: usize,
    /// QM / VM-State-Register-Set pairs provisioned (16).
    pub max_vms: usize,
}

impl ControllerConfig {
    /// Table 1 defaults: 32 chunks × 64 entries, 16 QMs.
    pub fn table1() -> Self {
        ControllerConfig {
            chunks: 32,
            entries_per_chunk: 64,
            max_vms: 16,
        }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::table1()
    }
}

/// The per-chip HardHarvest controller (Figure 9).
///
/// Registers VMs, assigns RQ chunks to their subqueues proportionally to
/// their core counts (Section 4.1.2), and routes NIC arrivals to the right
/// Queue Manager.
///
/// # Example
///
/// ```
/// use hh_hwqueue::{Controller, ControllerConfig, VmKind};
/// use hh_sim::{Cycles, VmId};
///
/// let mut ctrl = Controller::new(ControllerConfig::table1());
/// ctrl.register_vm(VmId(0), VmKind::Primary, 4);
/// ctrl.register_vm(VmId(1), VmKind::Harvest, 4);
/// ctrl.enqueue(VmId(0), 7, Cycles::ZERO);
/// let (token, _, _) = ctrl.qm_mut(VmId(0)).dequeue().unwrap();
/// assert_eq!(token, 7);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Controller {
    config: ControllerConfig,
    /// QM per registered VM, indexed by registration order.
    qms: Vec<QueueManager>,
    /// Core count per registered VM (drives chunk proportions).
    cores: Vec<usize>,
    /// Ownership of the physical chunks.
    pool: ChunkPool,
}

impl Controller {
    /// Creates an empty controller.
    ///
    /// # Panics
    /// Panics on a zero-sized configuration.
    pub fn new(config: ControllerConfig) -> Self {
        assert!(config.chunks > 0 && config.entries_per_chunk > 0 && config.max_vms > 0);
        assert!(
            config.max_vms <= config.chunks,
            "every VM needs at least one chunk"
        );
        Controller {
            config,
            qms: Vec::new(),
            cores: Vec::new(),
            pool: ChunkPool::new(config.chunks),
        }
    }

    /// Controller configuration.
    pub fn config(&self) -> ControllerConfig {
        self.config
    }

    /// Registers a VM, carving its subqueue out of the chunk pool and
    /// rebalancing every subqueue to the new proportional targets.
    ///
    /// # Panics
    /// Panics if the VM is already registered, the QM table is full, or
    /// `cores` is zero.
    pub fn register_vm(&mut self, vm: VmId, kind: VmKind, cores: usize) {
        assert!(cores > 0, "a VM needs at least one core");
        assert!(
            self.qms.len() < self.config.max_vms,
            "all QM/VM-state pairs in use"
        );
        assert!(
            self.qm_index(vm).is_none(),
            "VM already registered with the controller"
        );
        self.qms.push(QueueManager::new(
            vm,
            kind,
            Subqueue::new(0, self.config.entries_per_chunk),
        ));
        self.cores.push(cores);
        self.rebalance();
    }

    /// Deregisters a VM; its chunks return to the pool and are redistributed
    /// to the remaining subqueues.
    ///
    /// # Panics
    /// Panics if the VM is unknown.
    pub fn deregister_vm(&mut self, vm: VmId) {
        let idx = self.qm_index(vm).expect("VM not registered");
        let mut qm = self.qms.remove(idx);
        self.cores.remove(idx);
        while let Some(chunk) = qm.rq_map_mut().donate_tail() {
            self.pool.release(chunk, vm.0);
        }
        self.rebalance();
    }

    /// Re-splits chunks proportionally to core counts. Every registered VM
    /// keeps at least one chunk.
    fn rebalance(&mut self) {
        if self.qms.is_empty() {
            return;
        }
        let total_cores: usize = self.cores.iter().sum();
        let total_chunks = self.config.chunks;
        // Largest-remainder proportional split with a floor of 1.
        let n = self.qms.len();
        let mut targets: Vec<usize> = self
            .cores
            .iter()
            .map(|&c| ((total_chunks * c) as f64 / total_cores as f64).floor() as usize)
            .map(|t| t.max(1))
            .collect();
        let mut assigned: usize = targets.iter().sum();
        // Hand out leftovers (or claw back overshoot) round-robin by
        // largest fractional share — order by core count for determinism.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.cores[i]));
        let mut k = 0;
        while assigned < total_chunks {
            targets[order[k % n]] += 1;
            assigned += 1;
            k += 1;
        }
        while assigned > total_chunks {
            let i = order[k % n];
            if targets[i] > 1 {
                targets[i] -= 1;
                assigned -= 1;
            }
            k += 1;
        }

        // Phase 1: shed from over-target subqueues into the pool. Chunks
        // leave from the tail of each RQ-Map (Section 4.1.2).
        for (i, qm) in self.qms.iter_mut().enumerate() {
            let have = qm.queue().chunks();
            if have > targets[i] {
                let shed = qm.queue_mut().shed_chunks(have - targets[i]);
                let owner = qm.vm().0;
                for _ in 0..shed {
                    let chunk = qm
                        .rq_map_mut()
                        .donate_tail()
                        .expect("RQ-Map tracks the subqueue's chunks");
                    self.pool.release(chunk, owner);
                }
            }
        }
        // Phase 2: grow under-target subqueues from the pool; received
        // chunks append at the RQ-Map tail.
        for (i, qm) in self.qms.iter_mut().enumerate() {
            let have = qm.queue().chunks();
            if have < targets[i] {
                let want = targets[i] - have;
                let owner = qm.vm().0;
                let take = want.min(self.pool.free());
                for _ in 0..take {
                    let chunk = self.pool.allocate(owner).expect("free checked");
                    qm.rq_map_mut().append(chunk);
                }
                qm.queue_mut().add_chunks(take);
            }
        }
    }

    fn qm_index(&self, vm: VmId) -> Option<usize> {
        self.qms.iter().position(|q| q.vm() == vm)
    }

    /// The QM of a VM.
    ///
    /// # Panics
    /// Panics if the VM is unknown.
    pub fn qm(&self, vm: VmId) -> &QueueManager {
        let i = self.qm_index(vm).expect("VM not registered");
        &self.qms[i]
    }

    /// Mutable QM of a VM.
    ///
    /// # Panics
    /// Panics if the VM is unknown.
    pub fn qm_mut(&mut self, vm: VmId) -> &mut QueueManager {
        let i = self.qm_index(vm).expect("VM not registered");
        &mut self.qms[i]
    }

    /// All registered QMs.
    pub fn qms(&self) -> &[QueueManager] {
        &self.qms
    }

    /// Routes a NIC arrival to the destination VM's QM (Figure 8(a) steps
    /// 3–4).
    ///
    /// # Panics
    /// Panics if the VM is unknown.
    pub fn enqueue(&mut self, vm: VmId, token: u64, now: Cycles) -> EnqueueOutcome {
        self.qm_mut(vm).enqueue(token, now)
    }

    /// Chunks not currently owned by any subqueue.
    pub fn free_chunks(&self) -> usize {
        self.pool.free()
    }

    /// Invariant check: owned + free chunks equals the physical total, the
    /// pool's ownership records are consistent, and every QM's RQ-Map
    /// agrees with its subqueue's chunk count.
    pub fn chunk_accounting_ok(&self) -> bool {
        let owned: usize = self.qms.iter().map(|q| q.queue().chunks()).sum();
        owned + self.pool.free() == self.config.chunks
            && self.pool.accounting_ok()
            && self.qms.iter().all(|q| {
                q.rq_map().len() == q.queue().chunks()
                    && self.pool.owned_by(q.vm().0).len() == q.queue().chunks()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_with_vms(vms: &[(u16, VmKind, usize)]) -> Controller {
        let mut c = Controller::new(ControllerConfig::table1());
        for &(id, kind, cores) in vms {
            c.register_vm(VmId(id), kind, cores);
        }
        c
    }

    #[test]
    fn single_vm_owns_all_chunks() {
        let c = table1_with_vms(&[(0, VmKind::Primary, 4)]);
        assert_eq!(c.qm(VmId(0)).queue().chunks(), 32);
        assert!(c.chunk_accounting_ok());
    }

    #[test]
    fn paper_configuration_split() {
        // 8 Primary VMs × 4 cores + 1 Harvest VM × 4 cores = 36 cores.
        let mut spec: Vec<(u16, VmKind, usize)> =
            (0..8).map(|i| (i, VmKind::Primary, 4)).collect();
        spec.push((8, VmKind::Harvest, 4));
        let c = table1_with_vms(&spec);
        assert!(c.chunk_accounting_ok());
        for vm in 0..9u16 {
            let chunks = c.qm(VmId(vm)).queue().chunks();
            assert!((3..=4).contains(&chunks), "vm{vm} got {chunks} chunks");
        }
        assert_eq!(c.free_chunks(), 0);
    }

    #[test]
    fn arrival_then_departure_rebalances() {
        let mut c = table1_with_vms(&[(0, VmKind::Primary, 4), (1, VmKind::Primary, 4)]);
        assert_eq!(c.qm(VmId(0)).queue().chunks(), 16);
        c.register_vm(VmId(2), VmKind::Harvest, 8);
        assert!(c.chunk_accounting_ok());
        assert_eq!(c.qm(VmId(2)).queue().chunks(), 16);
        assert_eq!(c.qm(VmId(0)).queue().chunks(), 8);
        c.deregister_vm(VmId(2));
        assert!(c.chunk_accounting_ok());
        assert_eq!(c.qm(VmId(0)).queue().chunks(), 16);
    }

    #[test]
    fn queued_entries_survive_rebalance() {
        let mut c = table1_with_vms(&[(0, VmKind::Primary, 4)]);
        for t in 0..100 {
            c.enqueue(VmId(0), t, Cycles::ZERO);
        }
        c.register_vm(VmId(1), VmKind::Harvest, 32);
        assert!(c.chunk_accounting_ok());
        // All 100 requests still dequeue in order.
        let mut got = Vec::new();
        while let Some((t, _, _)) = c.qm_mut(VmId(0)).dequeue() {
            got.push(t);
            c.qm_mut(VmId(0)).complete(t);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_registration_panics() {
        table1_with_vms(&[(0, VmKind::Primary, 4), (0, VmKind::Primary, 4)]);
    }

    #[test]
    #[should_panic(expected = "all QM")]
    fn qm_exhaustion_panics() {
        let spec: Vec<(u16, VmKind, usize)> =
            (0..17).map(|i| (i, VmKind::Primary, 1)).collect();
        table1_with_vms(&spec);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_vm_panics() {
        table1_with_vms(&[(0, VmKind::Primary, 4)]).qm(VmId(9));
    }

    #[test]
    fn sixteen_vms_each_get_two_chunks() {
        let spec: Vec<(u16, VmKind, usize)> =
            (0..16).map(|i| (i, VmKind::Primary, 2)).collect();
        let c = table1_with_vms(&spec);
        assert!(c.chunk_accounting_ok());
        for vm in 0..16u16 {
            assert_eq!(c.qm(VmId(vm)).queue().chunks(), 2);
        }
    }
}
