//! Per-VM Queue Managers and VM state registers.

use hh_sim::{CoreId, Cycles, VmId};
use serde::{Deserialize, Serialize};

use crate::{DequeueSource, EnqueueOutcome, RqMap, Subqueue};

/// Whether a VM is latency-critical or a batch harvester.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmKind {
    /// Latency-critical microservice VM with a fixed core allocation.
    Primary,
    /// Batch VM that grows by harvesting idle Primary cores.
    Harvest,
}

impl VmKind {
    /// True for [`VmKind::Primary`].
    pub fn is_primary(self) -> bool {
        matches!(self, VmKind::Primary)
    }
}

/// The per-VM HarvestMask register (Section 4.2.1): one bit per way for
/// each of the six partitioned structures (L1I, L1D, L2, L1 I-TLB, L1
/// D-TLB, L2 TLB), 5 B total in the paper's accounting. Loaded into a
/// core's cache controllers when it is (re-)assigned to the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarvestMask {
    /// Way bits per structure, in the order above (up to 32 ways each;
    /// the paper packs them into 40 bits total, we keep them addressable).
    pub ways: [u32; 6],
}

impl HarvestMask {
    /// A mask granting the given fraction of each structure's ways, for
    /// structures of the Table 1 geometries (8/12/8/4/4/8 ways).
    pub fn fraction(frac: f64) -> Self {
        let ways_of = [8usize, 12, 8, 4, 4, 8];
        let mut ways = [0u32; 6];
        for (i, &n) in ways_of.iter().enumerate() {
            let k = ((n as f64 * frac).round() as usize).clamp(0, n);
            ways[i] = if k == 0 { 0 } else { (1u32 << k) - 1 };
        }
        HarvestMask { ways }
    }

    /// Storage footprint in bytes (Section 6.8: 5 B).
    pub const BYTES: usize = 5;
}

/// The VM State Register Set (Table 1: 16 registers of 8 B each): VMCS
/// pointer, CR0, CR3, CR4, GDTR, LDTR, IDTR and friends. The simulator does
/// not interpret the values; holding them in the controller is what lets a
/// core switch VMs without a hypervisor call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmStateRegs {
    /// Raw register images.
    pub regs: [u64; 16],
}

impl VmStateRegs {
    /// Synthesizes a distinct register image for a VM.
    pub fn for_vm(vm: VmId) -> Self {
        let mut regs = [0u64; 16];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = ((vm.0 as u64) << 32) | i as u64;
        }
        VmStateRegs { regs }
    }

    /// Storage footprint in bytes (Section 6.8 accounting).
    pub const BYTES: usize = 16 * 8;
}

/// The hardware Queue Manager of one VM (Figure 9).
///
/// A QM owns the VM's request subqueue and RQ-Map, knows whether it manages
/// a Primary or Harvest VM, tracks which bound cores are on loan, and holds
/// the VM's HarvestMask and state registers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueueManager {
    vm: VmId,
    kind: VmKind,
    queue: Subqueue,
    /// Logical→physical chunk translation (Section 4.1.2).
    rq_map: RqMap,
    state: VmStateRegs,
    /// The VM's cache/TLB harvest-region configuration.
    harvest_mask: HarvestMask,
    /// Cores logically bound to this VM (their `MyManager` register points
    /// here).
    bound: Vec<CoreId>,
    /// Bound cores currently executing Harvest work (only meaningful for a
    /// Primary QM).
    on_loan: Vec<CoreId>,
    /// Requests handed out and not yet completed.
    inflight: usize,
    enqueued: u64,
    completed: u64,
}

impl QueueManager {
    /// Creates a QM with the given subqueue.
    pub fn new(vm: VmId, kind: VmKind, queue: Subqueue) -> Self {
        QueueManager {
            vm,
            kind,
            queue,
            rq_map: RqMap::new(),
            state: VmStateRegs::for_vm(vm),
            harvest_mask: HarvestMask::fraction(0.5),
            bound: Vec::new(),
            on_loan: Vec::new(),
            inflight: 0,
            enqueued: 0,
            completed: 0,
        }
    }

    /// The managed VM.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Primary or Harvest.
    pub fn kind(&self) -> VmKind {
        self.kind
    }

    /// The VM state register set delivered to cores on a switch.
    pub fn state_regs(&self) -> VmStateRegs {
        self.state
    }

    /// The VM's HarvestMask register, delivered alongside the state
    /// registers so the core can reconfigure its caches/TLBs.
    pub fn harvest_mask(&self) -> HarvestMask {
        self.harvest_mask
    }

    /// Reprograms the VM's HarvestMask (a default or software-specified
    /// value, Section 4.2.1).
    pub fn set_harvest_mask(&mut self, mask: HarvestMask) {
        self.harvest_mask = mask;
    }

    /// Binds a core to this VM (sets its `MyManager` register).
    pub fn bind_core(&mut self, core: CoreId) {
        if !self.bound.contains(&core) {
            self.bound.push(core);
        }
    }

    /// Cores bound to this VM.
    pub fn bound_cores(&self) -> &[CoreId] {
        &self.bound
    }

    /// Marks a bound core as on loan to the Harvest VM.
    ///
    /// # Panics
    /// Panics if the core is not bound to this VM or already on loan.
    pub fn lend_core(&mut self, core: CoreId) {
        assert!(self.bound.contains(&core), "core not bound to this VM");
        assert!(!self.on_loan.contains(&core), "core already on loan");
        self.on_loan.push(core);
    }

    /// Returns a loaned core to this VM.
    ///
    /// # Panics
    /// Panics if the core was not on loan.
    pub fn reclaim_core(&mut self, core: CoreId) {
        let pos = self
            .on_loan
            .iter()
            .position(|&c| c == core)
            .expect("core was not on loan");
        self.on_loan.remove(pos);
    }

    /// Cores currently on loan.
    pub fn loaned_cores(&self) -> &[CoreId] {
        &self.on_loan
    }

    /// Whether any bound core is on loan — the precondition for the QM to
    /// raise a reclamation interrupt (Section 4.1.5).
    pub fn has_loaned_core(&self) -> bool {
        !self.on_loan.is_empty()
    }

    /// Direct access to the subqueue.
    pub fn queue(&self) -> &Subqueue {
        &self.queue
    }

    /// Mutable access to the subqueue (chunk donation).
    pub fn queue_mut(&mut self) -> &mut Subqueue {
        &mut self.queue
    }

    /// The QM's RQ-Map.
    pub fn rq_map(&self) -> &RqMap {
        &self.rq_map
    }

    /// Mutable RQ-Map (used by the controller's donation protocol).
    pub fn rq_map_mut(&mut self) -> &mut RqMap {
        &mut self.rq_map
    }

    /// Enqueues an arriving request (NIC → QM path, Figure 8(a)).
    pub fn enqueue(&mut self, token: u64, now: Cycles) -> EnqueueOutcome {
        self.enqueued += 1;
        self.queue.enqueue(token, now)
    }

    /// Hands the oldest ready request to a spinning core.
    pub fn dequeue(&mut self) -> Option<(u64, Cycles, DequeueSource)> {
        let out = self.queue.dequeue_ready();
        if out.is_some() {
            self.inflight += 1;
        }
        out
    }

    /// Records a blocking I/O call for a running request.
    pub fn mark_blocked(&mut self, token: u64) {
        self.queue.mark_blocked(token);
        self.inflight -= 1;
    }

    /// Records an I/O response: the request is runnable again.
    pub fn mark_ready(&mut self, token: u64) {
        self.queue.mark_ready(token);
    }

    /// Returns a preempted Harvest request to the ready queue.
    pub fn preempt(&mut self, token: u64) {
        self.queue.preempt(token);
        self.inflight -= 1;
    }

    /// Retires a completed request.
    pub fn complete(&mut self, token: u64) {
        self.queue.complete(token);
        self.inflight -= 1;
        self.completed += 1;
    }

    /// Requests dequeued and currently executing on some core.
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Total requests enqueued (including overflowed ones).
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Total requests completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Whether work is waiting.
    pub fn has_ready(&self) -> bool {
        self.queue.has_ready()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qm(kind: VmKind) -> QueueManager {
        QueueManager::new(VmId(1), kind, Subqueue::new(2, 4))
    }

    #[test]
    fn state_regs_distinct_per_vm() {
        let a = VmStateRegs::for_vm(VmId(1));
        let b = VmStateRegs::for_vm(VmId(2));
        assert_ne!(a, b);
        assert_eq!(VmStateRegs::BYTES, 128);
    }

    #[test]
    fn harvest_mask_fraction_covers_structures() {
        let m = HarvestMask::fraction(0.5);
        // Half of 8/12/8/4/4/8 ways: 4/6/4/2/2/4 bits set.
        let counts: Vec<u32> = m.ways.iter().map(|w| w.count_ones()).collect();
        assert_eq!(counts, vec![4, 6, 4, 2, 2, 4]);
        assert_eq!(HarvestMask::BYTES, 5);
        let zero = HarvestMask::fraction(0.0);
        assert!(zero.ways.iter().all(|&w| w == 0));
    }

    #[test]
    fn qm_carries_and_updates_harvest_mask() {
        let mut m = qm(VmKind::Primary);
        assert_eq!(m.harvest_mask(), HarvestMask::fraction(0.5));
        m.set_harvest_mask(HarvestMask::fraction(1.0 / 3.0));
        assert_ne!(m.harvest_mask(), HarvestMask::fraction(0.5));
    }

    #[test]
    fn lend_and_reclaim() {
        let mut m = qm(VmKind::Primary);
        m.bind_core(CoreId(3));
        m.bind_core(CoreId(4));
        assert!(!m.has_loaned_core());
        m.lend_core(CoreId(3));
        assert!(m.has_loaned_core());
        assert_eq!(m.loaned_cores(), &[CoreId(3)]);
        m.reclaim_core(CoreId(3));
        assert!(!m.has_loaned_core());
    }

    #[test]
    #[should_panic(expected = "not bound")]
    fn lending_unbound_core_panics() {
        qm(VmKind::Primary).lend_core(CoreId(9));
    }

    #[test]
    #[should_panic(expected = "already on loan")]
    fn double_lend_panics() {
        let mut m = qm(VmKind::Primary);
        m.bind_core(CoreId(1));
        m.lend_core(CoreId(1));
        m.lend_core(CoreId(1));
    }

    #[test]
    fn request_lifecycle_counters() {
        let mut m = qm(VmKind::Primary);
        m.enqueue(1, Cycles::ZERO);
        m.enqueue(2, Cycles::ZERO);
        assert_eq!(m.enqueued(), 2);
        let (t, _, _) = m.dequeue().unwrap();
        assert_eq!(m.inflight(), 1);
        m.mark_blocked(t);
        assert_eq!(m.inflight(), 0);
        m.mark_ready(t);
        let (t2, _, _) = m.dequeue().unwrap();
        assert_eq!(t2, t, "blocked request resumes before newer one");
        m.complete(t2);
        assert_eq!(m.completed(), 1);
        assert!(m.has_ready());
    }

    #[test]
    fn bind_is_idempotent() {
        let mut m = qm(VmKind::Harvest);
        m.bind_core(CoreId(0));
        m.bind_core(CoreId(0));
        assert_eq!(m.bound_cores().len(), 1);
        assert!(!m.kind().is_primary());
    }
}
