//! Property tests for the HardHarvest controller.

use hh_hwqueue::{Controller, ControllerConfig, DequeueSource, EnqueueOutcome, Subqueue, VmKind};
use hh_sim::{Cycles, VmId};
use proptest::prelude::*;

proptest! {
    /// FIFO conservation: tokens dequeue in enqueue order regardless of how
    /// they spill to and return from the overflow subqueue.
    #[test]
    fn fifo_order_survives_overflow(
        chunks in 1usize..4,
        n in 1usize..200,
    ) {
        let mut q = Subqueue::new(chunks, 8);
        for t in 0..n as u64 {
            q.enqueue(t, Cycles::new(t));
        }
        let mut got = Vec::new();
        while let Some((t, _, _)) = q.dequeue_ready() {
            got.push(t);
            q.complete(t);
        }
        prop_assert_eq!(got, (0..n as u64).collect::<Vec<_>>());
    }

    /// Hardware occupancy accounting: entries resident in hardware never
    /// exceed capacity as long as requests are dequeued and completed in
    /// a well-formed way.
    #[test]
    fn hardware_occupancy_bounded(
        ops in prop::collection::vec(0u8..3, 1..300),
    ) {
        let mut q = Subqueue::new(2, 4); // 8 slots
        let mut next = 0u64;
        let mut running: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                0 => {
                    q.enqueue(next, Cycles::ZERO);
                    next += 1;
                }
                1 => {
                    if let Some((t, _, _)) = q.dequeue_ready() {
                        running.push(t);
                    }
                }
                _ => {
                    if let Some(t) = running.pop() {
                        q.complete(t);
                    }
                }
            }
            // Hardware occupancy may transiently exceed capacity only by
            // the number of running requests promoted from overflow.
            prop_assert!(
                q.occupancy() <= q.capacity() + running.len(),
                "occupancy {} capacity {} running {}",
                q.occupancy(),
                q.capacity(),
                running.len()
            );
        }
    }

    /// Blocked requests always resume ahead of requests that arrived after
    /// them (FIFO by arrival, Section 4.1.5).
    #[test]
    fn blocked_resume_keeps_arrival_order(block_first in any::<bool>()) {
        let mut q = Subqueue::new(2, 4);
        q.enqueue(1, Cycles::new(1));
        q.enqueue(2, Cycles::new(2));
        let (t, _, _) = q.dequeue_ready().unwrap();
        prop_assert_eq!(t, 1);
        q.mark_blocked(1);
        if block_first {
            // 2 runs and blocks as well.
            let (t2, _, _) = q.dequeue_ready().unwrap();
            q.mark_blocked(t2);
            q.mark_ready(2);
        }
        q.mark_ready(1);
        let (t, _, _) = q.dequeue_ready().unwrap();
        prop_assert_eq!(t, 1, "older request must resume first");
    }

    /// Chunk rebalancing: after any sequence of VM arrivals, chunk shares
    /// are proportional to core counts within one chunk, and accounting is
    /// conserved.
    #[test]
    fn chunk_shares_track_core_shares(
        cores in prop::collection::vec(1usize..12, 1..10),
    ) {
        let mut ctrl = Controller::new(ControllerConfig::table1());
        for (i, &c) in cores.iter().enumerate() {
            ctrl.register_vm(VmId(i as u16), VmKind::Primary, c);
        }
        prop_assert!(ctrl.chunk_accounting_ok());
        let total_cores: usize = cores.iter().sum();
        for (i, &c) in cores.iter().enumerate() {
            let share = 32.0 * c as f64 / total_cores as f64;
            let got = ctrl.qm(VmId(i as u16)).queue().chunks() as f64;
            prop_assert!(
                (got - share).abs() <= 2.0,
                "vm{i}: got {got} chunks, fair share {share:.1}"
            );
        }
    }

    /// Enqueue outcome is Hardware exactly while hardware slots remain.
    #[test]
    fn overflow_starts_exactly_at_capacity(extra in 1usize..20) {
        let mut q = Subqueue::new(1, 4);
        for t in 0..4u64 {
            prop_assert_eq!(q.enqueue(t, Cycles::ZERO), EnqueueOutcome::Hardware);
        }
        for t in 0..extra as u64 {
            prop_assert_eq!(q.enqueue(100 + t, Cycles::ZERO), EnqueueOutcome::Overflow);
        }
        prop_assert_eq!(q.overflow_len(), extra);
        // The first dequeue is served from hardware.
        let (_, _, src) = q.dequeue_ready().unwrap();
        prop_assert_eq!(src, DequeueSource::Hardware);
    }
}
