// Fixture: local types that merely share a name with a banned std type.
// Shadow detection is file-scoped (like import collection), so a local
// `struct HashMap` absolves bare single-segment uses anywhere in this
// file — but fully-qualified std paths are still the real thing.

/// A dense, insertion-ordered stand-in that happens to reuse the name.
struct HashMap {
    keys: Vec<u64>,
    vals: Vec<u64>,
}

struct Instant {
    cycles: u64,
}

fn local_types_are_fine(m: &HashMap, t: &Instant) -> u64 {
    let m2: HashMap = HashMap { keys: vec![], vals: vec![] };
    m.keys.len() as u64 + m2.vals.len() as u64 + t.cycles
}

fn qualified_is_still_banned() {
    let _m: std::collections::HashMap<u64, u64> = std::collections::HashMap::new(); //~ nondeterministic-collection nondeterministic-collection
    let _t = std::time::Instant::now(); //~ wall-clock-in-sim
}
