// Fixture: float-eq. Exact equality against float literals is flagged;
// ranges, orderings, integer comparisons and total-order idioms are not.

fn exact(a: f64, b: f64) -> bool {
    let zero = a == 0.0; //~ float-eq
    let one = 1.0 != b; //~ float-eq
    zero || one
}

fn negative_zero(x: f64) -> bool {
    x == -0.0 //~ float-eq
}

fn scientific(x: f64) -> bool {
    x != 2.5e-3 //~ float-eq
}

fn ranges_are_fine(x: f64) -> bool {
    (0.0..=1.0).contains(&x)
}

fn orderings_are_fine(x: f64) -> bool {
    x < 0.5 && x >= 0.125
}

fn integers_are_fine(n: u64) -> bool {
    n == 0
}

fn total_order(a: f64) -> bool {
    a.total_cmp(&0.5).is_lt()
}

fn epsilon(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-12
}

fn justified(span: f64) -> bool {
    // hh-lint: allow(float-eq): span is a sum of exact dyadic steps
    span == 0.25
}

#[cfg(test)]
mod tests {
    #[test]
    fn bit_exact_assertions_allowed_in_tests() {
        let x = 0.1 + 0.2;
        assert!(x != 0.3);
    }
}
