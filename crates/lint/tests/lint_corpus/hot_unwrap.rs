// Fixture: unwrap-in-hot-path, #[inline] scope. This file is NOT a
// configured hot module, so only `#[inline]` function bodies are hot.

/// Calling `.unwrap()` in a doc comment is prose, not code.
#[inline]
pub fn hot_lookup(xs: &[u64], i: usize) -> u64 {
    let v = xs.get(i).unwrap(); //~ unwrap-in-hot-path
    *v
}

#[inline(always)]
fn hot_expect(x: Option<u64>) -> u64 {
    x.expect("present") //~ unwrap-in-hot-path
}

#[inline]
fn hot_panic(x: u64) -> u64 {
    if x == 0 {
        panic!("zero"); //~ unwrap-in-hot-path
    }
    x
}

#[inline]
fn hot_but_guarded(xs: &[u64]) -> u64 {
    debug_assert!(xs.first().unwrap() < &10); // debug-only, compiled out
    xs.len() as u64
}

fn cold_setup(path: &str) -> String {
    std::fs::read_to_string(path).unwrap() // cold path: unwrap is fine
}

#[inline]
fn hot_justified(x: Option<u64>) -> u64 {
    // hh-lint: allow(unwrap-in-hot-path): index validated by caller
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_unwrap_freely() {
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
