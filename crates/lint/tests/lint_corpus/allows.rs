// Fixture: inline allow directives. A directive suppresses only the
// named rules, only on its own line and the line immediately after.

fn same_line(a: f64) -> bool {
    a == 0.0 // hh-lint: allow(float-eq): sentinel encodes "no sample yet"
}

fn line_above(b: f64) -> bool {
    // hh-lint: allow(float-eq): exact dyadic comparison
    b == 0.5
}

fn multi_rule() {
    // hh-lint: allow(wall-clock-in-sim, float-eq): calibration helper
    let t = std::time::Instant::now();
    let _ = t;
}

fn wrong_rule_does_not_cover(c: f64) -> bool {
    // hh-lint: allow(wall-clock-in-sim): misdirected
    c == 0.25 //~ float-eq
}

fn too_far_away(d: f64) -> bool {
    // hh-lint: allow(float-eq): only reaches the next line
    let unrelated = d + 1.0;
    unrelated == 2.0 //~ float-eq
}
