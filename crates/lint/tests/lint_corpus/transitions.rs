// Fixture: untraced-transition. A function that performs a named
// sim-state transition (lend/reclaim/flush/enqueue) must leave trace
// evidence: a trace_*! macro or a call to a tracing helper.

struct Sim {
    ctrl: Ctrl,
}

struct Ctrl {
    depth: u64,
}

impl Ctrl {
    fn enqueue(&mut self, _id: u64) {
        self.depth += 1;
    }

    fn lend_core(&mut self) {}
    fn reclaim_core(&mut self) {}
    fn flush_all(&mut self) {}
}

impl Sim {
    fn silent_arrival(&mut self, id: u64) {
        self.ctrl.enqueue(id); //~ untraced-transition
    }

    fn traced_arrival(&mut self, id: u64) {
        self.ctrl.enqueue(id);
        trace_event!(queue, "arrival", id);
    }

    fn helper_traced_lend(&mut self) {
        self.ctrl.lend_core();
        self.note_reassign(1);
    }

    fn silent_flush(&mut self) {
        self.ctrl.flush_all(); //~ untraced-transition
        self.ctrl.reclaim_core();
    }

    fn no_transition_here(&self) -> u64 {
        self.ctrl.depth
    }

    fn note_reassign(&mut self, _n: u64) {
        trace_count!(reassigned, 1);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_drive_transitions_silently() {
        let mut c = super::Ctrl { depth: 0 };
        c.enqueue(7);
    }
}
