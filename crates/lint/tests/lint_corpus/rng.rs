// Fixture: ambient-rng. Any entropy that does not flow from the seeded
// experiment config is flagged: the rand crate family, OS entropy, and
// std's randomized hasher state.

use rand::thread_rng;

fn ambient() -> u64 {
    let mut rng = thread_rng(); //~ ambient-rng
    let _ = &mut rng;
    0
}

fn qualified() -> u64 {
    let _x: u64 = rand::random(); //~ ambient-rng
    0
}

fn from_entropy_ctor() {
    let _r = StdRng::from_entropy(); //~ ambient-rng
}

fn os_entropy() {
    let mut buf = [0u8; 8];
    getrandom::getrandom(&mut buf); //~ ambient-rng
}

fn hasher_state() {
    let _s = std::collections::hash_map::RandomState::new(); //~ ambient-rng
    let _h = std::hash::DefaultHasher::new(); //~ ambient-rng
}

// The blessed path: a generator seeded from the experiment config.
fn seeded(seed: u64) -> u64 {
    let mut rng = Rng64::new(seed ^ 0x9e37);
    rng.next_u64()
}

struct Rng64 {
    state: u64,
}

impl Rng64 {
    fn new(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1);
        self.state
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn proptest_shrink_seed_is_test_only() {
        let _s = std::collections::hash_map::RandomState::new();
    }
}
