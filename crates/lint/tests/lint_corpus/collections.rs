// Fixture: nondeterministic-collection.
// Findings are annotated with tilde markers; unannotated lines must stay
// clean. This file is lint input, never compiled.

use std::collections::HashMap; // the use item itself is not flagged
use std::collections::HashSet as FastSet;
use std::collections::BTreeMap;

struct State {
    by_id: HashMap<u64, u64>, //~ nondeterministic-collection
    tags: FastSet<u64>, //~ nondeterministic-collection
    ordered: BTreeMap<u64, u64>,
}

fn build() -> State {
    let by_id = HashMap::new(); //~ nondeterministic-collection
    let tags = FastSet::new(); //~ nondeterministic-collection
    let ordered = BTreeMap::new();
    State { by_id, tags, ordered }
}

fn qualified() {
    let _m: std::collections::HashMap<u64, u64> = std::collections::HashMap::new(); //~ nondeterministic-collection nondeterministic-collection
    let _h = hashbrown::HashMap::<u64, u64>::new(); //~ nondeterministic-collection
}

fn turbofish(xs: &[u64]) {
    let _s = xs.iter().copied().collect::<HashSet<u64>>(); //~ nondeterministic-collection
}

#[cfg(test)]
mod tests {
    #[test]
    fn reference_model_may_hash() {
        let _m: std::collections::HashMap<u64, u64> = Default::default();
    }
}
