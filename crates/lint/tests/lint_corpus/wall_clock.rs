// Fixture: wall-clock-in-sim. Host time sources are flagged wherever the
// crate policy denies them; simulated clocks are not.

use std::time::Instant;
use std::time::SystemTime as Wall;
use std::time::Duration;

fn measure() -> f64 {
    let t0 = Instant::now(); //~ wall-clock-in-sim
    let _ = t0;
    0.0
}

fn renamed() {
    let _now = Wall::now(); //~ wall-clock-in-sim
}

fn qualified() {
    let _t = std::time::Instant::now(); //~ wall-clock-in-sim
    let _e = std::time::SystemTime::UNIX_EPOCH; //~ wall-clock-in-sim
}

fn durations_are_fine(d: Duration) -> u64 {
    d.as_micros() as u64
}

// The simulator's own clock type is not the host clock.
struct Instant2 {
    cycles: u64,
}

fn sim_clock(c: &Instant2) -> u64 {
    c.cycles
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_inside_tests_is_not_sim_time() {
        let _t0 = std::time::Instant::now();
    }
}
