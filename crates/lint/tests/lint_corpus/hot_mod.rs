// Fixture: unwrap-in-hot-path, whole-file scope. The corpus policy lists
// `hot_mod.rs` as a hot module, so every non-test function here is hot
// even without `#[inline]`.

pub struct Ring {
    slots: Vec<u64>,
    head: usize,
}

impl Ring {
    pub fn pop(&mut self) -> u64 {
        let v = self.slots.get(self.head).copied().unwrap(); //~ unwrap-in-hot-path
        self.head += 1;
        v
    }

    pub fn peek(&self) -> u64 {
        *self.slots.first().expect("ring is non-empty") //~ unwrap-in-hot-path
    }

    pub fn checked_pop(&mut self) -> Option<u64> {
        let v = self.slots.get(self.head).copied()?;
        self.head += 1;
        Some(v)
    }

    pub fn audited(&self) -> u64 {
        // hh-lint: allow(unwrap-in-hot-path): len checked at construction
        self.slots.last().copied().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::Ring;

    #[test]
    fn pop_order() {
        let mut r = Ring { slots: vec![1, 2], head: 0 };
        assert_eq!(r.checked_pop().unwrap(), 1);
    }
}
