// Fixture: pub-field-in-oracle-type. Types the hh-check oracle diffs
// (SetAssocCache, Samples, Subqueue, ClusterMetrics) must keep their
// fields private so constructor invariants cannot be bypassed.

pub struct Samples {
    pub values: Vec<f64>, //~ pub-field-in-oracle-type
    pub sorted: bool, //~ pub-field-in-oracle-type
    count: usize,
}

pub struct ClusterMetrics {
    pub(crate) system: &'static str,
    servers: Vec<u64>,
}

pub struct SetAssocCache {
    sets: Vec<u64>,
    ways: usize,
}

pub struct Subqueue {
    tokens: Vec<u64>,
    pub depth: usize, //~ pub-field-in-oracle-type
}

// Not an oracle type: free to expose whatever it wants.
pub struct ScratchPad {
    pub anything: Vec<u64>,
    pub goes: bool,
}

impl Samples {
    pub fn len(&self) -> usize {
        self.count
    }
}

fn uses(c: &SetAssocCache, m: &ClusterMetrics) -> usize {
    c.sets.len() + c.ways + m.servers.len() + m.system.len()
}
