// Fixture: lexer corner cases. Everything below smuggles rule-trigger
// text through strings, comments, lifetimes and numeric edge cases; none
// of it may produce a finding until the one real violation at the end.

/// Doc comments may say `HashMap`, `Instant::now()` and `x.unwrap()`.
fn strings_hide_everything() -> &'static str {
    let plain = "HashMap::new() == 0.0 && Instant::now()";
    let raw = r#"thread_rng() "quoted" SystemTime"#;
    let more = r##"ends with "# not here: "##;
    let bytes = b"HashSet == 1.0";
    let raw_bytes = br"getrandom unwrap()";
    let _ = (plain, raw, more, bytes, raw_bytes);
    "done"
}

/* Block comments nest: /* HashMap == 0.0 */ still inside the outer
   comment, where Instant::now().unwrap() is prose. */

fn lifetimes_vs_chars<'a>(x: &'a str) -> (&'a str, char, u8) {
    let c = 'a';
    let esc = '\'';
    let byte = b'x';
    let byte_esc = b'\'';
    let _ = (esc, byte_esc);
    (x, c, byte)
}

fn numbers_that_look_floaty(t: (u64, f64)) -> u64 {
    let tuple_access = t.0;
    let range_sum: u64 = (1..4).sum();
    let inclusive: u64 = (1..=3).sum();
    let method_on_int = 7.max(2);
    let hex = 0xFF_u64;
    let float_no_cmp = 2.5e-3_f64 + 1.0 + 10.5;
    let _ = float_no_cmp;
    tuple_access + range_sum + inclusive + method_on_int + hex
}

macro_rules! table {
    ($($k:expr => $v:expr),*) => {
        vec![$(($k, $v)),*]
    };
}

fn macro_bodies() -> Vec<(u64, f64)> {
    println!("fmt only: {} == {}", 1.0, 2.0);
    table![1 => 1.5, 2 => 2.5]
}

#[cfg(feature = "never-on")]
fn cfg_gated(xs: &[u64]) -> u64 {
    xs.iter().copied().sum()
}

fn raw_identifiers() -> u64 {
    let r#match = 3_u64;
    let r#type = 4_u64;
    r#match + r#type
}

fn the_one_real_violation(x: f64) -> bool {
    x == 0.125 //~ float-eq
}
