//! The acceptance gate: the workspace's own sources must be lint-clean
//! under the CI policy. Any new HashMap-in-sim-state, wall-clock leak,
//! ambient RNG, hot-path unwrap, float `==`, untraced transition or
//! oracle-type pub field fails `cargo test` as well as the CI lint step.

use std::path::Path;

use hh_lint::config::Config;
use hh_lint::diag::render_human;
use hh_lint::lint_workspace;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root");
    let diags = lint_workspace(root, &Config::workspace()).expect("walk workspace");
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        render_human(&diags)
    );
}

#[test]
fn workspace_walk_covers_the_known_crates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let crates = hh_lint::modwalk::discover(root).expect("discover");
    let names: Vec<&str> = crates.iter().map(|c| c.name.as_str()).collect();
    for expected in [
        "hardharvest",
        "hh-bench",
        "hh-check",
        "hh-core",
        "hh-hwqueue",
        "hh-lint",
        "hh-mem",
        "hh-server",
        "hh-sim",
        "hh-trace",
    ] {
        assert!(names.contains(&expected), "missing crate {expected} in {names:?}");
    }
}
