//! Fixture-corpus harness.
//!
//! Each file under `tests/lint_corpus/` is linted with the corpus policy
//! (every rule at deny, the fixture itself counted as a hot module) and
//! its findings are compared against inline `//~ rule-id` annotations:
//! an annotation names each finding expected on its own line, one rule id
//! per finding (repeat the id for multiple findings on one line). The
//! comparison is exact in both directions, so a fixture fails both when a
//! rule misses its target and when it over-fires — and, because expected
//! annotations stop matching, when a rule is disabled
//! (`every_rule_has_corpus_coverage` pins that property explicitly).

use std::fs;
use std::path::{Path, PathBuf};

use hh_lint::config::{Config, Level, RULES};
use hh_lint::lint_file;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_corpus")
}

/// Expected `(line, rule)` pairs parsed from `//~` annotations.
fn expectations(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(pos) = line.find("//~") else { continue };
        for rule in line[pos + 3..].split_whitespace() {
            assert!(
                RULES.contains(&rule),
                "annotation names unknown rule `{rule}` on line {}",
                idx + 1
            );
            out.push((idx as u32 + 1, rule.to_string()));
        }
    }
    out
}

fn findings(src: &str, name: &str, cfg: &Config) -> Vec<(u32, String)> {
    lint_file("hh-corpus", name, src, cfg)
        .into_iter()
        .map(|d| (d.line, d.rule.to_string()))
        .collect()
}

fn check_fixture(name: &str) {
    let path = corpus_dir().join(name);
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {name}: {e}"));
    let cfg = Config::corpus();
    let mut actual = findings(&src, name, &cfg);
    let mut expected = expectations(&src);
    actual.sort();
    expected.sort();
    assert_eq!(
        actual, expected,
        "fixture {name}: findings (left) disagree with //~ annotations (right)"
    );
}

#[test]
fn collections_fixture() {
    check_fixture("collections.rs");
}

#[test]
fn wall_clock_fixture() {
    check_fixture("wall_clock.rs");
}

#[test]
fn rng_fixture() {
    check_fixture("rng.rs");
}

#[test]
fn hot_unwrap_fixture() {
    check_fixture("hot_unwrap.rs");
}

#[test]
fn hot_mod_fixture() {
    check_fixture("hot_mod.rs");
}

#[test]
fn float_eq_fixture() {
    check_fixture("float_eq.rs");
}

#[test]
fn transitions_fixture() {
    check_fixture("transitions.rs");
}

#[test]
fn oracle_pub_fixture() {
    check_fixture("oracle_pub.rs");
}

#[test]
fn lexer_torture_fixture() {
    check_fixture("lexer_torture.rs");
}

#[test]
fn allows_fixture() {
    check_fixture("allows.rs");
}

#[test]
fn shadowing_fixture() {
    check_fixture("shadowing.rs");
}

/// Disabling any single rule must lose at least one expected finding
/// somewhere in the corpus — i.e. every rule has a fixture with teeth.
#[test]
fn every_rule_has_corpus_coverage() {
    let dir = corpus_dir();
    let mut fixtures = Vec::new();
    for entry in fs::read_dir(&dir).expect("corpus dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            let src = fs::read_to_string(&path).expect("read fixture");
            fixtures.push((name, src));
        }
    }
    assert!(fixtures.len() >= 10, "corpus went missing?");

    let full: usize = {
        let cfg = Config::corpus();
        fixtures
            .iter()
            .map(|(n, s)| findings(s, n, &cfg).len())
            .sum()
    };
    for rule in RULES {
        let mut cfg = Config::corpus();
        cfg.default_levels.insert(rule, Level::Allow);
        let without: usize = fixtures
            .iter()
            .map(|(n, s)| findings(s, n, &cfg).len())
            .sum();
        assert!(
            without < full,
            "disabling `{rule}` loses no findings: the rule has no corpus coverage"
        );
    }
}
