//! Diagnostics: the finding record, the inline allow-directive parser and
//! the human / JSON renderers.

use crate::config::Level;
use crate::lexer::Comment;

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable rule id (`float-eq`, …).
    pub rule: &'static str,
    /// Effective severity in this crate.
    pub level: Level,
    /// Crate the file belongs to.
    pub crate_name: String,
    /// Display path, relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// `file:line:col` prefix used in both output formats.
    pub fn location(&self) -> String {
        format!("{}:{}:{}", self.file, self.line, self.col)
    }
}

/// Inline escape hatches parsed from comments:
/// `// hh-lint: allow(rule-a, rule-b): justification`.
///
/// A directive suppresses findings of the named rules on its own line and
/// on the line immediately after it (so it can sit above the offending
/// line, where rustfmt keeps it stable). A justification that wraps onto
/// further `//` comment lines extends the window: consecutive comments on
/// adjacent lines count as one block, and the block as a whole covers one
/// line past its end.
#[derive(Debug, Default)]
pub struct Allows {
    /// (rule, first line covered, last line covered)
    entries: Vec<(String, u32, u32)>,
}

impl Allows {
    /// Parses every directive in `comments` (which arrive in source order).
    pub fn collect(comments: &[Comment]) -> Allows {
        let mut allows = Allows::default();
        for (k, c) in comments.iter().enumerate() {
            let Some(pos) = c.text.find("hh-lint:") else { continue };
            let rest = &c.text[pos + "hh-lint:".len()..];
            let rest = rest.trim_start();
            let Some(body) = rest.strip_prefix("allow") else { continue };
            let body = body.trim_start();
            let Some(body) = body.strip_prefix('(') else { continue };
            let Some(close) = body.find(')') else { continue };
            // Wrapped justification: follow directly-adjacent comments.
            let mut end = c.end_line;
            for next in &comments[k + 1..] {
                if next.line != end + 1 {
                    break;
                }
                end = next.end_line;
            }
            for rule in body[..close].split(',') {
                let rule = rule.trim();
                if !rule.is_empty() {
                    allows.entries.push((rule.to_string(), c.line, end + 1));
                }
            }
        }
        allows
    }

    /// Whether a finding of `rule` on `line` is suppressed.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.entries
            .iter()
            .any(|(r, a, b)| r == rule && *a <= line && line <= *b)
    }
}

/// Renders findings for terminals.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}[{}] {}: {}\n    | {}\n    = help: {}\n",
            d.level.name(),
            d.rule,
            d.location(),
            d.message,
            d.snippet,
            d.hint,
        ));
    }
    let denies = diags.iter().filter(|d| d.level == Level::Deny).count();
    let warns = diags.iter().filter(|d| d.level == Level::Warn).count();
    out.push_str(&format!(
        "hh-lint: {denies} denied, {warns} warned, {} total\n",
        diags.len()
    ));
    out
}

/// Renders findings as a stable JSON document for CI.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!("\"rule\": {}, ", json_str(d.rule)));
        out.push_str(&format!("\"level\": {}, ", json_str(d.level.name())));
        out.push_str(&format!("\"crate\": {}, ", json_str(&d.crate_name)));
        out.push_str(&format!("\"file\": {}, ", json_str(&d.file)));
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"col\": {}, ", d.col));
        out.push_str(&format!("\"message\": {}, ", json_str(&d.message)));
        out.push_str(&format!("\"snippet\": {}, ", json_str(&d.snippet)));
        out.push_str(&format!("\"hint\": {}", json_str(&d.hint)));
        out.push('}');
    }
    let denies = diags.iter().filter(|d| d.level == Level::Deny).count();
    let warns = diags.iter().filter(|d| d.level == Level::Warn).count();
    out.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"deny\": {denies}, \"warn\": {warns}, \"total\": {}}}\n}}\n",
        diags.len()
    ));
    out
}

/// Minimal JSON string escaper (the only JSON we emit is our own).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn wrapped_justification_extends_coverage() {
        let l = lex(
            "// hh-lint: allow(float-eq): a justification long enough\n// to wrap onto a second comment line\nlet x = a == 0.0;\nlet y = b == 0.0;\n",
        );
        let allows = Allows::collect(&l.comments);
        assert!(allows.covers("float-eq", 3));
        assert!(!allows.covers("float-eq", 4));
    }

    #[test]
    fn allow_directive_parsing() {
        let l = lex(
            "// hh-lint: allow(float-eq): exact sentinel comparison\nlet x = a == 0.0;\n// hh-lint: allow(ambient-rng, wall-clock-in-sim)\n",
        );
        let allows = Allows::collect(&l.comments);
        assert!(allows.covers("float-eq", 1));
        assert!(allows.covers("float-eq", 2)); // line after the directive
        assert!(!allows.covers("float-eq", 3));
        assert!(allows.covers("ambient-rng", 3));
        assert!(allows.covers("wall-clock-in-sim", 4));
        assert!(!allows.covers("unwrap-in-hot-path", 3));
    }

    #[test]
    fn json_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_shape_is_parseable_by_eye() {
        let d = Diagnostic {
            rule: "float-eq",
            level: Level::Deny,
            crate_name: "hh-sim".into(),
            file: "crates/sim/src/stats.rs".into(),
            line: 3,
            col: 7,
            message: "m".into(),
            snippet: "s".into(),
            hint: "h".into(),
        };
        let json = render_json(&[d]);
        assert!(json.contains("\"deny\": 1"));
        assert!(json.contains("\"rule\": \"float-eq\""));
    }
}
