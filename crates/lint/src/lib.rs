//! hh-lint: a hand-rolled determinism & hot-path lint pass for the
//! HardHarvest workspace.
//!
//! The pipeline per file is: [`lexer::lex`] → [`imports::Imports`] +
//! [`ast::FileIndex`] + [`diag::Allows`] → [`rules::run_all`] → severity
//! and allow filtering. [`lint_workspace`] drives it over every crate
//! found by [`modwalk`]. No dependencies, no rustc internals: the linter
//! compiles everywhere the workspace does and runs in milliseconds, which
//! is what lets CI gate on it.
//!
//! The rule set targets the failure modes a simulator-reproduction repo
//! actually has: nondeterministic iteration order, wall-clock leakage,
//! ambient entropy, panics on hot paths, exact float comparison, untraced
//! state transitions and invariant-bypassing public fields. See
//! `DESIGN.md` §12 for the architecture rationale.

pub mod ast;
pub mod config;
pub mod diag;
pub mod imports;
pub mod lexer;
pub mod modwalk;
pub mod rules;

use std::io;
use std::path::Path;

use ast::FileIndex;
use config::{Config, Level};
use diag::{Allows, Diagnostic};
use imports::Imports;
use lexer::Tok;

/// Everything the rules need to know about one file, assembled once.
pub struct FileCtx<'a> {
    /// Package name of the owning crate.
    pub crate_name: &'a str,
    /// Path shown in diagnostics (workspace-relative, `/`-separated).
    pub display_path: &'a str,
    /// Source split into lines, for snippets.
    pub lines: Vec<&'a str>,
    /// The token stream.
    pub toks: &'a [Tok],
    /// Structural index (fn bodies, test ranges, structs, …).
    pub index: FileIndex,
    /// Use-tree expansion for name resolution.
    pub imports: Imports,
    /// Inline `hh-lint: allow(…)` directives.
    pub allows: Allows,
    /// Token ranges (inclusive) of `use` items, never flagged.
    use_ranges: Vec<(usize, usize)>,
    /// The active policy.
    pub config: &'a Config,
}

impl FileCtx<'_> {
    /// Effective level of `rule` for this file's crate.
    pub fn level(&self, rule: &'static str) -> Level {
        self.config.level(self.crate_name, rule)
    }

    /// Whether token `i` sits inside a `use` item.
    pub fn in_use_item(&self, i: usize) -> bool {
        self.use_ranges.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// Emits one finding at `tok` unless an inline allow covers it.
    pub fn emit(
        &self,
        out: &mut Vec<Diagnostic>,
        rule: &'static str,
        tok: &Tok,
        message: String,
        hint: String,
    ) {
        if self.allows.covers(rule, tok.line) {
            return;
        }
        let level = self.level(rule);
        if level == Level::Allow {
            return;
        }
        let snippet = self
            .lines
            .get(tok.line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default();
        out.push(Diagnostic {
            rule,
            level,
            crate_name: self.crate_name.to_string(),
            file: self.display_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet,
            hint,
        });
    }
}

/// Token ranges of `use` items (from the `use` keyword to its `;`).
fn use_item_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let at_item = toks[i].is_ident("use")
            && !(i > 0 && (toks[i - 1].is_punct("::") || toks[i - 1].is_punct(".")));
        if at_item {
            let start = i;
            while i < toks.len() && !toks[i].is_punct(";") {
                i += 1;
            }
            out.push((start, i.min(toks.len() - 1)));
        }
        i += 1;
    }
    out
}

/// Lints one file's source text. `display_path` appears in diagnostics;
/// `crate_name` selects the per-crate severity overrides.
pub fn lint_file(
    crate_name: &str,
    display_path: &str,
    src: &str,
    config: &Config,
) -> Vec<Diagnostic> {
    let lexed = lexer::lex(src);
    let ctx = FileCtx {
        crate_name,
        display_path,
        lines: src.lines().collect(),
        toks: &lexed.toks,
        index: FileIndex::build(&lexed.toks),
        imports: Imports::collect(&lexed.toks),
        allows: Allows::collect(&lexed.comments),
        use_ranges: use_item_ranges(&lexed.toks),
        config,
    };
    let mut out = Vec::new();
    rules::run_all(&ctx, &mut out);
    out
}

/// Lints every source file of every workspace crate under `root`.
/// Diagnostics come back sorted by `(file, line, col, rule)` so output is
/// byte-stable across runs and platforms.
pub fn lint_workspace(root: &Path, config: &Config) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for info in modwalk::discover(root)? {
        for path in modwalk::crate_files(&info) {
            let src = match std::fs::read_to_string(&path) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let display = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.extend(lint_file(&info.name, &display, &src, config));
        }
    }
    out.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn use_items_never_flagged() {
        let cfg = Config::corpus();
        let diags = lint_file(
            "hh-test",
            "x.rs",
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u64, u64> = HashMap::new(); let _ = m; }\n",
            &cfg,
        );
        assert!(diags.iter().all(|d| d.line != 1), "{diags:?}");
        assert_eq!(
            diags
                .iter()
                .filter(|d| d.rule == "nondeterministic-collection")
                .count(),
            2,
            "two usage sites on line 2: {diags:?}"
        );
    }

    #[test]
    fn inline_allow_suppresses() {
        let cfg = Config::corpus();
        let diags = lint_file(
            "hh-test",
            "x.rs",
            "fn f(a: f64) -> bool {\n    // hh-lint: allow(float-eq): sentinel check\n    a == 0.0\n}\n",
            &cfg,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn test_code_exempt() {
        let cfg = Config::corpus();
        let diags = lint_file(
            "hh-test",
            "x.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(1.0 == 1.0); }\n}\n",
            &cfg,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
