//! CLI driver: `hh-lint [--root <dir>] [--format human|json]`.
//!
//! Exit code 0 when no deny-level findings remain, 1 when any do, 2 on
//! usage or I/O errors — so CI can gate on the exit code while archiving
//! the JSON report.

use std::path::PathBuf;
use std::process::ExitCode;

use hh_lint::config::{Config, Level};
use hh_lint::diag::{render_human, render_json};

fn usage() -> ExitCode {
    eprintln!("usage: hh-lint [--root <workspace-dir>] [--format human|json]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("human");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--format" => match args.next() {
                Some(v) if v == "human" || v == "json" => format = v,
                _ => return usage(),
            },
            "--help" | "-h" => {
                println!(
                    "hh-lint: determinism & hot-path lint for the HardHarvest workspace\n\n\
                     options:\n  --root <dir>     workspace root (default: auto-detect)\n  \
                     --format <fmt>   human (default) or json\n\n\
                     rules: {}",
                    hh_lint::config::RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    // Auto-detect the workspace root: the manifest dir of this crate is
    // `<root>/crates/lint` when run via cargo; fall back to the cwd.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let config = Config::workspace();
    let diags = match hh_lint::lint_workspace(&root, &config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("hh-lint: failed to walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    match format.as_str() {
        "json" => print!("{}", render_json(&diags)),
        _ => print!("{}", render_human(&diags)),
    }

    if diags.iter().any(|d| d.level == Level::Deny) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
