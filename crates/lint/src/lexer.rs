//! A hand-rolled lexer for (the subset of) Rust this workspace uses.
//!
//! The lint rules operate on token streams, never raw text, so source text
//! inside string literals and comments can never produce findings. The
//! tricky cases are exactly the ones with their own corpus fixtures: raw
//! strings (`r#"…"#` with any number of `#`s), nested block comments,
//! lifetimes vs char literals (`'a` vs `'a'`), byte/raw-byte literals and
//! float literals (`1.`, `1e-9`, `1f64`) vs field/tuple access (`self.0`).
//!
//! Comments are not discarded: they are collected side-band (with their
//! line spans) because the `// hh-lint: allow(rule)` escape hatch lives in
//! them.

/// Token classification. Just enough structure for the rules; operators
/// that no rule cares about still lex correctly, as [`TokKind::Punct`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#ident` raw identifiers).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Integer literal, including `0x…`/`0o…`/`0b…` and suffixed forms.
    Int,
    /// Float literal: has a fraction, an exponent, or an `f32`/`f64` suffix.
    Float,
    /// String literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br"…"`.
    Str,
    /// Char literal `'x'` (including escapes) or byte literal `b'x'`.
    Char,
    /// Punctuation. Multi-character operators the rules must distinguish
    /// (`==`, `!=`, `<=`, `>=`, `=>`, `->`, `::`, `..`, `..=`, `&&`, `||`)
    /// are joined into one token; everything else is single-character.
    Punct,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text of the token, verbatim.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// Whether this token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Whether this token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// A comment (line or block, doc or plain), kept for allow-directives.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line where the comment starts.
    pub line: u32,
    /// 1-based line where the comment ends (same as `line` for `//`).
    pub end_line: u32,
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators joined into single tokens, longest first.
const JOINED: &[&str] = &[
    "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "..",
];

struct Cursor<'a> {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    src: &'a str,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.i).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes one file. Malformed input (unterminated literals) does not panic:
/// the lexer consumes to end-of-file and returns what it has — the linter
/// runs on code that `rustc` already accepted, so this is defensive only.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        src,
    };
    let _ = cur.src;
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek_at(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment { line, end_line: line, text });
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(ch) = cur.peek() {
                if ch == '/' && cur.peek_at(1) == Some('*') {
                    depth += 1;
                    text.push('/');
                    text.push('*');
                    cur.bump();
                    cur.bump();
                    continue;
                }
                if ch == '*' && cur.peek_at(1) == Some('/') {
                    depth -= 1;
                    text.push('*');
                    text.push('/');
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                    continue;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment { line, end_line: cur.line, text });
            continue;
        }
        // String-ish literals with optional b/r prefixes, and raw idents.
        if is_ident_start(c) {
            // Check for literal prefixes before consuming as identifier.
            if let Some(tok) = try_prefixed_literal(&mut cur, line, col) {
                out.toks.push(tok);
                continue;
            }
            let mut text = String::new();
            while let Some(ch) = cur.peek() {
                if is_ident_continue(ch) {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.toks.push(Tok { kind: TokKind::Ident, text, line, col });
            continue;
        }
        if c == '"' {
            out.toks.push(lex_string(&mut cur, line, col));
            continue;
        }
        if c == '\'' {
            out.toks.push(lex_quote(&mut cur, line, col));
            continue;
        }
        if c.is_ascii_digit() {
            out.toks.push(lex_number(&mut cur, line, col));
            continue;
        }
        // Punctuation: joined operators first, longest match wins.
        let mut joined = None;
        for op in JOINED {
            if op.chars().enumerate().all(|(k, oc)| cur.peek_at(k) == Some(oc)) {
                joined = Some(*op);
                break;
            }
        }
        if let Some(op) = joined {
            for _ in 0..op.len() {
                cur.bump();
            }
            out.toks.push(Tok { kind: TokKind::Punct, text: op.to_string(), line, col });
            continue;
        }
        cur.bump();
        out.toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line, col });
    }
    out
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` and raw identifiers
/// (`r#match`). Returns `None` when the `r`/`b` is an ordinary identifier
/// start (`resident`, `bound`, …).
fn try_prefixed_literal(cur: &mut Cursor<'_>, line: u32, col: u32) -> Option<Tok> {
    let c = cur.peek()?;
    let (raw_off, byte) = match c {
        'r' => (1usize, false),
        'b' => match cur.peek_at(1) {
            Some('\'') => {
                // Byte literal b'x'.
                cur.bump(); // b
                let mut t = lex_quote(cur, line, col);
                t.text.insert(0, 'b');
                t.kind = TokKind::Char;
                return Some(t);
            }
            Some('"') => {
                cur.bump(); // b
                let mut t = lex_string(cur, line, col);
                t.text.insert(0, 'b');
                return Some(t);
            }
            Some('r') => (2usize, true),
            _ => return None,
        },
        _ => return None,
    };
    // At this point chars[raw_off - 1] is the `r`. Count `#`s.
    let mut hashes = 0usize;
    while cur.peek_at(raw_off + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek_at(raw_off + hashes) {
        Some('"') => {
            // Raw string. Consume prefix, hashes and opening quote.
            for _ in 0..(raw_off + hashes + 1) {
                cur.bump();
            }
            let mut text = String::new();
            if byte {
                text.push('b');
            }
            text.push('r');
            for _ in 0..hashes {
                text.push('#');
            }
            text.push('"');
            // Scan for `"` followed by `hashes` `#`s.
            while let Some(ch) = cur.peek() {
                if ch == '"' {
                    let closed = (0..hashes).all(|k| cur.peek_at(1 + k) == Some('#'));
                    if closed {
                        text.push('"');
                        cur.bump();
                        for _ in 0..hashes {
                            text.push('#');
                            cur.bump();
                        }
                        break;
                    }
                }
                text.push(ch);
                cur.bump();
            }
            Some(Tok { kind: TokKind::Str, text, line, col })
        }
        Some(ch) if hashes == 1 && !byte && is_ident_start(ch) => {
            // Raw identifier r#ident.
            cur.bump(); // r
            cur.bump(); // #
            let mut text = String::from("r#");
            while let Some(c2) = cur.peek() {
                if is_ident_continue(c2) {
                    text.push(c2);
                    cur.bump();
                } else {
                    break;
                }
            }
            Some(Tok { kind: TokKind::Ident, text, line, col })
        }
        _ => None,
    }
}

/// An ordinary `"…"` string with escape handling.
fn lex_string(cur: &mut Cursor<'_>, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    text.push('"');
    cur.bump(); // opening quote
    while let Some(ch) = cur.peek() {
        if ch == '\\' {
            text.push(ch);
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            continue;
        }
        text.push(ch);
        cur.bump();
        if ch == '"' {
            break;
        }
    }
    Tok { kind: TokKind::Str, text, line, col }
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime) from `'\n'`.
fn lex_quote(cur: &mut Cursor<'_>, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    text.push('\'');
    cur.bump(); // opening quote
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume through the closing quote.
            text.push('\\');
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
            }
            while let Some(ch) = cur.bump() {
                text.push(ch);
                if ch == '\'' {
                    break;
                }
            }
            Tok { kind: TokKind::Char, text, line, col }
        }
        Some(c1) if is_ident_start(c1) => {
            if cur.peek_at(1) == Some('\'') {
                // 'a' — single-character char literal.
                text.push(c1);
                cur.bump();
                text.push('\'');
                cur.bump();
                Tok { kind: TokKind::Char, text, line, col }
            } else {
                // Lifetime: 'a, 'static, … (no closing quote).
                while let Some(ch) = cur.peek() {
                    if is_ident_continue(ch) {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                Tok { kind: TokKind::Lifetime, text, line, col }
            }
        }
        Some(c1) => {
            // Non-identifier char literal: '(' , '0' handled above? digits
            // are not ident-start, so they land here: '0' etc.
            text.push(c1);
            cur.bump();
            if cur.peek() == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            Tok { kind: TokKind::Char, text, line, col }
        }
        None => Tok { kind: TokKind::Char, text, line, col },
    }
}

/// Number literal; classifies int vs float (fraction, exponent or f-suffix).
fn lex_number(cur: &mut Cursor<'_>, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    let mut float = false;
    // Radix prefixes are always integers (hex floats do not exist in Rust).
    if cur.peek() == Some('0') {
        if let Some(p) = cur.peek_at(1) {
            if matches!(p, 'x' | 'X' | 'o' | 'O' | 'b' | 'B') {
                text.push('0');
                cur.bump();
                text.push(p);
                cur.bump();
                while let Some(ch) = cur.peek() {
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        text.push(ch);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                return Tok { kind: TokKind::Int, text, line, col };
            }
        }
    }
    let digits = |text: &mut String, cur: &mut Cursor<'_>| {
        while let Some(ch) = cur.peek() {
            if ch.is_ascii_digit() || ch == '_' {
                text.push(ch);
                cur.bump();
            } else {
                break;
            }
        }
    };
    digits(&mut text, cur);
    // Fraction: `1.5`, or trailing-dot `1.` — but not `1..2` (range) and
    // not `1.max(2)` (method call on an integer literal).
    if cur.peek() == Some('.') {
        let after = cur.peek_at(1);
        let fraction = match after {
            Some(c2) if c2.is_ascii_digit() => true,
            Some('.') => false,
            Some(c2) if is_ident_start(c2) => false,
            _ => true, // `1.` at end of expression
        };
        if fraction {
            float = true;
            text.push('.');
            cur.bump();
            digits(&mut text, cur);
        }
    }
    // Exponent: 1e9, 2.6e-7.
    if matches!(cur.peek(), Some('e' | 'E')) {
        let (sign, first_digit) = match cur.peek_at(1) {
            Some('+' | '-') => (true, cur.peek_at(2)),
            other => (false, other),
        };
        if first_digit.is_some_and(|d| d.is_ascii_digit()) {
            float = true;
            text.push(cur.bump().expect("peeked e"));
            if sign {
                text.push(cur.bump().expect("peeked sign"));
            }
            digits(&mut text, cur);
        }
    }
    // Type suffix: 1u64, 1f64, 1.0f32.
    let mut suffix = String::new();
    while let Some(ch) = cur.peek() {
        if is_ident_continue(ch) {
            suffix.push(ch);
            cur.bump();
        } else {
            break;
        }
    }
    if suffix == "f32" || suffix == "f64" {
        float = true;
    }
    text.push_str(&suffix);
    Tok {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = kinds("let x = a::b(y);");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Punct && s == "::"));
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let l = lex(r####"let s = r#"HashMap::new() /* not a comment "quote" "#; x"####);
        assert_eq!(
            l.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
        // Nothing inside the raw string leaks out as tokens.
        assert!(!l.toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(l.toks.iter().any(|t| t.is_ident("x")));
        assert!(l.comments.is_empty());
    }

    #[test]
    fn raw_string_with_more_hashes() {
        let src = "r##\"inner \"# still inside\"##; done";
        let l = lex(src);
        assert!(l.toks[0].text.starts_with("r##\""));
        assert!(l.toks.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still outer */ b");
        let names: Vec<_> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'a'; let e = '\\''; let s = 'static_x; }");
        let lifetimes: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static_x"]);
        let chars: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, ["'a'", "'\\''"]);
    }

    #[test]
    fn byte_literals() {
        let l = lex(r#"let a = b'x'; let s = b"bytes"; let r = br"raw";"#);
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Char && t.text == "b'x'"));
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn raw_identifier() {
        let l = lex("let r#match = 1;");
        assert!(l.toks.iter().any(|t| t.is_ident("r#match")));
    }

    #[test]
    fn numbers_int_vs_float() {
        let l = lex("0xFF 1_000 1.5 2.6e-7 1e9 1f64 3u32 self.0 1..4 7.max(2)");
        let f: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Float)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(f, ["1.5", "2.6e-7", "1e9", "1f64"]);
        // Tuple access and ranges stay integers.
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Int && t.text == "0"));
        assert!(l.toks.iter().any(|t| t.is_punct("..")));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Int && t.text == "7"));
    }

    #[test]
    fn joined_operators() {
        let l = lex("a == b != c <= d >= e => f -> g ..= h && i || j");
        let ops: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(ops, ["==", "!=", "<=", ">=", "=>", "->", "..=", "&&", "||"]);
    }

    #[test]
    fn comments_carry_lines() {
        let l = lex("x\n// hh-lint: allow(float-eq)\ny /* b\nc */ z");
        assert_eq!(l.comments[0].line, 2);
        assert_eq!(l.comments[1].line, 3);
        assert_eq!(l.comments[1].end_line, 4);
    }

    #[test]
    fn doc_comments_are_comments() {
        let l = lex("/// HashMap in docs\nfn f() {}");
        assert!(!l.toks.iter().any(|t| t.is_ident("HashMap")));
        assert_eq!(l.comments.len(), 1);
    }
}
