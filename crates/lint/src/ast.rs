//! Item-level structure recovered from the token stream: delimiter
//! matching, attributes, function spans, `#[cfg(test)]` regions and
//! `debug_assert!` argument ranges.
//!
//! This is deliberately not a full parser. The rules need to know four
//! things about any token: which function body it is in, whether it is
//! test-only code, whether it sits inside a `debug_assert!` invocation,
//! and which attributes decorate the enclosing item. A delimiter-matching
//! pass plus a few targeted scans recover all of that without committing
//! to a grammar.

use crate::lexer::{Tok, TokKind};

/// A function definition found in the token stream.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token range `[body_open, body_close]` of the `{ … }` body
    /// (inclusive of both braces). `None` for bodyless trait signatures.
    pub body: Option<(usize, usize)>,
    /// Whether any `#[inline…]` attribute decorates the function.
    pub inline: bool,
    /// Whether a `#[test]` attribute decorates the function.
    pub test: bool,
}

/// A struct definition with a brace body (unit/tuple structs are skipped —
/// the pub-field rule only cares about named fields).
#[derive(Debug, Clone)]
pub struct StructSpan {
    /// Struct name.
    pub name: String,
    /// Token range of the `{ … }` field block, inclusive.
    pub body: (usize, usize),
}

/// Structural index over one file's token stream.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// For each token index holding `{`/`(`/`[`, the index of its matching
    /// closer (and vice versa). `usize::MAX` for unmatched (malformed).
    pub matching: Vec<usize>,
    /// Token ranges (inclusive) that are test-only: bodies of
    /// `#[cfg(test)] mod … { }` and of `#[test] fn … { }`.
    pub test_ranges: Vec<(usize, usize)>,
    /// Token ranges (inclusive) covering the arguments of
    /// `debug_assert*!(…)` invocations.
    pub debug_ranges: Vec<(usize, usize)>,
    /// Every function definition.
    pub fns: Vec<FnSpan>,
    /// Every braced struct definition.
    pub structs: Vec<StructSpan>,
}

impl FileIndex {
    /// Builds the index for a token stream.
    pub fn build(toks: &[Tok]) -> FileIndex {
        let mut idx = FileIndex {
            matching: vec![usize::MAX; toks.len()],
            ..FileIndex::default()
        };
        idx.match_delims(toks);
        let attrs = AttrIndex::build(toks, &idx);
        idx.find_fns(toks, &attrs);
        idx.find_structs(toks, &attrs);
        idx.find_test_ranges(toks, &attrs);
        idx.find_debug_ranges(toks);
        idx
    }

    fn match_delims(&mut self, toks: &[Tok]) {
        let mut stack: Vec<(usize, &str)> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "{" | "(" | "[" => stack.push((i, t.text.as_str())),
                "}" | ")" | "]" => {
                    let want = match t.text.as_str() {
                        "}" => "{",
                        ")" => "(",
                        _ => "[",
                    };
                    if let Some(&(open, kind)) = stack.last() {
                        if kind == want {
                            stack.pop();
                            self.matching[open] = i;
                            self.matching[i] = open;
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// The inclusive token range of the delimiter group opening at `open`.
    fn group(&self, open: usize) -> Option<(usize, usize)> {
        let close = *self.matching.get(open)?;
        (close != usize::MAX).then_some((open, close))
    }

    fn find_fns(&mut self, toks: &[Tok], attrs: &AttrIndex) {
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("fn")
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident)
            {
                let name = toks[i + 1].text.clone();
                // Body: first `{` at or after the signature, unless a `;`
                // (trait method declaration) comes first. Parenthesised and
                // bracketed groups in the signature (params, defaults,
                // slices in const generics) are skipped wholesale so a `;`
                // inside them cannot end the search early.
                let mut j = i + 2;
                let mut body = None;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct("(") || t.is_punct("[") {
                        if let Some((_, close)) = self.group(j) {
                            j = close + 1;
                            continue;
                        }
                    }
                    if t.is_punct(";") {
                        break;
                    }
                    if t.is_punct("{") {
                        body = self.group(j);
                        break;
                    }
                    j += 1;
                }
                let item_attrs = attrs.of(i);
                self.fns.push(FnSpan {
                    name,
                    fn_idx: i,
                    body,
                    inline: item_attrs.iter().any(|a| a.contains_ident("inline")),
                    test: item_attrs.iter().any(|a| a.is_exactly("test")),
                });
                i = j.max(i + 2);
                continue;
            }
            i += 1;
        }
    }

    fn find_structs(&mut self, toks: &[Tok], _attrs: &AttrIndex) {
        for i in 0..toks.len() {
            if !toks[i].is_ident("struct") {
                continue;
            }
            let Some(name_tok) = toks.get(i + 1) else { continue };
            if name_tok.kind != TokKind::Ident {
                continue;
            }
            // Scan past generics/where-clause to the defining `{`; a `;` or
            // `(` first means unit/tuple struct.
            let mut j = i + 2;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct(";") || t.is_punct("(") {
                    break;
                }
                if t.is_punct("{") {
                    if let Some(body) = self.group(j) {
                        self.structs.push(StructSpan {
                            name: name_tok.text.clone(),
                            body,
                        });
                    }
                    break;
                }
                j += 1;
            }
        }
    }

    fn find_test_ranges(&mut self, toks: &[Tok], attrs: &AttrIndex) {
        // #[cfg(test)] mod name { … }
        for (item_idx, item_attrs) in &attrs.by_item {
            let is_cfg_test = item_attrs
                .iter()
                .any(|a| a.contains_ident("cfg") && a.contains_ident("test"));
            if is_cfg_test && toks[*item_idx].is_ident("mod") {
                // Find the module's opening brace (inline mod only; an
                // out-of-line `mod x;` has no body here).
                let mut j = item_idx + 1;
                while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct("{") {
                    if let Some(r) = self.group(j) {
                        self.test_ranges.push(r);
                    }
                }
            }
        }
        // #[test] fn … { … }
        let test_fn_bodies: Vec<(usize, usize)> = self
            .fns
            .iter()
            .filter(|f| f.test)
            .filter_map(|f| f.body)
            .collect();
        self.test_ranges.extend(test_fn_bodies);
    }

    fn find_debug_ranges(&mut self, toks: &[Tok]) {
        for i in 0..toks.len() {
            if toks[i].kind == TokKind::Ident
                && toks[i].text.starts_with("debug_assert")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct("(") || t.is_punct("["))
            {
                if let Some(r) = self.group(i + 2) {
                    self.debug_ranges.push(r);
                }
            }
        }
    }

    /// Whether token `i` lies in test-only code.
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// Whether token `i` lies inside a `debug_assert*!` invocation.
    pub fn in_debug_assert(&self, i: usize) -> bool {
        self.debug_ranges.iter().any(|&(a, b)| a <= i && i <= b)
    }

    /// The innermost function whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(a, b)| a <= i && i <= b))
            .min_by_key(|f| {
                let (a, b) = f.body.expect("filtered");
                b - a
            })
    }
}

/// One `#[…]` attribute as raw tokens.
#[derive(Debug, Clone)]
pub struct Attr {
    idents: Vec<String>,
}

impl Attr {
    /// Whether any identifier inside the attribute equals `name`.
    pub fn contains_ident(&self, name: &str) -> bool {
        self.idents.iter().any(|s| s == name)
    }

    /// Whether the attribute is exactly `#[name]`.
    pub fn is_exactly(&self, name: &str) -> bool {
        self.idents.len() == 1 && self.idents[0] == name
    }
}

/// Attributes grouped by the token index of the item they decorate.
#[derive(Debug, Default)]
struct AttrIndex {
    by_item: Vec<(usize, Vec<Attr>)>,
}

impl AttrIndex {
    fn build(toks: &[Tok], idx: &FileIndex) -> AttrIndex {
        let mut out = AttrIndex::default();
        let mut pending: Vec<Attr> = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            let t = &toks[i];
            if t.is_punct("#") && toks.get(i + 1).is_some_and(|n| n.is_punct("[")) {
                if let Some((open, close)) = idx.group(i + 1).map(|(a, b)| (a, b)) {
                    let idents = toks[open + 1..close]
                        .iter()
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone())
                        .collect();
                    pending.push(Attr { idents });
                    i = close + 1;
                    continue;
                }
            }
            // Inner attributes `#![…]` reset nothing and attach to nothing
            // we track; skip the `!` so the group is not misread.
            if t.is_punct("#") && toks.get(i + 1).is_some_and(|n| n.is_punct("!")) {
                if let Some((_, close)) = idx.group(i + 2) {
                    i = close + 1;
                    continue;
                }
            }
            if !pending.is_empty() && t.kind == TokKind::Ident {
                // Attach pending attributes to the first item-ish keyword.
                if matches!(
                    t.text.as_str(),
                    "fn" | "mod" | "struct" | "enum" | "impl" | "trait" | "use" | "static"
                        | "const" | "type" | "union" | "macro_rules"
                ) {
                    out.by_item.push((i, std::mem::take(&mut pending)));
                } else if matches!(t.text.as_str(), "pub" | "unsafe" | "async" | "extern") {
                    // Visibility / qualifiers: keep scanning, attributes
                    // still pending for the real keyword.
                } else {
                    // Expression attribute (e.g. on a match arm): drop.
                    pending.clear();
                }
            }
            i += 1;
        }
        out
    }

    fn of(&self, item_idx: usize) -> &[Attr] {
        self.by_item
            .iter()
            .find(|(i, _)| *i == item_idx)
            .map(|(_, a)| a.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn fn_bodies_and_inline() {
        let l = lex("#[inline]\npub fn fast(x: u64) -> u64 { x + 1 }\nfn plain() {}");
        let idx = FileIndex::build(&l.toks);
        assert_eq!(idx.fns.len(), 2);
        assert!(idx.fns[0].inline);
        assert_eq!(idx.fns[0].name, "fast");
        assert!(!idx.fns[1].inline);
        assert!(idx.fns[0].body.is_some());
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let l = lex("trait T { fn sig(&self) -> u64; fn with_default(&self) { } }");
        let idx = FileIndex::build(&l.toks);
        let sig = idx.fns.iter().find(|f| f.name == "sig").unwrap();
        assert!(sig.body.is_none());
        let def = idx.fns.iter().find(|f| f.name == "with_default").unwrap();
        assert!(def.body.is_some());
    }

    #[test]
    fn cfg_test_mod_is_a_test_range() {
        let l = lex("fn real() {}\n#[cfg(test)]\nmod tests { fn helper() {} }");
        let idx = FileIndex::build(&l.toks);
        let helper = idx.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(idx.in_test(helper.fn_idx));
        let real = idx.fns.iter().find(|f| f.name == "real").unwrap();
        assert!(!idx.in_test(real.fn_idx));
    }

    #[test]
    fn test_attr_fn_is_a_test_range() {
        let l = lex("#[test]\nfn check() { body(); }");
        let idx = FileIndex::build(&l.toks);
        let (a, b) = idx.fns[0].body.unwrap();
        assert!(idx.in_test((a + b) / 2));
    }

    #[test]
    fn debug_assert_args_tracked() {
        let l = lex("fn f() { debug_assert!(x.unwrap() > 0); y.unwrap(); }");
        let idx = FileIndex::build(&l.toks);
        let unwraps: Vec<usize> = l
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(idx.in_debug_assert(unwraps[0]));
        assert!(!idx.in_debug_assert(unwraps[1]));
    }

    #[test]
    fn structs_with_fields_found() {
        let l = lex("pub struct A { pub x: u64 }\nstruct Unit;\nstruct Tup(u64);");
        let idx = FileIndex::build(&l.toks);
        assert_eq!(idx.structs.len(), 1);
        assert_eq!(idx.structs[0].name, "A");
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let l = lex("fn outer() { fn inner() { target(); } }");
        let idx = FileIndex::build(&l.toks);
        let target = l.toks.iter().position(|t| t.is_ident("target")).unwrap();
        assert_eq!(idx.enclosing_fn(target).unwrap().name, "inner");
    }
}
