//! Use-tree expansion: maps every name a `use` item brings into scope to
//! its full path, so the rules can resolve a bare `HashMap` back to
//! `std::collections::HashMap` (or to a local type that merely shares the
//! name).

use std::collections::BTreeMap;

use crate::lexer::{Tok, TokKind};

/// The imports of one file (module-level scoping is ignored: a name
/// imported anywhere in the file counts for the whole file, which
/// over-approximates scope but never misses a real import).
#[derive(Debug, Default)]
pub struct Imports {
    /// Imported name (possibly an `as` rename) → full path.
    pub names: BTreeMap<String, String>,
    /// Prefixes of glob imports (`use a::b::*` stores `a::b`).
    pub globs: Vec<String>,
}

impl Imports {
    /// Collects every `use` item in the token stream.
    pub fn collect(toks: &[Tok]) -> Imports {
        let mut imports = Imports::default();
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("use") && !prev_is_path(toks, i) {
                // Gather the tokens of this use item up to `;`.
                let start = i + 1;
                let mut j = start;
                while j < toks.len() && !toks[j].is_punct(";") {
                    j += 1;
                }
                expand_tree(&toks[start..j], "", &mut imports);
                i = j + 1;
                continue;
            }
            i += 1;
        }
        imports
    }

    /// Resolves a path whose textual first segment is `first` to a full
    /// path: imported names expand, known roots (`std`, `core`, `alloc`,
    /// `crate`, `self`, `super`, or an external crate name) pass through.
    pub fn resolve(&self, path: &str) -> String {
        let first = path.split("::").next().unwrap_or(path);
        match self.names.get(first) {
            Some(full) if first == path => full.clone(),
            Some(full) => {
                let rest = &path[first.len() + 2..];
                format!("{full}::{rest}")
            }
            None => path.to_string(),
        }
    }
}

/// `use` can legally appear only at item position; a `use` preceded by `::`
/// or `.` would be a path segment / method named use (impossible, but the
/// check is cheap).
fn prev_is_path(toks: &[Tok], i: usize) -> bool {
    i > 0 && (toks[i - 1].is_punct("::") || toks[i - 1].is_punct("."))
}

/// Recursively expands one use-tree. `prefix` is the already-consumed path
/// (no trailing `::`).
fn expand_tree(toks: &[Tok], prefix: &str, out: &mut Imports) {
    // Split the tree at top-level commas (only meaningful inside braces,
    // where the caller hands us the brace contents).
    let mut depth = 0usize;
    let mut part_start = 0usize;
    let mut parts: Vec<&[Tok]> = Vec::new();
    for (k, t) in toks.iter().enumerate() {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(",") && depth == 0 {
            parts.push(&toks[part_start..k]);
            part_start = k + 1;
        }
    }
    parts.push(&toks[part_start..]);

    for part in parts {
        expand_single(part, prefix, out);
    }
}

/// Expands one comma-free use-tree entry.
fn expand_single(toks: &[Tok], prefix: &str, out: &mut Imports) {
    // Walk leading `pub`, `pub(crate)` etc. (visibility on `pub use`).
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("pub") {
            i += 1;
            if toks.get(i).is_some_and(|t| t.is_punct("(")) {
                while i < toks.len() && !toks[i].is_punct(")") {
                    i += 1;
                }
                i += 1;
            }
            continue;
        }
        break;
    }
    let mut path = prefix.to_string();
    let mut last_segment = String::new();
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            if t.text == "as" {
                // Rename: next ident is the local name.
                if let Some(name) = toks.get(i + 1) {
                    if name.text != "_" {
                        out.names.insert(name.text.clone(), path.clone());
                    }
                }
                return;
            }
            last_segment = t.text.clone();
            if !path.is_empty() {
                path.push_str("::");
            }
            path.push_str(&t.text);
            i += 1;
            continue;
        }
        if t.is_punct("::") {
            i += 1;
            continue;
        }
        if t.is_punct("*") {
            out.globs.push(path.trim_end_matches("::").to_string());
            return;
        }
        if t.is_punct("{") {
            // Find the matching close within this slice.
            let mut depth = 1usize;
            let mut k = i + 1;
            while k < toks.len() && depth > 0 {
                if toks[k].is_punct("{") {
                    depth += 1;
                } else if toks[k].is_punct("}") {
                    depth -= 1;
                }
                k += 1;
            }
            expand_tree(&toks[i + 1..k.saturating_sub(1)], &path, out);
            return;
        }
        // Anything else (stray punctuation): stop.
        break;
    }
    if !last_segment.is_empty() {
        if last_segment == "self" {
            // `use a::b::{self}` imports `b`.
            let trimmed = path.trim_end_matches("::self");
            if let Some(name) = trimmed.rsplit("::").next() {
                out.names.insert(name.to_string(), trimmed.to_string());
            }
        } else {
            out.names.insert(last_segment, path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn imports(src: &str) -> Imports {
        Imports::collect(&lex(src).toks)
    }

    #[test]
    fn simple_use() {
        let im = imports("use std::collections::HashMap;");
        assert_eq!(im.names["HashMap"], "std::collections::HashMap");
    }

    #[test]
    fn nested_groups_and_renames() {
        let im = imports("use std::collections::{HashMap, BTreeMap as Ordered, hash_map::Entry};");
        assert_eq!(im.names["HashMap"], "std::collections::HashMap");
        assert_eq!(im.names["Ordered"], "std::collections::BTreeMap");
        assert_eq!(im.names["Entry"], "std::collections::hash_map::Entry");
    }

    #[test]
    fn globs_recorded() {
        let im = imports("use hh_sim::stats::*;");
        assert_eq!(im.globs, ["hh_sim::stats"]);
    }

    #[test]
    fn self_in_group() {
        let im = imports("use std::time::{self, Instant};");
        assert_eq!(im.names["Instant"], "std::time::Instant");
        assert_eq!(im.names["time"], "std::time");
    }

    #[test]
    fn pub_use_counts() {
        let im = imports("pub use crate::runplan::RunPlan;");
        assert_eq!(im.names["RunPlan"], "crate::runplan::RunPlan");
    }

    #[test]
    fn resolve_extends_paths() {
        let im = imports("use std::time::Instant;");
        assert_eq!(im.resolve("Instant"), "std::time::Instant");
        assert_eq!(im.resolve("Instant::now"), "std::time::Instant::now");
        assert_eq!(im.resolve("std::time::Instant"), "std::time::Instant");
    }

    #[test]
    fn multiple_items_one_line() {
        let im = imports("use a::B; use c::{D, E};");
        assert_eq!(im.names.len(), 3);
    }
}
