//! Lint policy: which rules run at which severity in which crate, plus the
//! rule-specific knob lists (hot modules, transition triggers, oracle
//! types).
//!
//! The workspace policy is code, not a config file, so that changing it is
//! a reviewed diff like any other invariant change.

use std::collections::BTreeMap;

/// Severity of a rule in a given crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Rule does not run / findings are dropped.
    Allow,
    /// Reported, does not fail the build.
    Warn,
    /// Reported and fails the lint run (CI gate).
    Deny,
}

impl Level {
    /// Lowercase name, as printed in diagnostics and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Level::Allow => "allow",
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

/// Stable identifiers of every rule the engine ships.
pub const RULES: &[&str] = &[
    "nondeterministic-collection",
    "wall-clock-in-sim",
    "ambient-rng",
    "unwrap-in-hot-path",
    "float-eq",
    "untraced-transition",
    "pub-field-in-oracle-type",
];

/// The full lint policy.
#[derive(Debug, Clone)]
pub struct Config {
    /// Default level per rule.
    pub default_levels: BTreeMap<&'static str, Level>,
    /// `(crate, rule)` overrides of the default level.
    pub crate_overrides: BTreeMap<(String, &'static str), Level>,
    /// File-name suffixes of known hot modules (`unwrap-in-hot-path`
    /// applies to these files in full, plus every `#[inline]` function
    /// anywhere).
    pub hot_modules: Vec<String>,
    /// Method names whose call marks a function as performing a traced
    /// sim-state transition (`untraced-transition`).
    pub transition_triggers: Vec<String>,
    /// Macro names counting as trace evidence inside such a function.
    pub trace_macros: Vec<String>,
    /// Helper method names counting as trace evidence (they contain the
    /// actual `trace_event!` calls).
    pub trace_helpers: Vec<String>,
    /// Type names whose struct declarations must not expose `pub` fields
    /// (`pub-field-in-oracle-type`): the types the hh-check oracle diffs,
    /// whose constructors establish invariants.
    pub oracle_types: Vec<String>,
}

impl Config {
    /// The workspace policy (what CI enforces).
    pub fn workspace() -> Config {
        let mut default_levels = BTreeMap::new();
        for rule in RULES {
            default_levels.insert(*rule, Level::Deny);
        }
        // `untraced-transition` names hh-server's transition machinery;
        // other crates have no notion of "core lend/reclaim", so the rule
        // is opt-in per crate.
        default_levels.insert("untraced-transition", Level::Allow);

        let mut crate_overrides = BTreeMap::new();
        // The bench harness *measures host wall time by design* (figure
        // timings, perfsmoke); simulated time never flows from it.
        crate_overrides.insert(
            ("hh-bench".to_string(), "wall-clock-in-sim"),
            Level::Allow,
        );
        // The server simulation owns every lend/reclaim/flush/enqueue
        // transition the trace must witness.
        crate_overrides.insert(
            ("hh-server".to_string(), "untraced-transition"),
            Level::Deny,
        );

        Config {
            default_levels,
            crate_overrides,
            hot_modules: vec![
                "mem/src/cache.rs".into(),
                "hwqueue/src/subqueue.rs".into(),
                "core/src/runplan.rs".into(),
            ],
            transition_triggers: vec![
                "lend_core".into(),
                "reclaim_core".into(),
                "flush_harvest_region".into(),
                "flush_all".into(),
                "enqueue".into(),
            ],
            trace_macros: vec![
                "trace_event".into(),
                "trace_count".into(),
                "trace_gauge".into(),
                "trace_hist".into(),
            ],
            trace_helpers: vec!["note_flush".into(), "note_reassign".into()],
            oracle_types: vec![
                // Diffed by hh-check's diff_cache / diff_samples /
                // diff_cluster; each has an invariant-checking constructor
                // that public mutable fields would bypass.
                "SetAssocCache".into(),
                "Samples".into(),
                "Subqueue".into(),
                "ClusterMetrics".into(),
            ],
        }
    }

    /// Policy for the fixture corpus: every rule denies everywhere, the
    /// fixture file itself counts as a hot module and as a transition
    /// crate, so each rule can be exercised from a single file.
    pub fn corpus() -> Config {
        let mut cfg = Config::workspace();
        for rule in RULES {
            cfg.default_levels.insert(*rule, Level::Deny);
        }
        cfg.crate_overrides.clear();
        cfg.hot_modules.push("hot_mod.rs".into());
        cfg
    }

    /// Effective level of `rule` in `crate_name`.
    pub fn level(&self, crate_name: &str, rule: &'static str) -> Level {
        self.crate_overrides
            .get(&(crate_name.to_string(), rule))
            .copied()
            .unwrap_or_else(|| {
                self.default_levels.get(rule).copied().unwrap_or(Level::Allow)
            })
    }

    /// Whether `path` (display path, `/`-separated) is a known hot module.
    pub fn is_hot_module(&self, path: &str) -> bool {
        self.hot_modules.iter().any(|m| path.ends_with(m.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_deny_everything_but_transitions() {
        let cfg = Config::workspace();
        assert_eq!(cfg.level("hh-server", "nondeterministic-collection"), Level::Deny);
        assert_eq!(cfg.level("hh-mem", "float-eq"), Level::Deny);
        assert_eq!(cfg.level("hh-mem", "untraced-transition"), Level::Allow);
        assert_eq!(cfg.level("hh-server", "untraced-transition"), Level::Deny);
        assert_eq!(cfg.level("hh-bench", "wall-clock-in-sim"), Level::Allow);
        assert_eq!(cfg.level("hh-trace", "wall-clock-in-sim"), Level::Deny);
    }

    #[test]
    fn hot_module_matching_is_suffix_based() {
        let cfg = Config::workspace();
        assert!(cfg.is_hot_module("crates/mem/src/cache.rs"));
        assert!(!cfg.is_hot_module("crates/mem/src/belady.rs"));
    }
}
