//! The seven rules. Each rule scans one file's token stream through the
//! [`FileCtx`] lens and emits findings; severity filtering and inline
//! allow-directives are applied centrally by [`crate::lint_file`].
//!
//! Scope conventions shared by the rules:
//!
//! * Test-only code (`#[cfg(test)] mod`, `#[test] fn`) is exempt from every
//!   rule except `pub-field-in-oracle-type` — tests legitimately assert
//!   bit-exact float equality, poke privates and build throwaway state.
//!   (Struct declarations do not occur in test mods in this workspace, so
//!   the exception is theoretical.)
//! * `use` items themselves are never flagged — findings point at usage
//!   sites, which is where the fix happens.
//! * Name resolution is the lexical layer from [`crate::imports`]: a bare
//!   name resolves through the file's use-tree; a name the file neither
//!   imports nor defines locally is treated as the std type of that name
//!   (conservative: `HashMap` that compiles without an import came from a
//!   glob or prelude-like path).

use crate::config::Level;
use crate::diag::Diagnostic;
use crate::lexer::TokKind;
use crate::FileCtx;

/// Runs every rule over one file.
pub fn run_all(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    nondeterministic_collection(ctx, out);
    wall_clock_in_sim(ctx, out);
    ambient_rng(ctx, out);
    unwrap_in_hot_path(ctx, out);
    float_eq(ctx, out);
    untraced_transition(ctx, out);
    pub_field_in_oracle_type(ctx, out);
}

/// One path expression found in the token stream, after import
/// resolution. `Instant::now()` under `use std::time::Instant as Clock`
/// (written `Clock::now()`) resolves to `["std","time","Instant","now"]`.
struct PathUse {
    /// Token index of the path's first segment (where findings point).
    start: usize,
    /// Segments of the resolved path.
    resolved: Vec<String>,
    /// No import matched: the path is exactly as written.
    unresolved: bool,
    /// The path is one bare identifier (candidate for local shadowing).
    single: bool,
}

/// Collects every path expression outside `use` items and test code.
/// A path starts at an identifier not preceded by `::` or `.` (so method
/// and field names never start one, while `collect::<HashMap<_, _>>()`
/// still yields `HashMap` as its own path inside the turbofish).
fn path_uses(ctx: &FileCtx<'_>) -> Vec<PathUse> {
    let toks = ctx.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        if i > 0 && (toks[i - 1].is_punct("::") || toks[i - 1].is_punct(".")) {
            continue;
        }
        if ctx.in_use_item(i) || ctx.index.in_test(i) {
            continue;
        }
        let mut full = t.text.clone();
        let mut j = i;
        while toks.get(j + 1).is_some_and(|p| p.is_punct("::"))
            && toks.get(j + 2).is_some_and(|n| n.kind == TokKind::Ident)
        {
            full.push_str("::");
            full.push_str(&toks[j + 2].text);
            j += 2;
        }
        let resolved = ctx.imports.resolve(&full);
        out.push(PathUse {
            start: i,
            unresolved: resolved == full,
            single: j == i,
            resolved: resolved.split("::").map(str::to_string).collect(),
        });
    }
    out
}

impl PathUse {
    fn contains(&self, seg: &str) -> bool {
        self.resolved.iter().any(|s| s == seg)
    }

    fn first(&self) -> &str {
        self.resolved.first().map(String::as_str).unwrap_or("")
    }
}

/// Whether the file itself declares a struct/enum-free type of this name
/// (only structs are indexed; good enough for shadowing detection).
fn locally_defined(ctx: &FileCtx<'_>, name: &str) -> bool {
    ctx.index.structs.iter().any(|s| s.name == name)
}

/// Rule 1: `HashMap`/`HashSet` in sim-visible state. Their iteration order
/// is randomized per process (`RandomState`), so any order-dependent use
/// breaks the bit-exact determinism the figure tables rely on.
fn nondeterministic_collection(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.level("nondeterministic-collection") == Level::Allow {
        return;
    }
    for p in path_uses(ctx) {
        let Some(name) = ["HashMap", "HashSet"].iter().find(|n| p.contains(n)) else {
            continue;
        };
        let known_hash = (p.first() == "std" && p.contains("collections"))
            || p.first() == "hashbrown";
        if !(known_hash || p.unresolved) {
            continue;
        }
        if p.single && locally_defined(ctx, name) {
            continue;
        }
        let ordered = if *name == "HashMap" { "BTreeMap" } else { "BTreeSet" };
        ctx.emit(
            out,
            "nondeterministic-collection",
            &ctx.toks[p.start],
            format!("`{name}` in sim-visible state has nondeterministic iteration order"),
            format!(
                "use `std::collections::{ordered}` (or an FNV/index map with insertion order) so replays and worker counts cannot reorder state"
            ),
        );
    }
}

/// Rule 2: host wall-clock (`Instant`, `SystemTime`) outside the exec-span
/// collector and the bench harness. Wall time leaking into simulated time
/// makes runs irreproducible.
fn wall_clock_in_sim(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.level("wall-clock-in-sim") == Level::Allow {
        return;
    }
    for p in path_uses(ctx) {
        let Some(name) = ["Instant", "SystemTime"].iter().find(|n| p.contains(n)) else {
            continue;
        };
        let known_clock =
            (p.first() == "std" || p.first() == "core") && p.contains("time");
        if !(known_clock || p.unresolved) {
            continue;
        }
        if p.single && locally_defined(ctx, name) {
            continue;
        }
        ctx.emit(
            out,
            "wall-clock-in-sim",
            &ctx.toks[p.start],
            format!("host wall-clock `{name}` in simulation code"),
            "simulated time must come from the event queue (`Cycles`); host timing belongs in hh-trace's exec collector or the bench bins".to_string(),
        );
    }
}

/// Ambient entropy sources rule 3 recognizes by bare name.
const RNG_NAMES: &[&str] = &[
    "thread_rng",
    "OsRng",
    "StdRng",
    "SmallRng",
    "from_entropy",
    "getrandom",
    "RandomState",
    "DefaultHasher",
];

/// Rule 3: ambient RNG. Every stochastic component must own an
/// `hh_sim::Rng64` derived from the experiment seed; entropy from the OS
/// or a thread-local generator is unreproducible by construction.
fn ambient_rng(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.level("ambient-rng") == Level::Allow {
        return;
    }
    for p in path_uses(ctx) {
        let from_rand_crate = p.first() == "rand"
            || p.first().starts_with("rand_")
            || p.first() == "getrandom";
        let named = p
            .resolved
            .iter()
            .find(|s| RNG_NAMES.contains(&s.as_str()));
        if !from_rand_crate && named.is_none() {
            continue;
        }
        if let Some(name) = named {
            if p.single && locally_defined(ctx, name) {
                continue;
            }
        }
        let what = named
            .map(String::as_str)
            .unwrap_or_else(|| p.first())
            .to_string();
        ctx.emit(
            out,
            "ambient-rng",
            &ctx.toks[p.start],
            format!("ambient randomness via `{what}`"),
            "thread all randomness through a seeded `hh_sim::Rng64` stream (seed ^ stream id) so every run replays bit-for-bit".to_string(),
        );
    }
}

/// Rule 4: `unwrap`/`expect`/`panic!` in hot paths — the known hot modules
/// plus any `#[inline]` function. A panic branch in the per-access path
/// costs branch-predictor slots and poisons inlining; hot paths propagate
/// or use infallible shapes instead (outside `debug_assert!`, which
/// vanishes in release builds).
fn unwrap_in_hot_path(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.level("unwrap-in-hot-path") == Level::Allow {
        return;
    }
    let hot_file = ctx.config.is_hot_module(&ctx.display_path);
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let is_unwrap = (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && ctx.toks[i - 1].is_punct(".")
            && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct("("));
        let is_panic = t.text == "panic"
            && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
        if !(is_unwrap || is_panic) {
            continue;
        }
        if ctx.index.in_test(i) || ctx.index.in_debug_assert(i) {
            continue;
        }
        let in_hot_scope = hot_file
            || ctx
                .index
                .enclosing_fn(i)
                .is_some_and(|f| f.inline);
        if !in_hot_scope {
            continue;
        }
        let what = if is_panic { "panic!".to_string() } else { format!(".{}()", t.text) };
        ctx.emit(
            out,
            "unwrap-in-hot-path",
            t,
            format!("`{what}` on a hot path"),
            "restructure so the invariant is by-construction, return the error, or justify with `// hh-lint: allow(unwrap-in-hot-path): <why>`".to_string(),
        );
    }
}

/// Rule 5: direct `==`/`!=` on float expressions (detected via an adjacent
/// float literal). Exact float equality is almost always a latent ULP bug;
/// compare with an epsilon, a total order (`f64::total_cmp`), or restate
/// the test on the integer domain.
fn float_eq(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.level("float-eq") == Level::Allow {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        if ctx.index.in_test(i) {
            continue;
        }
        let prev_float = i > 0 && ctx.toks[i - 1].kind == TokKind::Float;
        // Look through a unary minus: `x == -0.0` lexes as `== - 0.0`.
        let next_float = match ctx.toks.get(i + 1) {
            Some(n) if n.kind == TokKind::Float => true,
            Some(n) if n.is_punct("-") => ctx
                .toks
                .get(i + 2)
                .is_some_and(|m| m.kind == TokKind::Float),
            _ => false,
        };
        if !(prev_float || next_float) {
            continue;
        }
        ctx.emit(
            out,
            "float-eq",
            t,
            format!("direct float `{}` comparison", t.text),
            "compare via `f64::total_cmp`, an explicit epsilon, or test the integer source of the value instead".to_string(),
        );
    }
}

/// Rule 6: a function that performs a named sim-state transition (core
/// lend/reclaim, flush, enqueue) but contains no trace evidence — neither a
/// `trace_*!` macro nor a call to a tracing helper. Untraced transitions
/// are invisible to the Perfetto timeline and to post-hoc debugging of
/// determinism splits.
fn untraced_transition(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.level("untraced-transition") == Level::Allow {
        return;
    }
    for f in &ctx.index.fns {
        let Some((a, b)) = f.body else { continue };
        if ctx.index.in_test(f.fn_idx) || f.test {
            continue;
        }
        let mut first_trigger: Option<usize> = None;
        let mut evidence = false;
        for i in a..=b {
            let t = &ctx.toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let is_call = ctx.toks.get(i + 1).is_some_and(|n| n.is_punct("("));
            let is_method = i > 0 && ctx.toks[i - 1].is_punct(".");
            if is_call
                && is_method
                && ctx.config.transition_triggers.iter().any(|m| *m == t.text)
            {
                first_trigger.get_or_insert(i);
            }
            if ctx.config.trace_macros.iter().any(|m| *m == t.text)
                && ctx.toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                evidence = true;
            }
            if is_call && is_method && ctx.config.trace_helpers.iter().any(|m| *m == t.text) {
                evidence = true;
            }
        }
        if let Some(i) = first_trigger {
            if !evidence {
                let t = &ctx.toks[i];
                ctx.emit(
                    out,
                    "untraced-transition",
                    t,
                    format!(
                        "fn `{}` mutates sim state via `.{}()` without emitting a trace event",
                        f.name, t.text
                    ),
                    "add a `trace_event!`-family call (or route through note_flush/note_reassign) so the transition shows up on the Perfetto timeline".to_string(),
                );
            }
        }
    }
}

/// Rule 7: `pub` fields on types the hh-check oracle diffs. Their
/// constructors establish invariants (sorted-cache flags, partition masks,
/// FIFO counters, label consistency); a public mutable field lets callers
/// bypass them and desynchronize the optimized and reference models.
fn pub_field_in_oracle_type(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.level("pub-field-in-oracle-type") == Level::Allow {
        return;
    }
    for s in &ctx.index.structs {
        if !ctx.config.oracle_types.iter().any(|t| *t == s.name) {
            continue;
        }
        let (open, close) = s.body;
        let mut depth = 0usize;
        let mut i = open + 1;
        while i < close {
            let t = &ctx.toks[i];
            if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_ident("pub") {
                // `pub(crate)` / `pub(super)` keep the invariant inside the
                // crate that owns it — only bare `pub` is flagged.
                let scoped = ctx.toks.get(i + 1).is_some_and(|n| n.is_punct("("));
                let field = ctx.toks.get(i + 1).filter(|n| n.kind == TokKind::Ident);
                if let (false, Some(field)) = (scoped, field) {
                    if ctx.toks.get(i + 2).is_some_and(|n| n.is_punct(":")) {
                        ctx.emit(
                            out,
                            "pub-field-in-oracle-type",
                            t,
                            format!(
                                "public field `{}` on oracle-diffed type `{}`",
                                field.text, s.name
                            ),
                            "make the field private (or pub(crate)) and expose an accessor; construction must go through the invariant-checked constructor".to_string(),
                        );
                    }
                }
            }
            i += 1;
        }
    }
}
