//! Crate discovery and module-tree traversal.
//!
//! The walker mirrors rustc's out-of-line module resolution closely enough
//! for this workspace: every workspace crate under `crates/` (plus the
//! root `hardharvest` facade package) contributes roots at `src/lib.rs`,
//! `src/main.rs` and `src/bin/*.rs`; from each root, `mod foo;`
//! declarations recurse to `foo.rs` / `foo/mod.rs` relative to the parent
//! module's directory. `shims/` is deliberately not walked — those crates
//! stand in for external dependencies and are not workspace code.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{Tok, TokKind};

/// One discovered workspace crate.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `Cargo.toml` (`hh-sim`, …).
    pub name: String,
    /// Root source files (lib.rs / main.rs / bin targets) that exist.
    pub roots: Vec<PathBuf>,
}

/// Discovers every workspace crate under `root` (the workspace root).
pub fn discover(root: &Path) -> io::Result<Vec<CrateInfo>> {
    let mut crates = Vec::new();
    let mut manifest_dirs: Vec<PathBuf> = vec![root.to_path_buf()];
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut subdirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        subdirs.sort();
        manifest_dirs.extend(subdirs);
    }
    for dir in manifest_dirs {
        let manifest = dir.join("Cargo.toml");
        let Ok(text) = fs::read_to_string(&manifest) else { continue };
        let Some(name) = package_name(&text) else { continue };
        let mut roots = Vec::new();
        for rel in ["src/lib.rs", "src/main.rs"] {
            let p = dir.join(rel);
            if p.is_file() {
                roots.push(p);
            }
        }
        let bin_dir = dir.join("src/bin");
        if bin_dir.is_dir() {
            let mut bins: Vec<PathBuf> = fs::read_dir(&bin_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "rs"))
                .collect();
            bins.sort();
            roots.extend(bins);
        }
        if !roots.is_empty() {
            crates.push(CrateInfo { name, roots });
        }
    }
    Ok(crates)
}

/// Extracts `name = "…"` from a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                let rest = rest.trim();
                let rest = rest.trim_matches('"');
                return Some(rest.to_string());
            }
        }
    }
    None
}

/// Names of out-of-line submodules (`mod foo;`) declared in a token
/// stream. Inline modules (`mod foo { … }`) need no file lookup.
pub fn submodule_decls(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("mod") {
            continue;
        }
        // Reject `path::mod`-ish nonsense and `use x as mod` (impossible,
        // but the guard is one comparison).
        if i > 0 && (toks[i - 1].is_punct("::") || toks[i - 1].is_punct(".")) {
            continue;
        }
        let Some(name) = toks.get(i + 1) else { continue };
        if name.kind != TokKind::Ident {
            continue;
        }
        if toks.get(i + 2).is_some_and(|t| t.is_punct(";")) {
            out.push(name.text.clone());
        }
    }
    out
}

/// Candidate files for submodule `name` declared in `parent`: rustc looks
/// in the parent's own directory for crate roots and `mod.rs` files, and
/// in a directory named after the parent file otherwise.
pub fn child_candidates(parent: &Path, name: &str) -> Vec<PathBuf> {
    let dir = parent.parent().unwrap_or(Path::new("."));
    let stem = parent
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or_default();
    let base = if matches!(stem, "lib" | "main" | "mod") {
        dir.to_path_buf()
    } else {
        dir.join(stem)
    };
    vec![
        base.join(format!("{name}.rs")),
        base.join(name).join("mod.rs"),
    ]
}

/// All source files of one crate, walked breadth-first from its roots.
/// Missing child files (e.g. `#[cfg]`-gated platform modules) are skipped
/// silently; duplicates (a file reachable twice) visit once.
pub fn crate_files(info: &CrateInfo) -> Vec<PathBuf> {
    let mut queue: Vec<PathBuf> = info.roots.clone();
    let mut seen: BTreeSet<PathBuf> = BTreeSet::new();
    let mut out = Vec::new();
    while let Some(path) = queue.pop() {
        if !seen.insert(path.clone()) {
            continue;
        }
        let Ok(src) = fs::read_to_string(&path) else { continue };
        let lexed = crate::lexer::lex(&src);
        for name in submodule_decls(&lexed.toks) {
            for cand in child_candidates(&path, &name) {
                if cand.is_file() {
                    queue.push(cand);
                    break;
                }
            }
        }
        out.push(path);
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn package_name_parses() {
        let m = "[package]\nname = \"hh-sim\"\nversion = \"0.1.0\"\n[dependencies]\nname = \"decoy\"\n";
        assert_eq!(package_name(m).as_deref(), Some("hh-sim"));
    }

    #[test]
    fn package_name_ignores_other_sections() {
        let m = "[workspace]\nmembers = [\"a\"]\n";
        assert_eq!(package_name(m), None);
    }

    #[test]
    fn submodules_out_of_line_only() {
        let l = lex("mod a;\npub mod b;\nmod inline_one { fn f() {} }\n#[cfg(test)]\nmod tests;\n");
        assert_eq!(submodule_decls(&l.toks), ["a", "b", "tests"]);
    }

    #[test]
    fn child_paths_for_lib_and_named_module() {
        let lib = Path::new("crates/x/src/lib.rs");
        let c = child_candidates(lib, "foo");
        assert_eq!(c[0], Path::new("crates/x/src/foo.rs"));
        assert_eq!(c[1], Path::new("crates/x/src/foo/mod.rs"));

        let named = Path::new("crates/x/src/foo.rs");
        let c = child_candidates(named, "bar");
        assert_eq!(c[0], Path::new("crates/x/src/foo/bar.rs"));
    }
}
