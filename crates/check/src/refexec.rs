//! Serial, memo-free reference executor for cluster runs.
//!
//! [`hh_core::RunPlan`] overlaps per-server simulations on a worker pool
//! and deduplicates whole cluster runs through a memo table. Both
//! mechanisms are pure plumbing — the metrics of a cluster must be a
//! function of its resolved configs alone. This module computes that
//! function the obvious way (one server after another, no threads, no
//! memo, no channels) and compares the result field by field against what
//! the pool produced, so a scheduling or memoization bug shows up as a
//! named metric difference on a named server instead of a flaky figure.

use hh_core::{resolved_configs, ClusterMetrics, Scale};
use hh_server::{ServerSim, SystemSpec};

use crate::diff::Divergence;

/// Runs one cluster serially: the same resolved configs [`hh_core::RunPlan`]
/// would simulate, executed one server at a time on the calling thread.
pub fn run_cluster_serial(system: SystemSpec, scale: Scale, seed: u64) -> ClusterMetrics {
    let configs = resolved_configs(system, scale, seed, |_| {});
    ClusterMetrics::new(
        system.name,
        configs
            .into_iter()
            .map(|cfg| ServerSim::new(cfg).run())
            .collect(),
    )
}

/// Compares two cluster results field by field. `optimized` is the pooled
/// executor's output, `reference` the serial one; the first differing
/// metric is reported with its server index and field name. Latency sample
/// *values* are compared element-wise in recording order — the executor
/// must be bit-identical, not statistically similar.
pub fn diff_cluster(
    optimized: &ClusterMetrics,
    reference: &ClusterMetrics,
) -> Result<(), Box<Divergence>> {
    let diverge = |index: usize, context: &str, field: &'static str, a: String, b: String| {
        Box::new(Divergence {
            index,
            context: context.to_string(),
            field,
            optimized: a,
            reference: b,
        })
    };

    if optimized.system() != reference.system() {
        return Err(diverge(
            0,
            "cluster header",
            "system label",
            optimized.system().to_string(),
            reference.system().to_string(),
        ));
    }
    if optimized.servers().len() != reference.servers().len() {
        return Err(diverge(
            0,
            "cluster header",
            "server count",
            optimized.servers().len().to_string(),
            reference.servers().len().to_string(),
        ));
    }

    for (i, (a, b)) in optimized.servers().iter().zip(reference.servers()).enumerate() {
        let ctx = format!("server {i} ({})", a.system);
        macro_rules! field {
            ($name:literal, $fa:expr, $fb:expr) => {
                if $fa != $fb {
                    return Err(diverge(i, &ctx, $name, format!("{:?}", $fa), format!("{:?}", $fb)));
                }
            };
        }
        field!("end_time", a.end_time, b.end_time);
        field!("batch_units", a.batch_units, b.batch_units);
        field!("reassignments", a.reassignments, b.reassignments);
        field!("reclaims", a.reclaims, b.reclaims);
        field!("l2_hits", a.l2_hits, b.l2_hits);
        field!("l2_misses", a.l2_misses, b.l2_misses);
        field!("queue_overflows", a.queue_overflows, b.queue_overflows);
        field!("busy_cores integral", a.busy_cores, b.busy_cores);
        field!("service count", a.services.len(), b.services.len());
        for (s, (sa, sb)) in a.services.iter().zip(&b.services).enumerate() {
            let sctx = format!("{ctx}, service {s}");
            if sa.completed != sb.completed {
                return Err(diverge(
                    i,
                    &sctx,
                    "completed",
                    sa.completed.to_string(),
                    sb.completed.to_string(),
                ));
            }
            if sa.exec != sb.exec || sa.io != sb.io {
                return Err(diverge(
                    i,
                    &sctx,
                    "exec/io cycles",
                    format!("{:?}/{:?}", sa.exec, sa.io),
                    format!("{:?}/{:?}", sb.exec, sb.io),
                ));
            }
            if sa.latency_ms.values() != sb.latency_ms.values() {
                return Err(diverge(
                    i,
                    &sctx,
                    "latency samples",
                    format!("{} samples", sa.latency_ms.len()),
                    format!("{} samples", sb.latency_ms.len()),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_core::RunPlan;

    fn tiny() -> Scale {
        Scale {
            servers: 2,
            requests_per_vm: 40,
            rps_per_vm: 800.0,
        }
    }

    #[test]
    fn pooled_executor_matches_serial_reference() {
        let sys = SystemSpec::hardharvest_block();
        let reference = run_cluster_serial(sys, tiny(), 11);
        for workers in [1, 3] {
            let pooled = RunPlan::with_workers(workers).run_cluster(sys, tiny(), 11);
            diff_cluster(&pooled, &reference)
                .unwrap_or_else(|d| panic!("workers={workers}: {d}"));
        }
    }

    #[test]
    fn different_seeds_are_reported_as_divergence() {
        let sys = SystemSpec::no_harvest();
        let a = run_cluster_serial(sys, tiny(), 1);
        let b = run_cluster_serial(sys, tiny(), 2);
        let d = diff_cluster(&a, &b).expect_err("different seeds must diverge");
        assert!(!d.field.is_empty());
        assert!(d.to_string().contains("server"));
    }
}
