//! Structural invariants over simulator state, as reusable
//! [`Invariant`] implementations.
//!
//! Each type here packages one rule about a concrete simulator structure.
//! They compose into [`InvariantSet`]s used three ways: the `hh-check`
//! binary sweeps them over generated states, the proptest suites assert
//! them on arbitrary inputs, and hand-written tests call them directly.
//! (`ServerSim` carries its own internal set — built from the same
//! machinery — because its invariants need access to private state.)

use hh_hwqueue::{Controller, Subqueue};
use hh_mem::{BeladyCache, SetAssocCache, TraceOp, WayMask};
use hh_sim::invariant::Invariant;
use hh_sim::stats::Samples;
use hh_workload::{OpTrace, RecordedOp};

/// Cache partition/structure invariant: within every set no tag is stored
/// twice among valid ways (the stale-copy invalidation rule exists to
/// guarantee exactly this), RRPVs stay within their 2-bit encoding, and
/// the harvest/non-harvest occupancy split accounts for every valid entry.
#[derive(Debug, Clone, Copy, Default)]
pub struct CachePartition;

impl Invariant<SetAssocCache> for CachePartition {
    fn name(&self) -> &'static str {
        "cache-partition-isolation"
    }

    fn check(&self, c: &SetAssocCache) -> Result<(), String> {
        let harvest = c.harvest_mask();
        let non_harvest = harvest.complement(c.ways());
        let split = c.occupancy_in(harvest) + c.occupancy_in(non_harvest);
        if split != c.occupancy() {
            return Err(format!(
                "harvest ({}) + non-harvest ({}) occupancy != total ({})",
                c.occupancy_in(harvest),
                c.occupancy_in(non_harvest),
                c.occupancy()
            ));
        }
        for set in 0..c.sets() {
            let states = c.way_states(set);
            for a in &states {
                if a.rrpv > 3 {
                    return Err(format!("set {set} way {}: rrpv {} > 3", a.way, a.rrpv));
                }
                if !a.valid {
                    continue;
                }
                for b in &states[a.way + 1..] {
                    if b.valid && b.tag == a.tag {
                        return Err(format!(
                            "set {set}: tag {:#x} duplicated in ways {} and {}",
                            a.tag, a.way, b.way
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Percentile monotonicity: for any sample set, quantiles are
/// non-decreasing in `q`, bounded by min and max, and a claimed sort cache
/// reflects truly sorted storage.
#[derive(Debug, Clone, Copy, Default)]
pub struct PercentileMonotone;

impl Invariant<Samples> for PercentileMonotone {
    fn name(&self) -> &'static str {
        "percentile-monotonicity"
    }

    fn check(&self, s: &Samples) -> Result<(), String> {
        if s.is_sorted_cached() {
            let v = s.values();
            if let Some(i) = v.windows(2).position(|w| w[0] > w[1]) {
                return Err(format!(
                    "sort cache claimed but values[{i}]={} > values[{}]={}",
                    v[i],
                    i + 1,
                    v[i + 1]
                ));
            }
        }
        if s.is_empty() {
            return Ok(());
        }
        // `percentile` needs `&mut` (it may cache a sort); the check works
        // on a clone so the inspected state is never perturbed.
        let mut probe = s.clone();
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let p = probe.percentile(q);
            if p < prev {
                return Err(format!("percentile({q}) = {p} < previous quantile {prev}"));
            }
            prev = p;
        }
        let (min, max) = (s.min(), s.max());
        if probe.percentile(0.0) != min {
            return Err(format!(
                "percentile(0.0) = {} but min = {min}",
                probe.percentile(0.0)
            ));
        }
        if probe.percentile(1.0) != max {
            return Err(format!(
                "percentile(1.0) = {} but max = {max}",
                probe.percentile(1.0)
            ));
        }
        Ok(())
    }
}

/// Subqueue FIFO order: the arrival stamps of ready entries, in dequeue
/// order, never decrease — shedding chunks, promoting overflow entries and
/// preemption all preserve relative age.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubqueueFifo;

impl Invariant<Subqueue> for SubqueueFifo {
    fn name(&self) -> &'static str {
        "subqueue-fifo-order"
    }

    fn check(&self, q: &Subqueue) -> Result<(), String> {
        let arrivals = q.ready_arrivals();
        if arrivals.len() != q.ready_len() {
            return Err(format!(
                "ready_arrivals reports {} entries but ready_len is {}",
                arrivals.len(),
                q.ready_len()
            ));
        }
        if let Some(w) = arrivals.windows(2).find(|w| w[0] > w[1]) {
            return Err(format!(
                "ready entry arrived at {} queued behind one arrived at {}",
                w[1], w[0]
            ));
        }
        Ok(())
    }
}

/// RQ chunk conservation: every chunk of the controller's physical queue
/// is either free or owned by exactly one VM's RQ-Map.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChunkConservation;

impl Invariant<Controller> for ChunkConservation {
    fn name(&self) -> &'static str {
        "rq-chunk-conservation"
    }

    fn check(&self, c: &Controller) -> Result<(), String> {
        if c.chunk_accounting_ok() {
            Ok(())
        } else {
            Err(format!(
                "owned + free chunks do not cover the pool exactly (free = {})",
                c.free_chunks()
            ))
        }
    }
}

/// A replayed trace with the hit count an online policy achieved on it,
/// for [`BeladyUpperBound`].
#[derive(Debug, Clone)]
pub struct TraceRun {
    /// Cache sets the online run used.
    pub sets: usize,
    /// Cache ways the online run used.
    pub ways: usize,
    /// The replayable trace (Belady ignores `SetHarvestMask` ops: the
    /// oracle places by reuse distance, not by region preference).
    pub trace: Vec<TraceOp>,
    /// Hits the online replacement policy achieved on this trace.
    pub online_hits: u64,
}

/// Offline-optimal dominance: no online policy may beat the clairvoyant
/// Belady bound on the same trace and geometry.
#[derive(Debug, Clone, Copy, Default)]
pub struct BeladyUpperBound;

impl Invariant<TraceRun> for BeladyUpperBound {
    fn name(&self) -> &'static str {
        "belady-upper-bound"
    }

    fn check(&self, run: &TraceRun) -> Result<(), String> {
        let optimal = BeladyCache::new(run.sets, run.ways).run(&run.trace);
        if run.online_hits <= optimal.hits {
            Ok(())
        } else {
            Err(format!(
                "online policy scored {} hits, above the offline-optimal {} ({} accesses)",
                run.online_hits,
                optimal.hits,
                optimal.accesses()
            ))
        }
    }
}

/// Converts a recorded cache-operation trace to the Belady replay format.
/// `SetHarvestMask` ops are dropped — they alter victim *preference*, not
/// reachability — while accesses keep their allowed masks and flushes keep
/// their way sets.
pub fn to_belady_trace(trace: &OpTrace) -> Vec<TraceOp> {
    trace
        .ops()
        .iter()
        .filter_map(|op| match *op {
            RecordedOp::Access { key, allowed, .. } => Some(TraceOp::Access { key, allowed }),
            RecordedOp::InvalidateWays(mask) => Some(TraceOp::InvalidateWays(mask)),
            RecordedOp::SetHarvestMask(_) => None,
        })
        .collect()
}

/// The full structure-level invariant suite for a cache, ready to check.
pub fn cache_invariants() -> hh_sim::InvariantSet<SetAssocCache> {
    hh_sim::InvariantSet::new().with(CachePartition)
}

/// Ways a freshly constructed `WayMask` partition must split: helper used
/// by tests and the binary to build harvest/non-harvest pairs.
pub fn partition(ways: usize, harvest_ways: usize) -> (WayMask, WayMask) {
    let harvest = WayMask::lower(harvest_ways.min(ways));
    (harvest, harvest.complement(ways))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hh_hwqueue::ControllerConfig;
    use hh_mem::PolicyKind;
    use hh_sim::{Cycles, VmId};
    use hh_sim::invariant::InvariantSet;
    use hh_hwqueue::VmKind;

    #[test]
    fn healthy_cache_passes_partition_invariant() {
        let mut c = SetAssocCache::new(8, 4, PolicyKind::hardharvest_default(), WayMask::lower(2));
        let all = WayMask::all(4);
        for k in 0..64u64 {
            c.access(k, k % 2 == 0, all, k % 5 == 0);
        }
        cache_invariants()
            .check_all(&c)
            .expect("organic cache state must satisfy partition isolation");
    }

    #[test]
    fn percentile_monotone_on_organic_samples() {
        let s: Samples = [3.0, -1.0, 4.0, 1.0, 5.0, -9.0, 2.6].into_iter().collect();
        PercentileMonotone
            .check(&s)
            .expect("quantiles of real data must be monotone");
        PercentileMonotone
            .check(&Samples::new())
            .expect("empty set trivially passes");
    }

    #[test]
    fn subqueue_fifo_holds_through_stress() {
        let mut q = Subqueue::new(2, 4);
        let set = InvariantSet::new().with(SubqueueFifo);
        for t in 0..10 {
            q.enqueue(t, Cycles::new(t));
            set.check_all(&q).unwrap();
        }
        q.shed_chunks(1);
        set.check_all(&q).unwrap();
        let (t, _, _) = q.dequeue_ready().unwrap();
        q.complete(t);
        set.check_all(&q).unwrap();
    }

    #[test]
    fn controller_conserves_chunks() {
        let mut ctrl = Controller::new(ControllerConfig::table1());
        ctrl.register_vm(VmId(0), VmKind::Primary, 4);
        ctrl.register_vm(VmId(1), VmKind::Harvest, 2);
        ctrl.enqueue(VmId(0), 1, Cycles::ZERO);
        ChunkConservation.check(&ctrl).expect("fresh controller conserves chunks");
    }

    #[test]
    fn belady_dominates_lru_on_random_trace() {
        let all = WayMask::all(4);
        let mut trace = OpTrace::new();
        let mut x = 0x9e37_79b9u64;
        for _ in 0..400 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            trace.access(x % 37, x % 3 == 0, x % 7 == 0, all);
        }
        let mut online = SetAssocCache::new(4, 4, PolicyKind::Lru, WayMask::lower(2));
        for op in trace.ops() {
            if let RecordedOp::Access { key, shared, write, allowed } = *op {
                online.access(key, shared, allowed, write);
            }
        }
        let run = TraceRun {
            sets: 4,
            ways: 4,
            trace: to_belady_trace(&trace),
            online_hits: online.stats().hits,
        };
        BeladyUpperBound.check(&run).expect("LRU must not beat Belady");
    }
}
