//! The `hh-check` differential smoke suite.
//!
//! Sweeps the differential oracle and the invariant suite over generated
//! workloads and exits non-zero at the first divergence or violation:
//!
//! 1. cache traces (mixed shared/private keys, writes, harvest-restricted
//!    masks, region flushes, HarvestMask reloads) replayed through the
//!    optimized SoA cache and the naive reference, across geometries ×
//!    all replacement policies × mask schedules;
//! 2. the Belady bound and partition invariant over the same traces;
//! 3. sample-set traces hitting the selection, cached-sort and empty-set
//!    paths of the percentile estimator;
//! 4. memo-table collision probes;
//! 5. pooled cluster runs at worker counts 1, 2 and 8 against the serial
//!    memo-free reference executor;
//! 6. subqueue FIFO and RQ-chunk-conservation stress.
//!
//! Designed to run in seconds (`cargo run --release -p hh-check`) so CI
//! can afford it on every push.

use hh_check::diff::{diff_cache, diff_samples, SampleOp};
use hh_check::invariants::{
    cache_invariants, to_belady_trace, BeladyUpperBound, ChunkConservation, PercentileMonotone,
    SubqueueFifo, TraceRun,
};
use hh_check::refexec::{diff_cluster, run_cluster_serial};
use hh_core::{MemoTable, RunPlan, Scale};
use hh_hwqueue::{Controller, ControllerConfig, Subqueue, VmKind};
use hh_mem::{PolicyKind, SetAssocCache, WayMask};
use hh_sim::invariant::Invariant;
use hh_sim::stats::Samples;
use hh_sim::{Cycles, Rng64, VmId};
use hh_server::{ServerConfig, ServerSim, SystemSpec};
use hh_workload::{OpTrace, RecordedOp, StreamSpec};

/// How allowed/harvest masks vary along a generated trace.
#[derive(Debug, Clone, Copy)]
enum MaskSchedule {
    /// Every access sees every way; no flushes. (The only schedule where
    /// the classic Belady exchange argument holds, so it is the one the
    /// Belady bound is checked on.)
    Uniform,
    /// Alternating harvest-only / non-harvest-only / full-mask segments —
    /// the pattern that manufactures stale disallowed-way copies.
    Partitioned,
    /// Random masks per segment with interleaved region flushes and
    /// HarvestMask reloads.
    Adversarial,
}

fn gen_trace(seed: u64, ways: usize, schedule: MaskSchedule, len: usize) -> OpTrace {
    let mut rng = Rng64::new(seed);
    let mut t = OpTrace::new();
    let all = WayMask::all(ways);
    let harvest = WayMask::lower(ways / 2);
    let non_harvest = harvest.complement(ways);
    let mut allowed = all;
    for i in 0..len {
        if i % 24 == 0 {
            match schedule {
                MaskSchedule::Uniform => {}
                MaskSchedule::Partitioned => {
                    allowed = match (i / 24) % 3 {
                        0 => harvest,
                        1 => non_harvest,
                        _ => all,
                    };
                }
                MaskSchedule::Adversarial => {
                    allowed = WayMask((rng.below(1 << ways as u64) as u32).max(0));
                    if rng.chance(0.25) {
                        t.record_flush(WayMask(rng.below(1 << ways as u64) as u32));
                    }
                    if rng.chance(0.2) {
                        t.record_harvest_mask(WayMask::lower(rng.below(ways as u64 + 1) as usize));
                    }
                }
            }
        }
        // Small key space so sets stay contended; skew toward a hot subset.
        let key = if rng.chance(0.7) {
            rng.below(24)
        } else {
            rng.below(240)
        };
        t.access(key, rng.chance(0.5), rng.chance(0.3), allowed);
    }
    t
}

/// A recorded slice of the real workload synthesizer's address stream,
/// replayed under a restricted mask — the oracle sees the exact address
/// mixes the simulation produces, not just synthetic ones.
fn phase_trace(ways: usize) -> OpTrace {
    let spec = StreamSpec {
        vm: VmId(1),
        shared_base: StreamSpec::shared_base_for(2),
        shared_lines: 600,
        private_base: StreamSpec::private_base_for(7),
        private_lines: 200,
        accesses: 1500,
        ifetch_frac: 0.3,
        shared_data_frac: 0.5,
        seed: 23,
        uniform_private: false,
    };
    let mut t = OpTrace::new();
    t.record_phase(&spec, WayMask::all(ways));
    t.record_flush(WayMask::lower(ways / 2));
    t.record_phase(&spec, WayMask::lower(ways / 2));
    t
}

fn check_cache_suite(failures: &mut u32, checks: &mut u32) {
    let geometries = [(4usize, 4usize), (16, 8), (64, 16)];
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Rrip,
        PolicyKind::hardharvest_default(),
        PolicyKind::HardHarvest { candidate_frac: 1.0 },
    ];
    let schedules = [
        MaskSchedule::Uniform,
        MaskSchedule::Partitioned,
        MaskSchedule::Adversarial,
    ];
    for &(sets, ways) in &geometries {
        for &policy in &policies {
            for &schedule in &schedules {
                let trace = gen_trace(
                    0xC0FFEE ^ (sets as u64) << 8 ^ ways as u64,
                    ways,
                    schedule,
                    3000,
                );
                let harvest = WayMask::lower(ways / 2);
                *checks += 1;
                match diff_cache(sets, ways, policy, harvest, &trace) {
                    Ok(stats) => {
                        // Invariant sweep over the same trace on the
                        // optimized structure, checked periodically.
                        let mut c = SetAssocCache::new(sets, ways, policy, harvest);
                        let suite = cache_invariants();
                        for (i, op) in trace.ops().iter().enumerate() {
                            match *op {
                                RecordedOp::Access { key, shared, write, allowed } => {
                                    c.access(key, shared, allowed, write);
                                }
                                RecordedOp::InvalidateWays(m) => {
                                    c.invalidate_ways(m);
                                }
                                RecordedOp::SetHarvestMask(m) => c.set_harvest_mask(m),
                            }
                            if i % 64 == 0 {
                                if let Err(v) = suite.check_all(&c) {
                                    eprintln!(
                                        "FAIL cache invariant [{sets}x{ways} {policy:?} {schedule:?}] op {i}: {v}"
                                    );
                                    *failures += 1;
                                    break;
                                }
                            }
                        }
                        if matches!(schedule, MaskSchedule::Uniform) {
                            let run = TraceRun {
                                sets,
                                ways,
                                trace: to_belady_trace(&trace),
                                online_hits: stats.hits,
                            };
                            if let Err(detail) = BeladyUpperBound.check(&run) {
                                eprintln!(
                                    "FAIL belady bound [{sets}x{ways} {policy:?}]: {detail}"
                                );
                                *failures += 1;
                            }
                        }
                    }
                    Err(d) => {
                        eprintln!("FAIL cache diff [{sets}x{ways} {policy:?} {schedule:?}]:\n{d}");
                        *failures += 1;
                    }
                }
            }
        }
        // The recorded-workload trace, all policies.
        for &policy in &policies {
            *checks += 1;
            if let Err(d) = diff_cache(sets, ways, policy, WayMask::lower(ways / 2), &phase_trace(ways)) {
                eprintln!("FAIL cache diff on recorded phase [{sets}x{ways} {policy:?}]:\n{d}");
                *failures += 1;
            }
        }
    }
}

fn check_samples_suite(failures: &mut u32, checks: &mut u32) {
    // Edge cases pinned by hand: all-negative data, empty-set queries,
    // q = 0, empty merges against a cached sort.
    let edge_cases: Vec<Vec<SampleOp>> = vec![
        vec![SampleOp::Max, SampleOp::Min, SampleOp::Mean, SampleOp::Percentile(0.0)],
        vec![
            SampleOp::Record(-5.0),
            SampleOp::Record(-1.5),
            SampleOp::Record(-9.0),
            SampleOp::Max,
            SampleOp::Percentile(0.0),
            SampleOp::Percentile(1.0),
        ],
        vec![
            SampleOp::Record(2.0),
            SampleOp::Record(1.0),
            SampleOp::Percentile(0.5),
            SampleOp::Percentile(0.5),
            SampleOp::Percentile(0.5),
            SampleOp::Merge(vec![]),
            SampleOp::Percentile(0.0),
            SampleOp::Merge(vec![0.5]),
            SampleOp::Percentile(0.0),
        ],
    ];
    for (i, ops) in edge_cases.iter().enumerate() {
        *checks += 1;
        if let Err(d) = diff_samples(ops) {
            eprintln!("FAIL samples edge case {i}:\n{d}");
            *failures += 1;
        }
    }
    // Random op sequences, including negative values and repeated queries.
    let mut rng = Rng64::new(0xDECAF);
    for case in 0..24 {
        let mut ops = Vec::new();
        for _ in 0..rng.below(60) + 5 {
            let v = (rng.below(4000) as f64 - 2000.0) / 7.0;
            ops.push(match rng.below(10) {
                0..=3 => SampleOp::Record(v),
                4 => SampleOp::Merge((0..rng.below(5)).map(|k| v + k as f64).collect()),
                5 => SampleOp::Merge(vec![]),
                6 => SampleOp::Percentile(rng.below(101) as f64 / 100.0),
                7 => SampleOp::Mean,
                8 => SampleOp::Max,
                _ => SampleOp::Min,
            });
        }
        *checks += 1;
        if let Err(d) = diff_samples(&ops) {
            eprintln!("FAIL samples random case {case}:\n{d}");
            *failures += 1;
        }
        // The monotonicity invariant on the final state of the same ops.
        let mut s = Samples::new();
        for op in &ops {
            match op {
                SampleOp::Record(v) => s.record(*v),
                SampleOp::Merge(b) => s.merge(&b.iter().copied().collect()),
                _ => {}
            }
        }
        if let Err(detail) = PercentileMonotone.check(&s) {
            eprintln!("FAIL percentile monotonicity case {case}: {detail}");
            *failures += 1;
        }
    }
}

fn check_memo_suite(failures: &mut u32, checks: &mut u32) {
    *checks += 1;
    let memo = MemoTable::new();
    let a = memo.cell(0x5EED, "SystemA\nconfig-1");
    let b = memo.cell(0x5EED, "SystemA\nconfig-2"); // forced hash collision
    let a_again = memo.cell(0x5EED, "SystemA\nconfig-1");
    if std::sync::Arc::ptr_eq(&a, &b) {
        eprintln!("FAIL memo: hash collision aliased two different configs to one cell");
        *failures += 1;
    }
    if !std::sync::Arc::ptr_eq(&a, &a_again) {
        eprintln!("FAIL memo: identical keys did not share a cell");
        *failures += 1;
    }
    if memo.len() != 2 {
        eprintln!("FAIL memo: expected 2 distinct cells, found {}", memo.len());
        *failures += 1;
    }
}

fn check_executor_suite(failures: &mut u32, checks: &mut u32) {
    let scale = Scale {
        servers: 2,
        requests_per_vm: 40,
        rps_per_vm: 800.0,
    };
    for system in [SystemSpec::no_harvest(), SystemSpec::hardharvest_block()] {
        let reference = run_cluster_serial(system, scale, 7);
        for workers in [1usize, 2, 8] {
            *checks += 1;
            let pooled = RunPlan::with_workers(workers).run_cluster(system, scale, 7);
            if let Err(d) = diff_cluster(&pooled, &reference) {
                eprintln!(
                    "FAIL executor diff [{} workers={workers}]:\n{d}",
                    system.name
                );
                *failures += 1;
            }
        }
    }
    // The process-wide executor (honouring HH_WORKERS) must agree too.
    *checks += 1;
    let system = SystemSpec::hardharvest_block();
    let pooled = RunPlan::global().run_cluster(system, scale, 7);
    if let Err(d) = diff_cluster(&pooled, &run_cluster_serial(system, scale, 7)) {
        eprintln!(
            "FAIL executor diff [global pool, {} workers]:\n{d}",
            RunPlan::global().workers()
        );
        *failures += 1;
    }
}

fn check_queue_suite(failures: &mut u32, checks: &mut u32) {
    *checks += 1;
    let fifo = SubqueueFifo;
    let mut q = Subqueue::new(2, 4);
    let mut rng = Rng64::new(0xF1F0);
    let mut next_token = 0u64;
    let mut resident: Vec<u64> = Vec::new();
    for step in 0..400u64 {
        match rng.below(6) {
            0 | 1 => {
                q.enqueue(next_token, Cycles::new(step));
                resident.push(next_token);
                next_token += 1;
            }
            2 => {
                if let Some((t, _, _)) = q.dequeue_ready() {
                    q.complete(t);
                    resident.retain(|&r| r != t);
                }
            }
            3 => {
                q.add_chunks(1);
            }
            4 => {
                q.shed_chunks(1);
            }
            _ => {
                if let Some((t, _, _)) = q.dequeue_ready() {
                    q.preempt(t);
                }
            }
        }
        if let Err(detail) = fifo.check(&q) {
            eprintln!("FAIL subqueue FIFO at step {step}: {detail}");
            *failures += 1;
            return;
        }
    }

    *checks += 1;
    let mut ctrl = Controller::new(ControllerConfig::table1());
    ctrl.register_vm(VmId(0), VmKind::Primary, 4);
    ctrl.register_vm(VmId(1), VmKind::Primary, 4);
    ctrl.register_vm(VmId(2), VmKind::Harvest, 2);
    for t in 0..200u64 {
        ctrl.enqueue(VmId((t % 3) as u16), t, Cycles::new(t));
        if let Err(detail) = ChunkConservation.check(&ctrl) {
            eprintln!("FAIL chunk conservation after enqueue {t}: {detail}");
            *failures += 1;
            return;
        }
    }

    // A freshly constructed full server satisfies its own invariant set.
    *checks += 1;
    let sim = ServerSim::new(ServerConfig::table1(SystemSpec::hardharvest_block()));
    if let Err(v) = sim.check_invariants() {
        eprintln!("FAIL fresh ServerSim invariants: {v}");
        *failures += 1;
    }
}

fn main() {
    let mut failures = 0u32;
    let mut checks = 0u32;

    println!("hh-check: cache differential sweep…");
    check_cache_suite(&mut failures, &mut checks);
    println!("hh-check: percentile differential sweep…");
    check_samples_suite(&mut failures, &mut checks);
    println!("hh-check: memo-table collision probe…");
    check_memo_suite(&mut failures, &mut checks);
    println!("hh-check: executor differential sweep (workers 1/2/8 + global)…");
    check_executor_suite(&mut failures, &mut checks);
    println!("hh-check: queue and server invariant sweep…");
    check_queue_suite(&mut failures, &mut checks);

    if failures == 0 {
        println!("hh-check: OK — {checks} checks, no divergence");
    } else {
        eprintln!("hh-check: FAILED — {failures} of {checks} checks diverged");
        std::process::exit(1);
    }
}
