//! Lockstep differential drivers with pinpointed divergence reports.
//!
//! A bare `assert_eq!(optimized, reference)` over final statistics tells
//! you two runs disagreed, not *when* or *about what*. The drivers here
//! replay one operation at a time through both implementations and stop at
//! the first observable difference, reporting the operation index, the
//! operation itself, the field that differed, and — for caches — the full
//! way-state dump of the diverging set in both models.

use std::fmt;

use hh_mem::{CacheStats, PolicyKind, SetAssocCache, WayMask, WayState};
use hh_sim::stats::Samples;
use hh_workload::{OpTrace, RecordedOp};

use crate::refcache::RefCache;
use crate::refsamples::RefSamples;

/// The first observable difference between the optimized implementation
/// and its reference model.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index of the operation at which the two models first disagreed
    /// (or, for cluster comparisons, the server index).
    pub index: usize,
    /// Human-readable description of that operation / unit.
    pub context: String,
    /// Which observable differed (`"AccessOutcome"`, `"way states"`,
    /// `"percentile(0.99)"`, …).
    pub field: &'static str,
    /// The optimized implementation's value, rendered.
    pub optimized: String,
    /// The reference model's value, rendered.
    pub reference: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "divergence at op {} ({}): {} differs\n  optimized: {}\n  reference: {}",
            self.index, self.context, self.field, self.optimized, self.reference
        )
    }
}

impl std::error::Error for Divergence {}

/// Renders a set's way states one way per line, for divergence reports.
fn render_ways(states: &[WayState]) -> String {
    states
        .iter()
        .map(|s| {
            format!(
                "way {}: valid={} tag={:#x} shared={} dirty={} rrpv={} stamp={}",
                s.way, s.valid, s.tag, s.shared, s.dirty, s.rrpv, s.stamp
            )
        })
        .collect::<Vec<_>>()
        .join("; ")
}

/// Replays `trace` through the optimized [`SetAssocCache`] and the naive
/// [`RefCache`] in lockstep. After every operation the per-access outcome,
/// the running statistics, and the way states of the touched set must
/// match; after the whole trace, every set is swept. Returns the agreed
/// final statistics, or the first [`Divergence`].
pub fn diff_cache(
    sets: usize,
    ways: usize,
    policy: PolicyKind,
    harvest_mask: WayMask,
    trace: &OpTrace,
) -> Result<CacheStats, Box<Divergence>> {
    let mut opt = SetAssocCache::new(sets, ways, policy, harvest_mask);
    let mut reference = RefCache::new(sets, ways, policy, harvest_mask);

    for (i, op) in trace.ops().iter().enumerate() {
        match *op {
            RecordedOp::Access {
                key,
                shared,
                write,
                allowed,
            } => {
                let context = format!(
                    "Access {{ key: {key:#x}, shared: {shared}, write: {write}, allowed: {allowed} }}"
                );
                let a = opt.access(key, shared, allowed, write);
                let b = reference.access(key, shared, allowed, write);
                if a != b {
                    return Err(Box::new(Divergence {
                        index: i,
                        context,
                        field: "AccessOutcome",
                        optimized: format!("{a:?}"),
                        reference: format!("{b:?}"),
                    }));
                }
                let set = opt.set_of(key);
                let sa = opt.way_states(set);
                let sb = reference.way_states(set);
                if sa != sb {
                    return Err(Box::new(Divergence {
                        index: i,
                        context: format!("{context}, set {set}"),
                        field: "way states",
                        optimized: render_ways(&sa),
                        reference: render_ways(&sb),
                    }));
                }
            }
            RecordedOp::InvalidateWays(mask) => {
                let a = opt.invalidate_ways(mask);
                let b = reference.invalidate_ways(mask);
                if a != b {
                    return Err(Box::new(Divergence {
                        index: i,
                        context: format!("InvalidateWays({mask})"),
                        field: "entries dropped",
                        optimized: a.to_string(),
                        reference: b.to_string(),
                    }));
                }
            }
            RecordedOp::SetHarvestMask(mask) => {
                opt.set_harvest_mask(mask);
                reference.set_harvest_mask(mask);
            }
        }
        if opt.stats() != reference.stats() {
            return Err(Box::new(Divergence {
                index: i,
                context: format!("{op:?}"),
                field: "CacheStats",
                optimized: format!("{:?}", opt.stats()),
                reference: format!("{:?}", reference.stats()),
            }));
        }
    }

    // Final sweep: the whole structure, not just touched sets.
    for set in 0..sets {
        let sa = opt.way_states(set);
        let sb = reference.way_states(set);
        if sa != sb {
            return Err(Box::new(Divergence {
                index: trace.len(),
                context: format!("final sweep, set {set}"),
                field: "way states",
                optimized: render_ways(&sa),
                reference: render_ways(&sb),
            }));
        }
    }
    Ok(opt.stats())
}

/// One operation of a sample-set differential trace.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleOp {
    /// Record one observation.
    Record(f64),
    /// Merge a whole batch (possibly empty — the case that must preserve
    /// a cached sort).
    Merge(Vec<f64>),
    /// Query the `q`-quantile.
    Percentile(f64),
    /// Query the mean.
    Mean,
    /// Query the maximum.
    Max,
    /// Query the minimum.
    Min,
}

/// Replays `ops` through the optimized [`Samples`] (exercising whichever
/// of its three percentile paths the query sequence triggers) and the
/// sort-based [`RefSamples`]. Every query must return the identical value
/// — nearest-rank selection picks an actual element, so results are
/// bitwise comparable, not approximately equal. Two structural rules are
/// also enforced after every operation: whenever the optimized set claims
/// a cached sort its values really are sorted, and merging an *empty* set
/// never invalidates that cache.
pub fn diff_samples(ops: &[SampleOp]) -> Result<(), Box<Divergence>> {
    let mut opt = Samples::new();
    let mut reference = RefSamples::new();

    fn compare(
        i: usize,
        op: &SampleOp,
        n: usize,
        field: &'static str,
        a: f64,
        b: f64,
    ) -> Result<(), Box<Divergence>> {
        if a == b {
            Ok(())
        } else {
            Err(Box::new(Divergence {
                index: i,
                context: format!("{op:?} over {n} samples"),
                field,
                optimized: a.to_string(),
                reference: b.to_string(),
            }))
        }
    }

    for (i, op) in ops.iter().enumerate() {
        let cached_before = opt.is_sorted_cached();
        let n = reference.len();
        match op {
            SampleOp::Record(v) => {
                opt.record(*v);
                reference.record(*v);
            }
            SampleOp::Merge(batch) => {
                let other: Samples = batch.iter().copied().collect();
                opt.merge(&other);
                reference.merge_values(batch);
                if batch.is_empty() && cached_before && !opt.is_sorted_cached() {
                    return Err(Box::new(Divergence {
                        index: i,
                        context: "Merge(empty)".to_string(),
                        field: "sort cache",
                        optimized: "cache invalidated by empty merge".to_string(),
                        reference: "empty merge must be a no-op".to_string(),
                    }));
                }
            }
            SampleOp::Percentile(q) => {
                compare(i, op, n, "percentile", opt.percentile(*q), reference.percentile(*q))?
            }
            SampleOp::Mean => compare(i, op, n, "mean", opt.mean(), reference.mean())?,
            SampleOp::Max => compare(i, op, n, "max", opt.max(), reference.max())?,
            SampleOp::Min => compare(i, op, n, "min", opt.min(), reference.min())?,
        }
        if opt.len() != reference.len() {
            return Err(Box::new(Divergence {
                index: i,
                context: format!("{op:?}"),
                field: "len",
                optimized: opt.len().to_string(),
                reference: reference.len().to_string(),
            }));
        }
        if opt.is_sorted_cached() {
            let v = opt.values();
            if let Some(w) = v.windows(2).position(|w| w[0] > w[1]) {
                return Err(Box::new(Divergence {
                    index: i,
                    context: format!("{op:?}"),
                    field: "sort cache validity",
                    optimized: format!("claims sorted but values[{w}] > values[{}]", w + 1),
                    reference: "cached order must be truly sorted".to_string(),
                }));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru_trace() -> OpTrace {
        let all = WayMask::all(4);
        let harvest = WayMask::lower(2);
        let mut t = OpTrace::new();
        for k in 0..12u64 {
            t.access(k, k % 3 == 0, k % 5 == 0, all);
        }
        // Restricted accesses create stale disallowed copies…
        for k in 0..6u64 {
            t.access(k, false, true, harvest.complement(4));
        }
        // …which the harvest-restricted misses must invalidate.
        for k in 0..6u64 {
            t.access(k, false, false, harvest);
        }
        t.record_flush(harvest);
        t.record_harvest_mask(WayMask::lower(1));
        for k in 20..30u64 {
            t.access(k, k % 2 == 0, false, all);
        }
        t
    }

    #[test]
    fn optimized_and_reference_agree_on_mixed_trace() {
        for policy in [
            PolicyKind::Lru,
            PolicyKind::Rrip,
            PolicyKind::hardharvest_default(),
        ] {
            let stats = diff_cache(4, 4, policy, WayMask::lower(2), &lru_trace())
                .unwrap_or_else(|d| panic!("{policy:?}: {d}"));
            assert!(stats.accesses() > 0);
        }
    }

    #[test]
    fn divergence_report_pinpoints_the_op() {
        // Same trace through two *different* geometries is guaranteed to
        // diverge; fake it by comparing a cache against a reference with a
        // different harvest mask via a SetHarvestMask op applied to only
        // one — instead, assert the Display format on a hand-built value.
        let d = Divergence {
            index: 17,
            context: "Access { key: 0x2a }".to_string(),
            field: "AccessOutcome",
            optimized: "hit".to_string(),
            reference: "miss".to_string(),
        };
        let msg = d.to_string();
        assert!(msg.contains("op 17"));
        assert!(msg.contains("AccessOutcome"));
        assert!(msg.contains("optimized: hit"));
        assert!(msg.contains("reference: miss"));
    }

    #[test]
    fn sample_paths_agree_including_cached_sort() {
        let mut ops = vec![
            SampleOp::Record(5.0),
            SampleOp::Record(-2.0),
            SampleOp::Record(3.5),
            SampleOp::Max,
            SampleOp::Min,
            SampleOp::Percentile(0.0),
            SampleOp::Percentile(0.5), // repeated queries trigger the
            SampleOp::Percentile(0.5), // cached-sort path…
            SampleOp::Percentile(0.5),
            SampleOp::Percentile(0.99),
            SampleOp::Merge(vec![]), // …which an empty merge must keep
            SampleOp::Percentile(1.0),
            SampleOp::Merge(vec![7.0, -9.0]),
            SampleOp::Percentile(0.25),
            SampleOp::Mean,
        ];
        diff_samples(&ops).unwrap_or_else(|d| panic!("{d}"));
        // All-negative data: the max fix is visible through the driver.
        ops.insert(0, SampleOp::Record(-100.0));
        diff_samples(&ops).unwrap_or_else(|d| panic!("{d}"));
    }

    #[test]
    fn empty_sample_set_queries_agree() {
        diff_samples(&[
            SampleOp::Max,
            SampleOp::Min,
            SampleOp::Mean,
            SampleOp::Percentile(0.0),
            SampleOp::Percentile(1.0),
            SampleOp::Merge(vec![]),
        ])
        .unwrap_or_else(|d| panic!("{d}"));
    }
}
