//! Sort-based reference model of [`hh_sim::stats::Samples`].
//!
//! The optimized percentile estimator mixes three answer paths — an O(n)
//! `select_nth` for one-shot queries, a cached full sort for repeated
//! queries, and an indexed read once the cache is valid. This model has
//! exactly one path: clone, sort, index. Every quantile query is answered
//! the slow obvious way, which makes it the arbiter when the fast paths
//! disagree.
//!
//! Shared conventions (the contract both models implement): empty sets
//! report 0.0 for mean, min, max and every percentile; quantiles use
//! nearest-rank (`rank = ceil(q·n)` clamped to `[1, n]`, so `q = 0`
//! returns the minimum); NaN observations panic.

/// The reference sample set. Immutable queries; no caching of any kind.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RefSamples {
    values: Vec<f64>,
}

impl RefSamples {
    /// Creates an empty reference set.
    pub fn new() -> Self {
        RefSamples::default()
    }

    /// Records one observation.
    ///
    /// # Panics
    /// Panics if `value` is NaN (same contract as the optimized set).
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN sample recorded");
        self.values.push(value);
    }

    /// Appends every value of `other`.
    pub fn merge_values(&mut self, other: &[f64]) {
        self.values.extend_from_slice(other);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw observations in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Largest observation, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.sorted_copy().last().copied().unwrap_or(0.0)
    }

    /// Smallest observation, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        self.sorted_copy().first().copied().unwrap_or(0.0)
    }

    /// The `q`-quantile by full sort and nearest-rank indexing; 0.0 when
    /// empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let sorted = self.sorted_copy();
        if sorted.is_empty() {
            return 0.0;
        }
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[rank - 1]
    }

    fn sorted_copy(&self) -> Vec<f64> {
        let mut v = self.values.clone();
        // Must mirror Samples::percentile exactly: total_cmp, so the
        // reference and optimized paths agree bitwise even on ±0.0 ties.
        v.sort_by(|a, b| a.total_cmp(b));
        v
    }
}

impl FromIterator<f64> for RefSamples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RefSamples::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_on_known_data() {
        let s: RefSamples = (1..=100).map(f64::from).collect();
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(0.5), 50.0);
        assert_eq!(s.percentile(0.99), 99.0);
        assert_eq!(s.percentile(1.0), 100.0);
    }

    #[test]
    fn empty_set_conventions() {
        let s = RefSamples::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.percentile(0.5), 0.0);
    }

    #[test]
    fn all_negative_max_is_negative() {
        let s: RefSamples = [-3.0, -7.5, -0.25].into_iter().collect();
        assert_eq!(s.max(), -0.25);
        assert_eq!(s.min(), -7.5);
    }
}
