//! Naive array-of-structs reference model of [`hh_mem::SetAssocCache`].
//!
//! The optimized cache packs its state into struct-of-arrays storage with
//! a one-byte metadata encoding and mask-iteration scan loops; every one of
//! those tricks is a place for a bug to hide. This model keeps one plain
//! struct per way, written as a direct transcription of the intended
//! semantics (the probe/insert protocol of Section 4.2.1, the stale-copy
//! invalidation rule, and Algorithm 1's victim selection), and favors
//! obviousness over speed everywhere. The differential driver in
//! [`crate::diff`] replays identical traces through both and reports the
//! first divergence.
//!
//! Intentional behavioral contract (shared with the optimized path):
//!
//! * the access clock ticks once per access, hit or miss;
//! * hits refresh the LRU stamp, reset the RRPV to 0, may set (never
//!   clear) the dirty bit, and leave the `Shared` bit untouched;
//! * a miss is counted *before* the empty-mask bypass check;
//! * stale copies in disallowed ways are invalidated (dirty ones written
//!   back) before the new insertion, in ascending way order;
//! * insertions start with RRPV 2 (SRRIP long re-reference);
//! * all tie-breaks resolve toward the lowest way index.

use hh_mem::{AccessOutcome, CacheStats, PolicyKind, WayMask, WayState};

/// One way of one set, stored as an ordinary struct.
#[derive(Debug, Default, Clone, Copy)]
struct RefEntry {
    valid: bool,
    tag: u64,
    shared: bool,
    dirty: bool,
    rrpv: u8,
    stamp: u64,
}

/// The reference cache: identical observable behavior to
/// [`hh_mem::SetAssocCache`], deliberately naive implementation.
#[derive(Debug, Clone)]
pub struct RefCache {
    sets: usize,
    ways: usize,
    /// `entries[set][way]` — no packing, no shared allocation.
    entries: Vec<Vec<RefEntry>>,
    policy: PolicyKind,
    harvest_mask: WayMask,
    clock: u64,
    stats: CacheStats,
}

impl RefCache {
    /// Creates an empty reference cache with the same construction rules
    /// as the optimized structure.
    ///
    /// # Panics
    /// Panics if `sets` or `ways` is zero, `ways > 32`, or the harvest
    /// mask references ways beyond `ways`.
    pub fn new(sets: usize, ways: usize, policy: PolicyKind, harvest_mask: WayMask) -> Self {
        assert!(sets > 0 && ways > 0, "degenerate geometry");
        assert!(ways <= 32, "way mask is 32 bits");
        assert!(
            !harvest_mask.intersects(WayMask::all(ways).complement(32)),
            "harvest mask exceeds the structure's ways"
        );
        RefCache {
            sets,
            ways,
            entries: vec![vec![RefEntry::default(); ways]; sets],
            policy,
            harvest_mask,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reconfigures the harvest region.
    ///
    /// # Panics
    /// Panics if the mask references ways beyond the structure.
    pub fn set_harvest_mask(&mut self, mask: WayMask) {
        assert!(!mask.intersects(WayMask::all(self.ways).complement(32)));
        self.harvest_mask = mask;
    }

    /// The set index a key maps to.
    pub fn set_of(&self, key: u64) -> usize {
        (key % self.sets as u64) as usize
    }

    /// Dumps the state of every way of `set`, in the same format the
    /// optimized cache reports, so the two can be compared field by field.
    ///
    /// # Panics
    /// Panics if `set` is out of range.
    pub fn way_states(&self, set: usize) -> Vec<WayState> {
        assert!(set < self.sets, "set {set} out of range");
        self.entries[set]
            .iter()
            .enumerate()
            .map(|(w, e)| WayState {
                way: w,
                tag: e.tag,
                valid: e.valid,
                shared: e.shared,
                dirty: e.dirty,
                rrpv: e.rrpv,
                stamp: e.stamp,
            })
            .collect()
    }

    /// Number of currently valid entries across all sets.
    pub fn occupancy(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .filter(|e| e.valid)
            .count()
    }

    /// Performs one access with the same contract as
    /// `SetAssocCache::access`.
    pub fn access(&mut self, key: u64, shared: bool, allowed: WayMask, write: bool) -> AccessOutcome {
        // The clock ticks first, on every access, hit or miss.
        self.clock += 1;
        let eff = allowed & WayMask::all(self.ways);
        let set = self.set_of(key);

        // Probe every way in ascending order. A tag match in an allowed way
        // is a hit; matches in disallowed ways are stale copies to drop on
        // the miss path.
        let mut stale: Vec<usize> = Vec::new();
        for w in 0..self.ways {
            let e = self.entries[set][w];
            if e.valid && e.tag == key {
                if eff.contains(w) {
                    let e = &mut self.entries[set][w];
                    e.stamp = self.clock;
                    e.rrpv = 0;
                    if write {
                        e.dirty = true;
                    }
                    // The Shared bit is set at insertion and never updated
                    // by later references (Section 4.2.2).
                    self.stats.hits += 1;
                    return AccessOutcome {
                        hit: true,
                        writeback: false,
                    };
                }
                stale.push(w);
            }
        }

        // Misses are counted even when the empty mask forces a bypass.
        self.stats.misses += 1;
        if eff.is_empty() {
            return AccessOutcome {
                hit: false,
                writeback: false,
            };
        }

        // Invalidate stale disallowed copies (ascending ways), writing
        // dirty ones back, before inserting the fresh copy.
        let mut writeback = false;
        for w in stale {
            if self.entries[set][w].dirty {
                self.stats.writebacks += 1;
                writeback = true;
            }
            self.entries[set][w] = RefEntry::default();
        }

        let victim = self.choose_victim(set, eff, shared);
        if self.entries[set][victim].valid && self.entries[set][victim].dirty {
            self.stats.writebacks += 1;
            writeback = true;
        }
        self.entries[set][victim] = RefEntry {
            valid: true,
            tag: key,
            shared,
            dirty: write,
            rrpv: 2,
            stamp: self.clock,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Invalidates every entry in the given ways across all sets; returns
    /// the number of valid entries dropped.
    pub fn invalidate_ways(&mut self, mask: WayMask) -> u64 {
        let eff = mask & WayMask::all(self.ways);
        let mut dropped = 0;
        for set in 0..self.sets {
            for w in eff.iter() {
                if self.entries[set][w].valid {
                    dropped += 1;
                    if self.entries[set][w].dirty {
                        self.stats.writebacks += 1;
                    }
                    self.entries[set][w] = RefEntry::default();
                }
            }
        }
        self.stats.flushed += dropped;
        dropped
    }

    fn choose_victim(&mut self, set: usize, eff: WayMask, incoming_shared: bool) -> usize {
        match self.policy {
            PolicyKind::Lru => self.victim_lru(set, eff),
            PolicyKind::Rrip => self.victim_rrip(set, eff),
            PolicyKind::HardHarvest { candidate_frac } => {
                self.victim_hardharvest(set, eff, incoming_shared, candidate_frac)
            }
        }
    }

    /// First empty way of `mask`, ascending.
    fn first_empty(&self, set: usize, mask: WayMask) -> Option<usize> {
        mask.iter().find(|&w| !self.entries[set][w].valid)
    }

    /// Oldest way of `mask` satisfying `pred`; ties go to the lowest way.
    fn oldest(&self, set: usize, mask: WayMask, pred: impl Fn(&RefEntry) -> bool) -> Option<usize> {
        let mut best: Option<usize> = None;
        for w in mask.iter() {
            if !pred(&self.entries[set][w]) {
                continue;
            }
            // Strict `<` keeps the first (lowest-way) minimum on ties.
            match best {
                Some(b) if self.entries[set][w].stamp < self.entries[set][b].stamp => {
                    best = Some(w);
                }
                None => best = Some(w),
                _ => {}
            }
        }
        best
    }

    fn victim_lru(&self, set: usize, eff: WayMask) -> usize {
        if let Some(w) = self.first_empty(set, eff) {
            return w;
        }
        self.oldest(set, eff, |_| true)
            .expect("allowed mask verified non-empty")
    }

    fn victim_rrip(&mut self, set: usize, eff: WayMask) -> usize {
        if let Some(w) = self.first_empty(set, eff) {
            return w;
        }
        // SRRIP: find a distant (RRPV = 3) way, ascending; otherwise age
        // every allowed way and retry. Aging persists in the entries, as
        // in the real SRRIP hardware table.
        loop {
            for w in eff.iter() {
                if self.entries[set][w].rrpv == 3 {
                    return w;
                }
            }
            for w in eff.iter() {
                let e = &mut self.entries[set][w];
                e.rrpv = (e.rrpv + 1).min(3);
            }
        }
    }

    /// Algorithm 1 of the paper, transcribed line by line:
    ///
    /// 1. an empty slot wins outright — shared entries prefer an empty
    ///    non-harvest slot, private entries an empty harvest slot, and
    ///    either settles for the region that has one;
    /// 2. otherwise only the `M` least-recently-used allowed entries are
    ///    eviction candidates (`M = round(frac × allowed)`, at least 1);
    /// 3. among candidates, a shared insertion victimizes a private entry
    ///    in the non-harvest region first, then a private entry in the
    ///    harvest region, then the LRU candidate of either; a private
    ///    insertion mirrors this with the regions swapped.
    fn victim_hardharvest(
        &self,
        set: usize,
        eff: WayMask,
        incoming_shared: bool,
        candidate_frac: f64,
    ) -> usize {
        let harv = self.harvest_mask & eff;
        let non_harv = self.harvest_mask.complement(self.ways) & eff;

        match (self.first_empty(set, non_harv), self.first_empty(set, harv)) {
            (Some(nh), Some(h)) => {
                return if incoming_shared { nh } else { h };
            }
            (Some(nh), None) => return nh,
            (None, Some(h)) => return h,
            (None, None) => {}
        }

        let allowed_count = eff.count();
        let m = ((allowed_count as f64 * candidate_frac).round() as usize).clamp(1, allowed_count);
        // Ways in ascending order, stably sorted by age: ties keep the
        // lower way earlier, exactly like the optimized stack-buffer sort.
        let mut by_age: Vec<usize> = eff.iter().collect();
        by_age.sort_by_key(|&w| self.entries[set][w].stamp);
        let window = &by_age[..m];

        // LRU scan over `region` restricted to candidate-window entries
        // (and to private entries when asked); ties toward the lowest way.
        let pick = |region: WayMask, private_only: bool| -> Option<usize> {
            let mut best: Option<usize> = None;
            for w in region.iter() {
                if !window.contains(&w) {
                    continue;
                }
                if private_only && self.entries[set][w].shared {
                    continue;
                }
                match best {
                    Some(b) if self.entries[set][w].stamp < self.entries[set][b].stamp => {
                        best = Some(w);
                    }
                    None => best = Some(w),
                    _ => {}
                }
            }
            best
        };

        if incoming_shared {
            pick(non_harv, true)
                .or_else(|| pick(harv, true))
                .or_else(|| pick(eff, false))
                .expect("candidate window is non-empty")
        } else {
            pick(harv, true)
                .or_else(|| pick(non_harv, true))
                .or_else(|| pick(eff, false))
                .expect("candidate window is non-empty")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL4: WayMask = WayMask(0b1111);

    fn small(policy: PolicyKind) -> RefCache {
        RefCache::new(1, 4, policy, WayMask::lower(2))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(PolicyKind::Lru);
        assert!(!c.access(10, false, ALL4, false).hit);
        assert!(c.access(10, false, ALL4, false).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn stale_disallowed_copy_is_dropped_with_writeback() {
        let mut c = small(PolicyKind::Lru);
        let harvest_only = WayMask::lower(2);
        let non_harvest = harvest_only.complement(4);
        c.access(7, false, non_harvest, true); // dirty NH copy
        let out = c.access(7, false, harvest_only, false);
        assert!(!out.hit && out.writeback);
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.occupancy(), 1, "no duplicate tag");
    }

    #[test]
    fn hardharvest_steers_by_shared_bit() {
        let mut c = small(PolicyKind::hardharvest_default());
        c.access(1, true, ALL4, false); // shared → empty non-harvest way (2)
        c.access(2, false, ALL4, false); // private → empty harvest way (0)
        let states = c.way_states(0);
        assert!(states[2].valid && states[2].shared);
        assert!(states[0].valid && !states[0].shared);
    }

    #[test]
    fn empty_mask_bypasses_but_counts_the_miss() {
        let mut c = small(PolicyKind::Lru);
        let out = c.access(5, false, WayMask::EMPTY, false);
        assert!(!out.hit);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.occupancy(), 0);
    }
}
