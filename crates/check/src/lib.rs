//! # hh-check — differential oracle and invariant suite
//!
//! The reproduction's hot paths are deliberately clever: the
//! struct-of-arrays [`hh_mem::SetAssocCache`] with packed metadata bytes,
//! the selection-based percentile estimator in [`hh_sim::stats::Samples`],
//! and the memoizing parallel executor in [`hh_core::RunPlan`]. This crate
//! keeps them honest with three tools:
//!
//! * **Reference models** ([`RefCache`], [`RefSamples`],
//!   [`run_cluster_serial`]) — naive, obviously-correct implementations of
//!   the same contracts: an array-of-structs cache transcribing
//!   Algorithm 1 line by line, a sort-everything percentile estimator, and
//!   a serial memo-free cluster executor;
//! * **Differential drivers** ([`diff_cache`], [`diff_samples`],
//!   [`diff_cluster`]) — lockstep replay of recorded or generated
//!   operation traces through both implementations, stopping at the first
//!   divergence and reporting *where* (operation index, set, way states)
//!   rather than merely *that* the runs disagreed;
//! * **Invariants** ([`CachePartition`], [`PercentileMonotone`],
//!   [`SubqueueFifo`], [`ChunkConservation`], [`BeladyUpperBound`]) —
//!   structural rules packaged as [`hh_sim::Invariant`] implementations,
//!   shared by the proptest suites, the `hh-check` binary and unit tests.
//!
//! The `hh-check` binary sweeps all of it — cache traces across
//! geometries, policies and harvest-mask schedules; sample-set edge cases;
//! memo-table collision probes; pooled-vs-serial executor comparisons at
//! several worker counts — and exits non-zero on the first divergence.
//! Run it with `cargo run --release -p hh-check`.
//!
//! By policy (see `DESIGN.md` §10), any PR that optimizes a hot path must
//! leave this suite green; a seeded mutation in the optimized code is
//! expected to produce a pinpointed divergence here.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diff;
pub mod invariants;
pub mod refcache;
pub mod refexec;
pub mod refsamples;

pub use diff::{diff_cache, diff_samples, Divergence, SampleOp};
pub use invariants::{
    to_belady_trace, BeladyUpperBound, CachePartition, ChunkConservation, PercentileMonotone,
    SubqueueFifo, TraceRun,
};
pub use refcache::RefCache;
pub use refexec::{diff_cluster, run_cluster_serial};
pub use refsamples::RefSamples;
