//! Criterion microbenchmarks of the simulator's hot primitives.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hh_hwqueue::{Controller, ControllerConfig, VmKind};
use hh_mem::{Access, AccessKind, CoreMem, Dram, HierarchyConfig, Llc, PageClass, PolicyKind, SetAssocCache, Visibility, WayMask};
use hh_noc::{ControlTree, Mesh2D};
use hh_sim::{CoreId, Cycles, Rng64, VmId};
use hh_workload::{BatchCatalog, RequestPlan, ServiceCatalog, ServiceId};

fn bench_cache_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_access");
    for (name, policy) in [
        ("lru", PolicyKind::Lru),
        ("rrip", PolicyKind::Rrip),
        ("hardharvest", PolicyKind::hardharvest_default()),
    ] {
        g.bench_function(name, |b| {
            let mut cache = SetAssocCache::new(1024, 8, policy, WayMask::lower(4));
            let all = WayMask::all(8);
            let mut rng = Rng64::new(1);
            b.iter(|| {
                let key = rng.below(16384);
                let shared = rng.chance(0.5);
                black_box(cache.access(key, shared, all, false))
            });
        });
    }
    g.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    c.bench_function("hierarchy_access", |b| {
        let cfg = HierarchyConfig::table1();
        let mut mem = CoreMem::new(&cfg, 0.5, PolicyKind::hardharvest_default());
        let mut llc = Llc::new(1024, 16, &[4, 4]);
        let mut dram = Dram::default();
        let mut rng = Rng64::new(2);
        b.iter(|| {
            let a = Access::new(
                VmId(0),
                rng.below(1 << 22),
                AccessKind::DataRead,
                PageClass::Private,
            );
            black_box(mem.access(Cycles::ZERO, a, Visibility::Primary, &mut llc, &mut dram))
        });
    });
}

fn bench_queue_ops(c: &mut Criterion) {
    c.bench_function("controller_enqueue_dequeue", |b| {
        let mut ctrl = Controller::new(ControllerConfig::table1());
        ctrl.register_vm(VmId(0), VmKind::Primary, 4);
        let mut token = 0u64;
        b.iter(|| {
            token += 1;
            ctrl.enqueue(VmId(0), token, Cycles::ZERO);
            let (t, _, _) = ctrl.qm_mut(VmId(0)).dequeue().unwrap();
            ctrl.qm_mut(VmId(0)).complete(t);
        });
    });
}

fn bench_noc(c: &mut Criterion) {
    c.bench_function("mesh_and_tree_latency", |b| {
        let mesh = Mesh2D::table1();
        let tree = ControlTree::table1();
        let mut i = 0u16;
        b.iter(|| {
            i = (i + 1) % 36;
            black_box(mesh.latency(CoreId(i), CoreId(35 - i)));
            black_box(tree.round_trip(CoreId(i)))
        });
    });
}

fn bench_streams(c: &mut Criterion) {
    c.bench_function("request_plan_and_stream", |b| {
        let catalog = ServiceCatalog::socialnet();
        let mut rng = Rng64::new(3);
        let mut inv = 0u64;
        b.iter(|| {
            inv += 1;
            let plan =
                RequestPlan::generate(ServiceId(0), catalog.get(ServiceId(0)), VmId(0), inv, &mut rng);
            let mut n = 0u64;
            for acc in plan.phases[0].stream.iter() {
                n = n.wrapping_add(acc.addr);
            }
            black_box(n)
        });
    });
    c.bench_function("batch_unit_stream", |b| {
        let job = *BatchCatalog::paper().get(0);
        let mut unit = 0u64;
        b.iter(|| {
            unit += 1;
            let mut n = 0u64;
            for acc in job.unit_stream(VmId(8), unit).iter() {
                n = n.wrapping_add(acc.addr);
            }
            black_box(n)
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    c.bench_function("dram_access", |b| {
        let mut dram = Dram::default();
        let mut rng = Rng64::new(4);
        b.iter(|| black_box(dram.access(Cycles::ZERO, rng.below(1 << 30))));
    });
}

criterion_group!(
    benches,
    bench_cache_policies,
    bench_hierarchy,
    bench_queue_ops,
    bench_noc,
    bench_streams,
    bench_dram
);
criterion_main!(benches);
