//! The figure-regeneration bench target: `cargo bench --bench figures`
//! re-derives the data series of every table and figure in the paper's
//! evaluation section and prints them (set `HH_SCALE=paper` for the full
//! evaluation size; the default quick scale keeps `cargo bench` fast).

use hh_bench::{run_figure, scale_from_env, ALL_FIGURES};

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them and
    // accept figure ids if any are given.
    let ids: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with('-'))
        .collect();
    let ids: Vec<&str> = if ids.is_empty() {
        ALL_FIGURES.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };
    let ex = scale_from_env();
    println!(
        "figure harness: {} servers, {} requests/VM, {} rps/VM",
        ex.scale.servers, ex.scale.requests_per_vm, ex.scale.rps_per_vm
    );
    for id in ids {
        let started = std::time::Instant::now();
        println!("\n===== {id} =====");
        println!("{}", run_figure(&ex, id));
        println!("[{id}: {:.1}s]", started.elapsed().as_secs_f64());
    }
}
