//! Shared plumbing for the HardHarvest benchmark harness.
//!
//! The crate ships two bench targets plus a binary:
//!
//! * `benches/substrate.rs` — criterion microbenchmarks of the hot
//!   primitives (cache access under each replacement policy, request-queue
//!   operations, NoC latency math, address-stream generation, DRAM model);
//! * `benches/figures.rs` — the figure harness: regenerates the data series
//!   of **every** table and figure of the paper's evaluation at a reduced
//!   scale (`HH_SCALE=paper` for the full runs) and prints the rows;
//! * `src/bin/figures.rs` — the same harness as a first-class binary with
//!   argument-driven figure selection.

#![warn(missing_docs)]

use hh_core::{Experiments, Scale};

/// Which experiment scale to use, from the `HH_SCALE` environment variable
/// (`quick` by default, `paper` for the full evaluation size).
pub fn scale_from_env() -> Experiments {
    match std::env::var("HH_SCALE").as_deref() {
        Ok("paper") => Experiments::paper(),
        Ok("mini") => Experiments {
            scale: Scale {
                servers: 1,
                requests_per_vm: 60,
                rps_per_vm: 800.0,
            },
            ..Experiments::quick()
        },
        _ => Experiments::quick(),
    }
}

/// The full list of figure identifiers the harness understands.
pub const ALL_FIGURES: &[&str] = &[
    "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16", "fig17", "util", "storage", "fig18", "fig19",
    // Extensions beyond the paper's figures:
    "adaptive", "regions", "overflow", "mshr",
];

/// Runs one figure by name and returns its printable report.
///
/// # Panics
/// Panics on an unknown figure id.
pub fn run_figure(ex: &Experiments, id: &str) -> String {
    match id {
        "table1" => ex.table1().render(),
        "fig2" => ex.fig2().to_table().render(),
        "fig3" => {
            let series = ex.fig3();
            let mut out = String::from("Figure 3 (utilization @30s grain)\n");
            for (i, u) in series.iter().enumerate() {
                out.push_str(&format!("{:>5}s  {:.3}\n", i * 30, u));
            }
            out
        }
        "fig4" => ex.fig4().to_table().render(),
        "fig5" => ex.fig5().to_table().render(),
        "fig6" => {
            let fig = ex.fig6();
            let mut s = fig.to_table().render();
            s.push_str(&format!("\nslowdown (harvest/noharvest): {:.2}x\n", fig.slowdown()));
            s
        }
        "fig7" => ex.fig7().to_table().render(),
        "fig11" => ex.fig11().to_table().render(),
        "fig12" => ex.fig12().to_table().render(),
        "fig13" => ex.fig13().to_table().render(),
        "fig14" => {
            let rows = ex.fig14();
            let mut t = hh_core::Table::new(vec![
                "Figure 14 (L2 hit rate)".into(),
                "LRU".into(),
                "RRIP".into(),
                "HardHarvest".into(),
                "Belady".into(),
            ]);
            for r in &rows {
                t.row_f64(r.service, &[r.lru, r.rrip, r.hardharvest, r.belady]);
            }
            let n = rows.len() as f64;
            t.row_f64(
                "Avg",
                &[
                    rows.iter().map(|r| r.lru).sum::<f64>() / n,
                    rows.iter().map(|r| r.rrip).sum::<f64>() / n,
                    rows.iter().map(|r| r.hardharvest).sum::<f64>() / n,
                    rows.iter().map(|r| r.belady).sum::<f64>() / n,
                ],
            );
            t.render()
        }
        "fig15" => ex.fig15().to_table().render(),
        "fig16" => ex.fig16().to_table().render(),
        "fig17" => ex.fig17().to_table().render(),
        "util" => {
            let mut t = hh_core::Table::new(vec![
                "Section 6.7".into(),
                "avg busy cores (of 36)".into(),
            ]);
            for (name, cores) in ex.utilization() {
                t.row_f64(&name, &[cores]);
            }
            t.render()
        }
        "storage" => {
            let s = ex.storage();
            let sram = hh_hwqueue::storage::StorageCost::table1_chip_sram_bytes();
            let mut t = hh_core::Table::new(vec!["Section 6.8".into(), "value".into()]);
            t.row(vec![
                "controller storage".into(),
                format!("{:.2} KB (paper: 18.9 KB)", s.controller_bytes() as f64 / 1024.0),
            ]);
            t.row(vec![
                "controller per core".into(),
                format!("{:.2} KB (paper: 0.53 KB)", s.controller_bytes_per_core() / 1024.0),
            ]);
            t.row(vec![
                "Shared bits/server".into(),
                format!("{:.1} KB (paper: 67.8 KB)", s.shared_bit_bytes() as f64 / 1024.0),
            ]);
            t.row(vec![
                "area overhead".into(),
                format!("{:.3}% (paper: 0.19%)", s.area_fraction(sram) * 100.0),
            ]);
            t.row(vec![
                "power overhead".into(),
                format!("{:.3}% (paper: 0.16%)", s.power_fraction(sram) * 100.0),
            ]);
            t.render()
        }
        "fig18" => ex.fig18().to_table().render(),
        "fig19" => ex.fig19().to_table().render(),
        "adaptive" => ex.adaptive().render(),
        "regions" => ex.region_sweep().to_table().render(),
        "overflow" => ex.overflow_pressure().render(),
        "mshr" => ex.mshr_sweep().to_table().render(),
        other => panic!("unknown figure id: {other}"),
    }
}

/// Drains every collected trace session plus the executor trace and writes
/// the exports: Perfetto `trace_event` JSON at `path` and a JSONL metrics
/// snapshot at `<path>.metrics.jsonl`. Returns the human summary table.
///
/// # Errors
/// Propagates I/O errors from writing either file.
pub fn export_trace(path: &str) -> std::io::Result<String> {
    let sessions = hh_trace::take_sessions();
    let exec = hh_trace::exec::take();
    std::fs::write(path, hh_trace::export::perfetto_json(&sessions, &exec))?;
    std::fs::write(
        format!("{path}.metrics.jsonl"),
        hh_trace::export::metrics_jsonl(&sessions, &exec),
    )?;
    Ok(hh_trace::export::summary_table(&sessions, &exec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_are_known_ids() {
        assert_eq!(ALL_FIGURES.len(), 22);
        assert!(ALL_FIGURES.contains(&"fig11"));
    }

    #[test]
    fn cheap_figures_render() {
        let ex = Experiments::quick();
        for id in ["table1", "fig2", "fig3", "storage"] {
            let s = run_figure(&ex, id);
            assert!(!s.is_empty(), "{id}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown figure")]
    fn unknown_figure_panics() {
        run_figure(&Experiments::quick(), "fig99");
    }
}
