//! Perf smoke harness: times every figure and writes `BENCH_figures.json`.
//!
//! Runs each figure of [`hh_bench::ALL_FIGURES`] once at the `HH_SCALE`
//! scale (quick by default), records per-figure wall time in
//! milliseconds, and writes a flat JSON object `{figure: wall_ms, ...,
//! "total": wall_ms}` so successive PRs have a comparable perf
//! trajectory. See EXPERIMENTS.md §perf smoke.
//!
//! Environment:
//! * `HH_SCALE` — `quick` (default) | `paper` | `mini`
//! * `HH_WORKERS` — worker-pool size for the cluster executor
//! * `HH_BENCH_OUT` — output path (default `BENCH_figures.json`)

use hh_bench::{run_figure, scale_from_env, ALL_FIGURES};
use std::time::Instant;

fn main() {
    let ex = scale_from_env();
    let out_path =
        std::env::var("HH_BENCH_OUT").unwrap_or_else(|_| "BENCH_figures.json".to_string());
    eprintln!(
        "perfsmoke: {} servers, {} requests/VM, {} rps/VM -> {}",
        ex.scale.servers, ex.scale.requests_per_vm, ex.scale.rps_per_vm, out_path
    );

    let mut timings: Vec<(&str, f64)> = Vec::with_capacity(ALL_FIGURES.len());
    let total_start = Instant::now();
    for &id in ALL_FIGURES {
        let start = Instant::now();
        let table = run_figure(&ex, id);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&table);
        eprintln!("  {id:<10} {ms:>10.1} ms");
        timings.push((id, ms));
    }
    let total_ms = total_start.elapsed().as_secs_f64() * 1e3;
    eprintln!("  {:<10} {total_ms:>10.1} ms", "total");

    // Hand-rolled JSON: flat string->number object, one key per line.
    let mut json = String::from("{\n");
    for (id, ms) in &timings {
        json.push_str(&format!("  \"{id}\": {ms:.1},\n"));
    }
    json.push_str(&format!("  \"total\": {total_ms:.1}\n}}\n"));
    std::fs::write(&out_path, json).expect("write BENCH_figures.json");
    println!("wrote {out_path}");
}
