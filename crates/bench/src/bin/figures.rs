//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures [fig-id ...]          # default: all
//! HH_SCALE=paper figures        # full evaluation scale (slow)
//! HH_SCALE=mini figures fig11   # smallest smoke scale
//! HH_OUT=results figures        # additionally write results/<id>.txt
//! HH_TRACE=out.json figures     # also export a Perfetto trace + metrics
//! ```

use hh_bench::{export_trace, run_figure, scale_from_env, ALL_FIGURES};

fn main() {
    let trace_path = hh_trace::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        ALL_FIGURES.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let out_dir = std::env::var_os("HH_OUT");
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).expect("create HH_OUT directory");
    }
    let ex = scale_from_env();
    eprintln!(
        "# scale: {} servers, {} req/VM, {} rps/VM",
        ex.scale.servers, ex.scale.requests_per_vm, ex.scale.rps_per_vm
    );
    for id in ids {
        let started = std::time::Instant::now();
        println!("\n===== {id} =====");
        let report = run_figure(&ex, id);
        println!("{report}");
        if let Some(dir) = &out_dir {
            let path = std::path::Path::new(dir).join(format!("{id}.txt"));
            std::fs::write(&path, &report).expect("write figure report");
        }
        eprintln!("# {id} took {:.1}s", started.elapsed().as_secs_f64());
    }
    if let Some(path) = trace_path {
        let summary = export_trace(&path).expect("write HH_TRACE exports");
        eprint!("{summary}");
        eprintln!("# trace: {path} (+ {path}.metrics.jsonl)");
    }
}
