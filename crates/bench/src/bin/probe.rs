//! Calibration probe: one server, three headline systems, the headline
//! metrics. Used to tune the latency/agent models against the paper's
//! anchors (see DESIGN.md section 8) without running a full figure.
//!
//! ```text
//! cargo run --release -p hh-bench --bin probe
//! ```

fn main() {
    for sys in [hh_core::SystemSpec::no_harvest(), hh_core::SystemSpec::harvest_block(), hh_core::SystemSpec::hardharvest_block()] {
        let t0 = std::time::Instant::now();
        let scale = hh_core::Scale { servers: 1, requests_per_vm: 200, rps_per_vm: 1000.0 };
        let m = hh_core::run_cluster(sys, scale, 99);
        let mut lat = m.pooled_latency_ms();
        let sm = &m.servers()[0].services;
        let mean = |f: &dyn Fn(&hh_core::ServerMetrics) -> f64| f(&m.servers()[0]);
        let _ = mean;
        let (mut re, mut fl, mut ex, mut io, mut done) = (0.0, 0.0, 0.0, 0.0, 0u64);
        for s in sm {
            re += s.reassign_wait.as_ms();
            fl += s.flush_wait.as_ms();
            ex += s.exec.as_ms();
            io += s.io.as_ms();
            done += s.completed;
        }
        let d = done.max(1) as f64;
        println!("{:<18} {:>6.1}s  p50={:.3}ms p99={:.3}ms busy={:.1} units={} reassign={} | per-req: exec={:.3} io={:.3} re={:.3} fl={:.3}",
            sys.name, t0.elapsed().as_secs_f64(), lat.median(), lat.p99(),
            m.avg_busy_cores(), m.servers()[0].batch_units, m.servers()[0].reassignments,
            ex / d, io / d, re / d, fl / d);
    }
}
