//! Runs figures with tracing force-enabled and exports the trace.
//!
//! ```text
//! trace                         # trace fig11 → hh-trace.json
//! trace --out t.json fig4 fig11 # choose output path and figures
//! trace --summary               # also print the aggregate metric table
//! trace --validate              # re-parse the Perfetto output, exit 1 on
//!                               # shape errors (used by CI)
//! HH_SCALE=mini trace           # scales exactly like the figures binary
//! ```
//!
//! Unlike `figures` — which only traces when `HH_TRACE=<path>` is set —
//! this binary always traces; `--out` (default `hh-trace.json`) plays the
//! role of the `HH_TRACE` path.

use hh_bench::{run_figure, scale_from_env, ALL_FIGURES};
use hh_trace::export::{metrics_jsonl, perfetto_json, summary_table, validate_perfetto};

fn main() {
    let mut out = String::from("hh-trace.json");
    let mut want_summary = false;
    let mut want_validate = false;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out = args.next().expect("--out needs a path"),
            "--summary" => want_summary = true,
            "--validate" => want_validate = true,
            "--help" | "-h" => {
                eprintln!("usage: trace [--out PATH] [--summary] [--validate] [fig-id ...]");
                eprintln!("figures: {}", ALL_FIGURES.join(" "));
                return;
            }
            other => ids.push(other.to_owned()),
        }
    }
    if ids.is_empty() {
        ids.push("fig11".to_owned());
    }

    hh_trace::set_enabled(true);
    let ex = scale_from_env();
    eprintln!(
        "# scale: {} servers, {} req/VM, {} rps/VM",
        ex.scale.servers, ex.scale.requests_per_vm, ex.scale.rps_per_vm
    );
    for id in &ids {
        println!("\n===== {id} =====");
        println!("{}", run_figure(&ex, id));
    }

    let sessions = hh_trace::take_sessions();
    let exec = hh_trace::exec::take();
    let text = perfetto_json(&sessions, &exec);
    std::fs::write(&out, &text).expect("write Perfetto trace");
    let metrics_path = format!("{out}.metrics.jsonl");
    std::fs::write(&metrics_path, metrics_jsonl(&sessions, &exec)).expect("write metrics JSONL");
    eprintln!("# trace: {out} (+ {metrics_path})");

    if want_validate {
        match validate_perfetto(&text) {
            Ok(report) => eprintln!(
                "# validated: {} events ({} spans, {} instants, {} counters, {} metadata) across {} processes",
                report.events,
                report.complete,
                report.instants,
                report.counters,
                report.metadata,
                report.pids
            ),
            Err(e) => {
                eprintln!("# INVALID Perfetto trace: {e}");
                std::process::exit(1);
            }
        }
    }
    if want_summary {
        print!("{}", summary_table(&sessions, &exec));
    }
}
