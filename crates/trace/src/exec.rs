//! Executor spans: wall-clock instrumentation for the `RunPlan` memoizing
//! worker pool (`exec.*` namespace).
//!
//! Unlike the per-session sim tracers — which record *simulated* time and
//! are owned by one `ServerSim` — executor spans measure *host* wall time
//! across threads, so they live in process-global state. They are exported
//! as a separate Perfetto process so host time never mixes with sim time.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One executor work item (a memo-table cell or a per-server sim job).
#[derive(Debug, Clone)]
pub struct ExecSpan {
    /// Short label, e.g. the system name of the cluster config.
    pub label: String,
    /// Start, µs since the process-wide trace epoch.
    pub start_us: f64,
    /// Duration in µs.
    pub dur_us: f64,
    /// True when the memo table satisfied the run without simulating.
    pub memo_hit: bool,
}

/// Everything the executor recorded, drained by [`take`].
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    /// All completed spans, in completion order.
    pub spans: Vec<ExecSpan>,
    /// `(wall µs, busy workers)` samples taken at every occupancy change.
    pub occupancy: Vec<(f64, i64)>,
}

impl ExecTrace {
    /// Number of memo hits among the recorded spans.
    pub fn memo_hits(&self) -> usize {
        self.spans.iter().filter(|s| s.memo_hit).count()
    }

    /// Peak concurrent workers observed.
    pub fn peak_workers(&self) -> i64 {
        self.occupancy.iter().map(|&(_, n)| n).max().unwrap_or(0)
    }
}

// hh-lint: allow(wall-clock-in-sim): the exec collector is the one
// sanctioned host-time consumer — it measures executor spans for the
// Perfetto timeline and never feeds simulated time.
static EPOCH: OnceLock<Instant> = OnceLock::new();
static SPANS: Mutex<Vec<ExecSpan>> = Mutex::new(Vec::new());
static OCCUPANCY: Mutex<Vec<(f64, i64)>> = Mutex::new(Vec::new());
static ACTIVE: AtomicI64 = AtomicI64::new(0);

/// Microseconds elapsed since the first call in this process.
pub fn wall_us() -> f64 {
    // hh-lint: allow(wall-clock-in-sim): executor-span timing is host
    // time by definition; sim time flows through Cycles, never this.
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e6
}

/// Records a completed executor span ending now.
pub fn record_span(label: impl Into<String>, start_us: f64, memo_hit: bool) {
    let span = ExecSpan {
        label: label.into(),
        start_us,
        dur_us: (wall_us() - start_us).max(0.0),
        memo_hit,
    };
    SPANS.lock().unwrap().push(span);
}

/// Marks one worker as busy and samples the occupancy gauge.
pub fn worker_begin() {
    let n = ACTIVE.fetch_add(1, Ordering::SeqCst) + 1;
    OCCUPANCY.lock().unwrap().push((wall_us(), n));
}

/// Marks one worker as idle again and samples the occupancy gauge.
pub fn worker_end() {
    let n = ACTIVE.fetch_sub(1, Ordering::SeqCst) - 1;
    OCCUPANCY.lock().unwrap().push((wall_us(), n));
}

/// Drains everything recorded so far.
pub fn take() -> ExecTrace {
    ExecTrace {
        spans: std::mem::take(&mut *SPANS.lock().unwrap()),
        occupancy: std::mem::take(&mut *OCCUPANCY.lock().unwrap()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_occupancy_round_trip() {
        // Drain anything left over from other tests in this process.
        let _ = take();
        let t0 = wall_us();
        worker_begin();
        record_span("unit-test", t0, false);
        record_span("unit-test-hit", wall_us(), true);
        worker_end();
        let tr = take();
        assert!(tr.spans.iter().any(|s| s.label == "unit-test"));
        assert_eq!(tr.memo_hits(), 1);
        assert!(tr.peak_workers() >= 1);
        assert!(tr.spans.iter().all(|s| s.dur_us >= 0.0));
        // Drained: a second take is empty of our spans.
        assert!(take().spans.is_empty());
    }
}
