//! # hh-trace — structured tracing for the HardHarvest simulator
//!
//! Three layers, all designed so that tracing can never perturb the
//! simulation itself (see DESIGN.md §11):
//!
//! * **Event tracer** — each `ServerSim` owns one [`TraceSession`] holding a
//!   bounded [`EventRing`] of typed [`TraceEvent`]s. Events carry simulated
//!   time; recording never draws randomness, never reorders the event
//!   queue, and the ring is bounded so memory stays flat.
//! * **Metric registry** — per-session [`Registry`] of monotonic counters,
//!   time-weighted gauges (reusing [`hh_sim::stats::TimeWeighted`]) and
//!   log-bucketed histograms, namespaced `server.*` / `hwqueue.*` /
//!   `mem.*` / `exec.*`.
//! * **Exporters** — Chrome/Perfetto `trace_event` JSON, a JSONL metrics
//!   snapshot, and a human summary table ([`export`]), plus host-wall-time
//!   executor spans for the `RunPlan` worker pool ([`exec`]).
//!
//! ## Cost model
//!
//! With the `trace` cargo feature off, [`COMPILED`] is `false` and every
//! `trace_*!` macro expands to `if false { .. }` — dead code the optimizer
//! deletes. With the feature on (the default) but tracing not enabled at
//! runtime, each instrumented simulator holds `trace: None` and a call
//! site costs exactly one branch. Runtime enablement is process-global:
//! set `HH_TRACE=<path>` (see [`init_from_env`]) or call [`set_enabled`].
//!
//! ## Determinism
//!
//! The tracer only *observes*: it reads `self.now` and sim state, never
//! the RNG, and sessions are collected at the end of a run. `hh-check`
//! and the figure tables are byte-identical with tracing on and off.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod exec;
pub mod export;
pub mod json;
pub mod registry;
pub mod ring;

pub use event::{FlushScope, ReassignKind, TraceEvent, NO_INDEX};
pub use export::{validate_perfetto, ValidationReport};
pub use registry::Registry;
pub use ring::EventRing;

use hh_sim::Cycles;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// True when the crate was built with the `trace` feature. Referenced as
/// `$crate::COMPILED` inside the macros so the check is resolved against
/// *this* crate's features, not the caller's.
pub const COMPILED: bool = cfg!(feature = "trace");

/// Default per-session ring capacity (overridable via `HH_TRACE_CAP`).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when tracing is compiled in *and* enabled at runtime.
#[inline]
pub fn enabled() -> bool {
    COMPILED && ENABLED.load(Ordering::Relaxed)
}

/// Turns runtime tracing on or off (no-op without the `trace` feature).
pub fn set_enabled(on: bool) {
    ENABLED.store(on && COMPILED, Ordering::Relaxed);
}

/// Reads `HH_TRACE`. When set (to an output path), enables tracing and
/// returns the path; unset or empty leaves tracing off.
pub fn init_from_env() -> Option<String> {
    let path = std::env::var("HH_TRACE").ok()?;
    if path.is_empty() {
        return None;
    }
    set_enabled(true);
    Some(path)
}

fn ring_capacity_from_env() -> usize {
    std::env::var("HH_TRACE_CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_RING_CAPACITY)
}

/// One simulator's trace: a bounded event ring plus a metric registry.
///
/// Owned by the instrumented component (e.g. `ServerSim`) as an
/// `Option<Box<TraceSession>>`; `None` means tracing is off and every
/// instrumentation site reduces to one branch.
#[derive(Debug)]
pub struct TraceSession {
    label: String,
    ring: EventRing<TraceEvent>,
    registry: Registry,
    summary_json: Option<String>,
}

impl TraceSession {
    /// Creates a session labeled `label` (shown as the Perfetto process
    /// name) with the ring capacity from `HH_TRACE_CAP` or the default.
    pub fn new(label: impl Into<String>) -> Self {
        TraceSession::with_capacity(label, ring_capacity_from_env())
    }

    /// Creates a session with an explicit ring capacity.
    pub fn with_capacity(label: impl Into<String>, cap: usize) -> Self {
        TraceSession {
            label: label.into(),
            ring: EventRing::new(cap),
            registry: Registry::new(),
            summary_json: None,
        }
    }

    /// Records one event.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        self.ring.push(ev);
    }

    /// Adds to a monotonic counter.
    #[inline]
    pub fn count(&mut self, name: &str, add: u64) {
        self.registry.counter_add(name, add);
    }

    /// Sets a time-weighted gauge and records a [`TraceEvent::GaugeSample`]
    /// so the value renders as a Perfetto counter track.
    #[inline]
    pub fn gauge(&mut self, name: &'static str, index: u32, now: Cycles, value: f64) {
        if index == NO_INDEX {
            self.registry.gauge_set(name, now, value);
        } else {
            self.registry.gauge_set(&format!("{name}.{index}"), now, value);
        }
        self.ring.push(TraceEvent::GaugeSample { t: now, name, index, value });
    }

    /// Records into a log-bucketed histogram.
    #[inline]
    pub fn hist(&mut self, name: &str, value: f64) {
        self.registry.hist_record(name, value);
    }

    /// Attaches a pre-rendered JSON metrics summary (embedded verbatim in
    /// the JSONL export).
    pub fn set_summary_json(&mut self, json: String) {
        self.summary_json = Some(json);
    }

    /// Read access to the metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The session label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Events currently held (oldest first).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Seals the session at simulated time `end`.
    pub fn finish(self, end: Cycles) -> FinishedSession {
        FinishedSession {
            label: self.label,
            end,
            dropped: self.ring.dropped(),
            events: self.ring.into_vec(),
            registry: self.registry,
            summary_json: self.summary_json,
        }
    }
}

/// A sealed [`TraceSession`], ready for export.
#[derive(Debug)]
pub struct FinishedSession {
    /// Session label (Perfetto process name).
    pub label: String,
    /// Simulated end time.
    pub end: Cycles,
    /// Recorded events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events evicted from the bounded ring.
    pub dropped: u64,
    /// The session's metric registry.
    pub registry: Registry,
    /// Optional pre-rendered metrics summary JSON.
    pub summary_json: Option<String>,
}

static SESSIONS: Mutex<Vec<FinishedSession>> = Mutex::new(Vec::new());

/// Submits a finished session to the process-global collector.
pub fn submit(session: FinishedSession) {
    SESSIONS.lock().unwrap().push(session);
}

/// Drains all collected sessions, sorted by label.
///
/// Worker threads submit in nondeterministic order; sorting here makes
/// every export deterministic for a given set of runs.
pub fn take_sessions() -> Vec<FinishedSession> {
    let mut v = std::mem::take(&mut *SESSIONS.lock().unwrap());
    v.sort_by(|a, b| a.label.cmp(&b.label));
    v
}

/// Number of sessions currently collected.
pub fn session_count() -> usize {
    SESSIONS.lock().unwrap().len()
}

/// Records a [`TraceEvent`] into an `Option<Box<TraceSession>>`-shaped
/// slot. Free with the `trace` feature off; one branch when the slot is
/// `None`. The event expression is only evaluated when recording.
#[macro_export]
macro_rules! trace_event {
    ($slot:expr, $ev:expr) => {
        if $crate::COMPILED {
            if let Some(__s) = ($slot).as_mut() {
                __s.record($ev);
            }
        }
    };
}

/// Adds to a session counter through an optional slot (see [`trace_event!`]).
#[macro_export]
macro_rules! trace_count {
    ($slot:expr, $name:expr, $add:expr) => {
        if $crate::COMPILED {
            if let Some(__s) = ($slot).as_mut() {
                __s.count($name, $add);
            }
        }
    };
}

/// Sets a session gauge through an optional slot (see [`trace_event!`]).
/// `$index` is a per-VM/core discriminator or [`NO_INDEX`].
#[macro_export]
macro_rules! trace_gauge {
    ($slot:expr, $name:expr, $index:expr, $now:expr, $value:expr) => {
        if $crate::COMPILED {
            if let Some(__s) = ($slot).as_mut() {
                __s.gauge($name, $index, $now, $value);
            }
        }
    };
}

/// Records into a session histogram through an optional slot
/// (see [`trace_event!`]).
#[macro_export]
macro_rules! trace_hist {
    ($slot:expr, $name:expr, $value:expr) => {
        if $crate::COMPILED {
            if let Some(__s) = ($slot).as_mut() {
                __s.hist($name, $value);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macros_are_inert_on_none() {
        let mut slot: Option<Box<TraceSession>> = None;
        // Must compile and do nothing; the payload expression is lazy, so
        // a diverging expression inside is fine when the slot is None.
        trace_count!(slot, "server.x", 1);
        trace_event!(
            slot,
            TraceEvent::RequestArrival { t: Cycles::new(1), vm: 0, token: 0 }
        );
        trace_gauge!(slot, "server.g", NO_INDEX, Cycles::new(1), 1.0);
        trace_hist!(slot, "server.h", 1.0);
        assert!(slot.is_none());
    }

    #[test]
    fn macros_record_through_some() {
        let mut slot = Some(Box::new(TraceSession::with_capacity("t", 16)));
        trace_count!(slot, "server.x", 2);
        trace_count!(slot, "server.x", 3);
        trace_event!(
            slot,
            TraceEvent::RequestArrival { t: Cycles::new(5), vm: 1, token: 9 }
        );
        trace_gauge!(slot, "server.busy", NO_INDEX, Cycles::new(5), 2.0);
        trace_hist!(slot, "server.lat", 0.5);
        let s = slot.unwrap();
        assert_eq!(s.registry().counter("server.x"), 5);
        assert_eq!(s.events().count(), 2, "arrival + gauge sample");
        let fin = s.finish(Cycles::new(100));
        assert_eq!(fin.events.len(), 2);
        assert_eq!(fin.dropped, 0);
        assert!(fin.registry.hist("server.lat").is_some());
    }

    #[test]
    fn indexed_gauges_get_suffixed_registry_names() {
        let mut s = TraceSession::with_capacity("t", 16);
        s.gauge("hwqueue.ready_depth", 3, Cycles::new(10), 7.0);
        assert!(s.registry().gauge("hwqueue.ready_depth.3").is_some());
        assert!(s.registry().gauge("hwqueue.ready_depth").is_none());
    }

    #[test]
    fn enabled_requires_compiled_and_runtime_flag() {
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert_eq!(enabled(), COMPILED);
        set_enabled(false);
    }

    #[test]
    fn collector_sorts_by_label() {
        // The collector is process-global; drain first in case another
        // test left sessions behind.
        let _ = take_sessions();
        submit(TraceSession::with_capacity("b", 4).finish(Cycles::new(1)));
        submit(TraceSession::with_capacity("a", 4).finish(Cycles::new(1)));
        let got = take_sessions();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].label, "a");
        assert_eq!(got[1].label, "b");
        assert_eq!(session_count(), 0);
    }
}
