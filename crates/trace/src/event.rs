//! Typed trace events.
//!
//! Every event carries simulated time in [`Cycles`]; the exporters convert
//! to microseconds for Perfetto. Events are plain data — recording one never
//! allocates except for the rare [`TraceEvent::InvariantViolation`].

use hh_sim::Cycles;

/// `index` value meaning "this gauge has no per-VM/per-core index".
pub const NO_INDEX: u32 = u32::MAX;

/// Which direction a core-reassignment transition moves a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassignKind {
    /// Primary VM lends an idle core to the harvest VM.
    Lend,
    /// Primary VM reclaims a harvested core (the paper's reclamation interrupt).
    Reclaim,
    /// Harvest VM attaches a buffer core.
    BufferAttach,
    /// A harvested core drains back to the buffer pool.
    ReturnToBuffer,
}

impl ReassignKind {
    /// Short lowercase label used in exported track names.
    pub fn name(self) -> &'static str {
        match self {
            ReassignKind::Lend => "lend",
            ReassignKind::Reclaim => "reclaim",
            ReassignKind::BufferAttach => "buffer-attach",
            ReassignKind::ReturnToBuffer => "return-to-buffer",
        }
    }
}

/// Which part of a cache a flush covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushScope {
    /// Only the harvest-visible region (HardHarvest's partitioned flush).
    HarvestRegion,
    /// The whole private hierarchy (software harvesting / buffer return).
    Full,
}

impl FlushScope {
    /// Short label used in exported span names.
    pub fn name(self) -> &'static str {
        match self {
            FlushScope::HarvestRegion => "harvest-region",
            FlushScope::Full => "full",
        }
    }
}

/// One structured simulator event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A request entered the server (before queueing).
    RequestArrival {
        /// Arrival time.
        t: Cycles,
        /// Destination VM.
        vm: u32,
        /// Request token (unique within a run).
        token: u64,
    },
    /// A request finished its last phase.
    RequestComplete {
        /// Completion time.
        t: Cycles,
        /// Owning VM.
        vm: u32,
        /// Core that ran the final phase.
        core: u32,
        /// Request token.
        token: u64,
        /// End-to-end latency (arrival to completion).
        latency: Cycles,
    },
    /// A request blocked on I/O between phases.
    RequestBlocked {
        /// Block time.
        t: Cycles,
        /// Core the request was running on.
        core: u32,
        /// Request token.
        token: u64,
        /// I/O wait duration.
        io: Cycles,
    },
    /// One compute phase occupying a core (complete span).
    PhaseSpan {
        /// Span start (includes dispatch lead-in).
        start: Cycles,
        /// Span duration.
        dur: Cycles,
        /// Core that ran it.
        core: u32,
        /// Owning VM.
        vm: u32,
        /// Request token.
        token: u64,
    },
    /// One batch work unit occupying a harvested core.
    UnitSpan {
        /// Span start.
        start: Cycles,
        /// Span duration.
        dur: Cycles,
        /// Core that ran it.
        core: u32,
    },
    /// Instant marker for a core changing hands.
    Reassign {
        /// Event time.
        t: Cycles,
        /// Core being moved.
        core: u32,
        /// Transition direction.
        kind: ReassignKind,
        /// Blocking cost charged on the critical path.
        cost: Cycles,
    },
    /// The blocking window of a core transition (complete span).
    TransitionSpan {
        /// Span start.
        start: Cycles,
        /// Span duration (the blocking part of the switch cost).
        dur: Cycles,
        /// Core in transition.
        core: u32,
        /// Transition direction.
        kind: ReassignKind,
    },
    /// A cache flush (complete span; `background` means off the critical path).
    FlushSpan {
        /// Span start.
        start: Cycles,
        /// Flush duration.
        dur: Cycles,
        /// Core whose hierarchy flushed.
        core: u32,
        /// Region flushed.
        scope: FlushScope,
        /// True when the flush overlaps execution (hidden cost).
        background: bool,
        /// Cache lines actually dropped.
        dropped_lines: u64,
    },
    /// A core's harvest region was invalidated, starting a new cache epoch.
    CacheEpoch {
        /// Event time.
        t: Cycles,
        /// Core whose region was invalidated.
        core: u32,
        /// Monotonic per-core epoch number.
        epoch: u64,
        /// Lines dropped by the invalidation.
        dropped_lines: u64,
    },
    /// A request token entered a subqueue.
    Enqueue {
        /// Event time.
        t: Cycles,
        /// Destination VM / subqueue.
        vm: u32,
        /// Request token.
        token: u64,
        /// Ready-queue depth after the enqueue.
        depth: u32,
        /// True when the hardware queue was full and the token spilled
        /// to the memory overflow area.
        overflow: bool,
    },
    /// The queue manager dispatched a token to a core.
    Dispatch {
        /// Event time.
        t: Cycles,
        /// Source VM / subqueue.
        vm: u32,
        /// Core receiving the token.
        core: u32,
        /// Request token.
        token: u64,
        /// Ready-queue depth after the dispatch.
        depth: u32,
    },
    /// A time-weighted gauge changed value (exported as a counter track).
    GaugeSample {
        /// Event time.
        t: Cycles,
        /// Namespaced gauge name (e.g. `server.busy_cores`).
        name: &'static str,
        /// Per-VM/core index, or [`NO_INDEX`].
        index: u32,
        /// New gauge value.
        value: f64,
    },
    /// A debug-mode invariant check failed (recorded just before panic).
    InvariantViolation {
        /// Event time.
        t: Cycles,
        /// Human-readable violation report.
        message: String,
    },
}

impl TraceEvent {
    /// The event's (start) timestamp in simulated cycles.
    pub fn timestamp(&self) -> Cycles {
        match *self {
            TraceEvent::RequestArrival { t, .. }
            | TraceEvent::RequestComplete { t, .. }
            | TraceEvent::RequestBlocked { t, .. }
            | TraceEvent::Reassign { t, .. }
            | TraceEvent::CacheEpoch { t, .. }
            | TraceEvent::Enqueue { t, .. }
            | TraceEvent::Dispatch { t, .. }
            | TraceEvent::GaugeSample { t, .. }
            | TraceEvent::InvariantViolation { t, .. } => t,
            TraceEvent::PhaseSpan { start, .. }
            | TraceEvent::UnitSpan { start, .. }
            | TraceEvent::TransitionSpan { start, .. }
            | TraceEvent::FlushSpan { start, .. } => start,
        }
    }
}
