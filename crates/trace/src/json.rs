//! Minimal JSON parser used to validate exported traces.
//!
//! The workspace's `serde` dependency is an offline no-op shim, so trace
//! files are emitted by hand and validated by this small recursive-descent
//! parser. It accepts standard JSON (RFC 8259) minus `\u` surrogate pairs
//! beyond the BMP — more than enough for the files this crate writes.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys sorted by `BTreeMap`).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key` when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements when `self` is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value when `self` is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<Json, String> {
    let b = text.as_bytes();
    let mut p = Parser { b, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != b.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("non-BMP \\u escape")?);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid).
                    let rest = &self.b[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Escapes a string for embedding in emitted JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (non-finite values become `0`,
/// which JSON cannot represent).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip representation; integers print without ".0".
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"nested": true, "s": "x\ny"}, "n": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("n"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("'single'").is_err());
    }

    #[test]
    fn escape_and_parse_agree() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn num_formats_cleanly() {
        assert_eq!(num(3.0), "3");
        assert_eq!(num(3.25), "3.25");
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
    }
}
