//! Counter / gauge / histogram registry.
//!
//! Metrics are named `namespace.metric` where the namespace identifies the
//! owning subsystem (`server.*`, `hwqueue.*`, `mem.*`, `exec.*`). Storage is
//! a `BTreeMap` so exports iterate in a deterministic order regardless of
//! insertion order.

use hh_sim::stats::{Histogram, TimeWeighted};
use hh_sim::Cycles;
use std::collections::BTreeMap;

/// Default histogram range: 1 ns to 10 s expressed in microseconds, ~2.9%
/// relative resolution. Wide enough for both reclamation latencies (µs)
/// and request latencies (ms).
const HIST_MIN: f64 = 1e-3;
const HIST_MAX: f64 = 1e7;
const HIST_BINS: usize = 80;

/// Per-session metric store: monotonic counters, time-weighted gauges
/// (reusing [`TimeWeighted`]), and log-bucketed [`Histogram`]s.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, TimeWeighted>,
    hists: BTreeMap<String, Histogram>,
}

fn check_name(name: &str) {
    debug_assert!(
        name.contains('.'),
        "metric name {name:?} must be namespaced as `subsystem.metric`"
    );
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `add` to the named monotonic counter, creating it at zero.
    pub fn counter_add(&mut self, name: &str, add: u64) {
        check_name(name);
        if let Some(c) = self.counters.get_mut(name) {
            *c += add;
        } else {
            self.counters.insert(name.to_owned(), add);
        }
    }

    /// Current value of a counter (zero when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named time-weighted gauge to `value` at simulated time `now`.
    pub fn gauge_set(&mut self, name: &str, now: Cycles, value: f64) {
        check_name(name);
        if let Some(g) = self.gauges.get_mut(name) {
            g.set(now, value);
        } else {
            let mut g = TimeWeighted::new();
            g.set(now, value);
            self.gauges.insert(name.to_owned(), g);
        }
    }

    /// The named gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<&TimeWeighted> {
        self.gauges.get(name)
    }

    /// Records `value` into the named histogram (default log-bucketed
    /// range, suitable for microsecond-denominated durations).
    pub fn hist_record(&mut self, name: &str, value: f64) {
        check_name(name);
        self.hists
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(HIST_MIN, HIST_MAX, HIST_BINS))
            .record(value);
    }

    /// The named histogram, if anything was ever recorded into it.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &TimeWeighted)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = Registry::new();
        r.counter_add("server.reassignments", 2);
        r.counter_add("server.reassignments", 3);
        assert_eq!(r.counter("server.reassignments"), 5);
        assert_eq!(r.counter("server.never_touched"), 0);
    }

    #[test]
    fn gauges_time_weight() {
        let mut r = Registry::new();
        r.gauge_set("server.busy_cores", Cycles::new(0), 4.0);
        r.gauge_set("server.busy_cores", Cycles::new(100), 0.0);
        let g = r.gauge("server.busy_cores").unwrap();
        assert_eq!(g.level(), 0.0);
        assert!((g.average(Cycles::new(200)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hist_records_quantiles() {
        let mut r = Registry::new();
        for v in 1..=100 {
            r.hist_record("server.latency_us", v as f64);
        }
        let h = r.hist("server.latency_us").unwrap();
        assert_eq!(h.total(), 100);
        let p50 = h.quantile(0.5);
        assert!(p50 > 30.0 && p50 < 80.0, "p50 {p50}");
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut r = Registry::new();
        r.counter_add("z.last", 1);
        r.counter_add("a.first", 1);
        r.counter_add("m.mid", 1);
        let names: Vec<_> = r.counters().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
    }
}
