//! Trace exporters: Chrome/Perfetto `trace_event` JSON, a JSONL metrics
//! snapshot, and a human-readable summary table — plus a shape validator
//! for the Perfetto output (used by tests and CI).
//!
//! Layout of the Perfetto export: each finished sim session becomes one
//! *process* (pid ≥ 1) whose timeline is **simulated** time (cycles → µs);
//! per-core activity lands on thread tracks (`tid = core + 1`), request
//! and queue events on `tid 0`. Executor spans become one extra process
//! on **host wall** time, so the two clock domains never share a track.

use crate::event::{TraceEvent, NO_INDEX};
use crate::exec::ExecTrace;
use crate::json::{self, escape, num, Json};
use crate::FinishedSession;
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn ts(c: hh_sim::Cycles) -> String {
    format!("{:.3}", c.as_us())
}

fn gauge_track(name: &str, index: u32) -> String {
    if index == NO_INDEX {
        name.to_owned()
    } else {
        format!("{name}.{index}")
    }
}

/// Renders sessions plus the executor trace as Chrome `trace_event` JSON
/// (the `{"traceEvents": [...]}` object form Perfetto ingests).
pub fn perfetto_json(sessions: &[FinishedSession], exec: &ExecTrace) -> String {
    let mut ev: Vec<String> = Vec::new();

    for (i, s) in sessions.iter().enumerate() {
        let pid = i + 1;
        ev.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
            escape(&s.label)
        ));
        ev.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"events"}}}}"#
        ));
        let cores: BTreeSet<u32> = s
            .events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::RequestComplete { core, .. }
                | TraceEvent::RequestBlocked { core, .. }
                | TraceEvent::PhaseSpan { core, .. }
                | TraceEvent::UnitSpan { core, .. }
                | TraceEvent::Reassign { core, .. }
                | TraceEvent::TransitionSpan { core, .. }
                | TraceEvent::FlushSpan { core, .. }
                | TraceEvent::CacheEpoch { core, .. }
                | TraceEvent::Dispatch { core, .. } => Some(core),
                _ => None,
            })
            .collect();
        for c in cores {
            ev.push(format!(
                r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{},"args":{{"name":"core {c}"}}}}"#,
                c + 1
            ));
        }
        for e in &s.events {
            ev.push(render_event(pid, e));
        }
    }

    let exec_pid = sessions.len() + 1;
    if !exec.spans.is_empty() || !exec.occupancy.is_empty() {
        ev.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{exec_pid},"tid":0,"args":{{"name":"exec (host wall time)"}}}}"#
        ));
        // Greedy lane assignment so overlapping spans from different
        // workers render on separate thread tracks.
        let mut order: Vec<usize> = (0..exec.spans.len()).collect();
        order.sort_by(|&a, &b| {
            exec.spans[a]
                .start_us
                .partial_cmp(&exec.spans[b].start_us)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut lane_end: Vec<f64> = Vec::new();
        for idx in order {
            let sp = &exec.spans[idx];
            let lane = lane_end
                .iter()
                .position(|&end| end <= sp.start_us)
                .unwrap_or_else(|| {
                    lane_end.push(0.0);
                    lane_end.len() - 1
                });
            lane_end[lane] = sp.start_us + sp.dur_us;
            ev.push(format!(
                r#"{{"name":"{}","cat":"exec","ph":"X","ts":{:.3},"dur":{:.3},"pid":{exec_pid},"tid":{},"args":{{"memo_hit":{}}}}}"#,
                escape(&sp.label),
                sp.start_us,
                sp.dur_us,
                lane + 1,
                sp.memo_hit
            ));
        }
        for &(t, n) in &exec.occupancy {
            ev.push(format!(
                r#"{{"name":"exec.busy_workers","cat":"exec","ph":"C","ts":{t:.3},"pid":{exec_pid},"tid":0,"args":{{"value":{n}}}}}"#
            ));
        }
    }

    let mut out = String::with_capacity(ev.iter().map(|e| e.len() + 2).sum::<usize>() + 64);
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(&ev.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn render_event(pid: usize, e: &TraceEvent) -> String {
    match e {
        TraceEvent::RequestArrival { t, vm, token } => format!(
            r#"{{"name":"arrival vm{vm}","cat":"request","ph":"i","s":"t","ts":{},"pid":{pid},"tid":0,"args":{{"token":{token}}}}}"#,
            ts(*t)
        ),
        TraceEvent::RequestComplete { t, vm, core, token, latency } => format!(
            r#"{{"name":"complete vm{vm}","cat":"request","ph":"i","s":"t","ts":{},"pid":{pid},"tid":{},"args":{{"token":{token},"latency_ms":{}}}}}"#,
            ts(*t),
            core + 1,
            num(latency.as_ms())
        ),
        TraceEvent::RequestBlocked { t, core, token, io } => format!(
            r#"{{"name":"io-block","cat":"request","ph":"i","s":"t","ts":{},"pid":{pid},"tid":{},"args":{{"token":{token},"io_us":{}}}}}"#,
            ts(*t),
            core + 1,
            num(io.as_us())
        ),
        TraceEvent::PhaseSpan { start, dur, core, vm, token } => format!(
            r#"{{"name":"phase vm{vm}","cat":"request","ph":"X","ts":{},"dur":{},"pid":{pid},"tid":{},"args":{{"token":{token}}}}}"#,
            ts(*start),
            ts(*dur),
            core + 1
        ),
        TraceEvent::UnitSpan { start, dur, core } => format!(
            r#"{{"name":"batch unit","cat":"harvest","ph":"X","ts":{},"dur":{},"pid":{pid},"tid":{},"args":{{}}}}"#,
            ts(*start),
            ts(*dur),
            core + 1
        ),
        TraceEvent::Reassign { t, core, kind, cost } => format!(
            r#"{{"name":"{}","cat":"reassign","ph":"i","s":"t","ts":{},"pid":{pid},"tid":{},"args":{{"cost_us":{}}}}}"#,
            kind.name(),
            ts(*t),
            core + 1,
            num(cost.as_us())
        ),
        TraceEvent::TransitionSpan { start, dur, core, kind } => format!(
            r#"{{"name":"switch:{}","cat":"reassign","ph":"X","ts":{},"dur":{},"pid":{pid},"tid":{},"args":{{}}}}"#,
            kind.name(),
            ts(*start),
            ts(*dur),
            core + 1
        ),
        TraceEvent::FlushSpan { start, dur, core, scope, background, dropped_lines } => format!(
            r#"{{"name":"flush:{}","cat":"flush","ph":"X","ts":{},"dur":{},"pid":{pid},"tid":{},"args":{{"background":{background},"dropped_lines":{dropped_lines}}}}}"#,
            scope.name(),
            ts(*start),
            ts(*dur),
            core + 1
        ),
        TraceEvent::CacheEpoch { t, core, epoch, dropped_lines } => format!(
            r#"{{"name":"cache-epoch","cat":"flush","ph":"i","s":"t","ts":{},"pid":{pid},"tid":{},"args":{{"epoch":{epoch},"dropped_lines":{dropped_lines}}}}}"#,
            ts(*t),
            core + 1
        ),
        TraceEvent::Enqueue { t, vm, token, depth, overflow } => format!(
            r#"{{"name":"enqueue vm{vm}","cat":"hwqueue","ph":"i","s":"t","ts":{},"pid":{pid},"tid":0,"args":{{"token":{token},"depth":{depth},"overflow":{overflow}}}}}"#,
            ts(*t)
        ),
        TraceEvent::Dispatch { t, vm, core, token, depth } => format!(
            r#"{{"name":"dispatch vm{vm}","cat":"hwqueue","ph":"i","s":"t","ts":{},"pid":{pid},"tid":{},"args":{{"token":{token},"depth":{depth}}}}}"#,
            ts(*t),
            core + 1
        ),
        TraceEvent::GaugeSample { t, name, index, value } => format!(
            r#"{{"name":"{}","cat":"gauge","ph":"C","ts":{},"pid":{pid},"tid":0,"args":{{"value":{}}}}}"#,
            escape(&gauge_track(name, *index)),
            ts(*t),
            num(*value)
        ),
        TraceEvent::InvariantViolation { t, message } => format!(
            r#"{{"name":"INVARIANT VIOLATION","cat":"invariant","ph":"i","s":"p","ts":{},"pid":{pid},"tid":0,"args":{{"message":"{}"}}}}"#,
            ts(*t),
            escape(message)
        ),
    }
}

/// Per-`ph` event counts from a validated trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// `ph == "X"` complete spans.
    pub complete: usize,
    /// `ph == "i"` instants.
    pub instants: usize,
    /// `ph == "C"` counter samples.
    pub counters: usize,
    /// `ph == "M"` metadata records.
    pub metadata: usize,
    /// Distinct `pid`s (processes).
    pub pids: usize,
}

/// Validates `text` against the Chrome/Perfetto `trace_event` JSON shape:
/// a top-level object with a `traceEvents` array whose entries all carry
/// `name`/`ph`/`pid`, a numeric `ts` on every non-metadata event, and a
/// numeric `dur` on every complete (`"X"`) span.
pub fn validate_perfetto(text: &str) -> Result<ValidationReport, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level \"traceEvents\" key")?
        .as_arr()
        .ok_or("\"traceEvents\" is not an array")?;
    let mut report = ValidationReport {
        events: events.len(),
        ..ValidationReport::default()
    };
    let mut pids = BTreeSet::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string \"ph\""))?;
        e.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string \"name\""))?;
        let pid = e
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i}: missing numeric \"pid\""))?;
        pids.insert(pid as i64);
        if ph != "M" {
            e.get("ts")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {i}: missing numeric \"ts\""))?;
        }
        match ph {
            "X" => {
                e.get("dur")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("event {i}: complete span missing \"dur\""))?;
                report.complete += 1;
            }
            "i" | "I" => report.instants += 1,
            "C" => report.counters += 1,
            "M" => report.metadata += 1,
            "B" | "E" | "b" | "e" | "n" | "s" | "t" | "f" => {}
            other => return Err(format!("event {i}: unknown ph {other:?}")),
        }
    }
    report.pids = pids.len();
    Ok(report)
}

/// Renders sessions plus the executor trace as one JSON object per line:
/// a line per session (counters, gauges, histograms, metrics summary) and
/// a final `exec` line.
pub fn metrics_jsonl(sessions: &[FinishedSession], exec: &ExecTrace) -> String {
    let mut out = String::new();
    for s in sessions {
        let mut line = format!(
            r#"{{"label":"{}","end_ms":{},"events":{},"dropped":{}"#,
            escape(&s.label),
            num(s.end.as_ms()),
            s.events.len(),
            s.dropped
        );
        line.push_str(",\"counters\":{");
        let mut first = true;
        for (name, v) in s.registry.counters() {
            if !first {
                line.push(',');
            }
            first = false;
            let _ = write!(line, r#""{}":{v}"#, escape(name));
        }
        line.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, g) in s.registry.gauges() {
            if !first {
                line.push(',');
            }
            first = false;
            let _ = write!(
                line,
                r#""{}":{{"time_avg":{},"last":{}}}"#,
                escape(name),
                num(g.average(s.end)),
                num(g.level())
            );
        }
        line.push_str("},\"hists\":{");
        let mut first = true;
        for (name, h) in s.registry.hists() {
            if !first {
                line.push(',');
            }
            first = false;
            let _ = write!(
                line,
                r#""{}":{{"count":{},"p50":{},"p99":{}}}"#,
                escape(name),
                h.total(),
                num(h.quantile(0.5)),
                num(h.quantile(0.99))
            );
        }
        line.push_str("},\"summary\":");
        match &s.summary_json {
            Some(j) => line.push_str(j),
            None => line.push_str("null"),
        }
        line.push_str("}\n");
        out.push_str(&line);
    }
    let _ = write!(
        out,
        r#"{{"label":"exec","spans":{},"memo_hits":{},"peak_workers":{}}}"#,
        exec.spans.len(),
        exec.memo_hits(),
        exec.peak_workers()
    );
    out.push('\n');
    out
}

/// Renders a human-readable aggregate table across all sessions.
pub fn summary_table(sessions: &[FinishedSession], exec: &ExecTrace) -> String {
    use std::collections::BTreeMap;
    let total_events: usize = sessions.iter().map(|s| s.events.len()).sum();
    let total_dropped: u64 = sessions.iter().map(|s| s.dropped).sum();
    let mut out = format!(
        "trace summary: {} session(s), {} event(s) ({} dropped)\n",
        sessions.len(),
        total_events,
        total_dropped
    );

    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    for s in sessions {
        for (name, v) in s.registry.counters() {
            *counters.entry(name).or_insert(0) += v;
        }
    }
    if !counters.is_empty() {
        let _ = write!(out, "\n{:<40}{:>14}\n", "counter", "total");
        for (name, v) in counters {
            let _ = write!(out, "{name:<40}{v:>14}\n");
        }
    }

    // Gauges: mean of per-session time-averages (sessions are peers, one
    // per server), plus the final level of the first session for context.
    let mut gauges: BTreeMap<&str, (f64, usize)> = BTreeMap::new();
    for s in sessions {
        for (name, g) in s.registry.gauges() {
            let e = gauges.entry(name).or_insert((0.0, 0));
            e.0 += g.average(s.end);
            e.1 += 1;
        }
    }
    if !gauges.is_empty() {
        let _ = write!(out, "\n{:<40}{:>14}\n", "gauge", "time-avg");
        for (name, (sum, n)) in gauges {
            let _ = write!(out, "{name:<40}{:>14.3}\n", sum / n as f64);
        }
    }

    let mut hists: BTreeMap<&str, (u64, f64, f64, usize)> = BTreeMap::new();
    for s in sessions {
        for (name, h) in s.registry.hists() {
            let e = hists.entry(name).or_insert((0, 0.0, 0.0, 0));
            e.0 += h.total();
            e.1 += h.quantile(0.5);
            e.2 += h.quantile(0.99);
            e.3 += 1;
        }
    }
    if !hists.is_empty() {
        let _ = write!(
            out,
            "\n{:<40}{:>10}{:>12}{:>12}\n",
            "histogram", "count", "~p50", "~p99"
        );
        for (name, (count, p50, p99, n)) in hists {
            let _ = write!(
                out,
                "{name:<40}{count:>10}{:>12.3}{:>12.3}\n",
                p50 / n as f64,
                p99 / n as f64
            );
        }
    }

    let _ = write!(
        out,
        "\nexec: {} span(s), {} memo hit(s), peak {} worker(s)\n",
        exec.spans.len(),
        exec.memo_hits(),
        exec.peak_workers()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FlushScope, ReassignKind};
    use crate::exec::ExecSpan;
    use crate::TraceSession;
    use hh_sim::Cycles;

    fn sample_session() -> FinishedSession {
        let mut s = TraceSession::with_capacity("test/seed=0x1", 128);
        s.record(TraceEvent::RequestArrival { t: Cycles::new(10), vm: 0, token: 7 });
        s.record(TraceEvent::Enqueue {
            t: Cycles::new(10),
            vm: 0,
            token: 7,
            depth: 1,
            overflow: false,
        });
        s.record(TraceEvent::Dispatch {
            t: Cycles::new(20),
            vm: 0,
            core: 3,
            token: 7,
            depth: 0,
        });
        s.record(TraceEvent::PhaseSpan {
            start: Cycles::new(20),
            dur: Cycles::new(3000),
            core: 3,
            vm: 0,
            token: 7,
        });
        s.record(TraceEvent::Reassign {
            t: Cycles::new(4000),
            core: 5,
            kind: ReassignKind::Reclaim,
            cost: Cycles::new(900),
        });
        s.record(TraceEvent::FlushSpan {
            start: Cycles::new(4000),
            dur: Cycles::new(1000),
            core: 5,
            scope: FlushScope::HarvestRegion,
            background: false,
            dropped_lines: 42,
        });
        s.gauge("server.busy_cores", crate::event::NO_INDEX, Cycles::new(20), 1.0);
        s.count("server.reassignments", 1);
        s.hist("server.reclaim_latency_us", 0.3);
        s.finish(Cycles::new(10_000))
    }

    fn sample_exec() -> ExecTrace {
        ExecTrace {
            spans: vec![
                ExecSpan { label: "HH-Block".into(), start_us: 0.0, dur_us: 50.0, memo_hit: false },
                ExecSpan { label: "HH-Block".into(), start_us: 10.0, dur_us: 5.0, memo_hit: true },
            ],
            occupancy: vec![(0.0, 1), (50.0, 0)],
        }
    }

    #[test]
    fn perfetto_export_validates() {
        let sessions = vec![sample_session()];
        let text = perfetto_json(&sessions, &sample_exec());
        let report = validate_perfetto(&text).expect("emitted trace must validate");
        assert!(report.events > 10);
        assert!(report.complete >= 3, "phase + flush + 2 exec spans");
        assert!(report.counters >= 2, "gauge sample + occupancy samples");
        assert!(report.metadata >= 3, "process/thread names");
        assert_eq!(report.pids, 2, "one sim session + exec");
    }

    #[test]
    fn overlapping_exec_spans_get_distinct_lanes() {
        let text = perfetto_json(&[], &sample_exec());
        // The two spans overlap in wall time, so they must be on
        // different tids.
        let doc = json::parse(&text).unwrap();
        let tids: Vec<i64> = doc
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| e.get("tid").unwrap().as_num().unwrap() as i64)
            .collect();
        assert_eq!(tids.len(), 2);
        assert_ne!(tids[0], tids[1]);
    }

    #[test]
    fn validator_rejects_malformed_shapes() {
        assert!(validate_perfetto("not json").is_err());
        assert!(validate_perfetto(r#"{"no_events": []}"#).is_err());
        assert!(
            validate_perfetto(r#"{"traceEvents":[{"ph":"X","name":"x","pid":1,"ts":0}]}"#).is_err(),
            "complete span without dur must fail"
        );
        assert!(
            validate_perfetto(r#"{"traceEvents":[{"ph":"i","name":"x","pid":1,"ts":0,"s":"t"}]}"#)
                .is_ok()
        );
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let sessions = vec![sample_session()];
        let text = metrics_jsonl(&sessions, &sample_exec());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one session line + exec line");
        for line in &lines {
            let v = json::parse(line).expect("every JSONL line parses");
            assert!(v.get("label").is_some());
        }
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(
            first
                .get("counters")
                .unwrap()
                .get("server.reassignments")
                .unwrap()
                .as_num(),
            Some(1.0)
        );
    }

    #[test]
    fn summary_table_mentions_all_metric_kinds() {
        let sessions = vec![sample_session()];
        let table = summary_table(&sessions, &sample_exec());
        assert!(table.contains("server.reassignments"));
        assert!(table.contains("server.busy_cores"));
        assert!(table.contains("server.reclaim_latency_us"));
        assert!(table.contains("memo hit"));
    }
}
