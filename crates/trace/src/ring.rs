//! Bounded ring buffer for trace events.
//!
//! The tracer must never grow without bound during a long simulation, so
//! each session records into a fixed-capacity ring that overwrites the
//! *oldest* entry once full and counts every overwrite. Exporters can then
//! report "N events dropped" instead of silently truncating history.

/// Fixed-capacity ring buffer that overwrites the oldest element when full.
///
/// `capacity == 0` is legal: every push is dropped (and counted). Iteration
/// yields elements oldest-first.
#[derive(Debug, Clone)]
pub struct EventRing<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    dropped: u64,
}

impl<T> EventRing<T> {
    /// Creates a ring holding at most `cap` elements.
    pub fn new(cap: usize) -> Self {
        EventRing {
            buf: Vec::with_capacity(cap.min(1 << 20)),
            cap,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an element, evicting (and counting) the oldest when full.
    pub fn push(&mut self, value: T) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(value);
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no elements are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of elements the ring can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of elements evicted (or rejected, for `cap == 0`) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates the held elements oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }

    /// Consumes the ring, returning the held elements oldest-first.
    pub fn into_vec(mut self) -> Vec<T> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_oldest_first() {
        let mut r = EventRing::new(3);
        for v in 0..3 {
            r.push(v);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 0);
        r.push(3); // evicts 0
        r.push(4); // evicts 1
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.into_vec(), vec![2, 3, 4]);
    }

    #[test]
    fn wraps_many_times() {
        let mut r = EventRing::new(4);
        for v in 0..103 {
            r.push(v);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 99);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![99, 100, 101, 102]);
    }

    #[test]
    fn capacity_zero_drops_everything() {
        let mut r = EventRing::new(0);
        r.push(1);
        r.push(2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.iter().count(), 0);
        assert!(r.into_vec().is_empty());
    }

    #[test]
    fn capacity_one_keeps_latest() {
        let mut r = EventRing::new(1);
        r.push(10);
        assert_eq!(r.dropped(), 0);
        r.push(20);
        r.push(30);
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.into_vec(), vec![30]);
    }

    #[test]
    fn empty_ring_iterates_nothing() {
        let r: EventRing<u8> = EventRing::new(8);
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 8);
        assert_eq!(r.iter().count(), 0);
    }
}
