//! Discrete-event simulation substrate for the HardHarvest reproduction.
//!
//! This crate provides the building blocks shared by every other crate in the
//! workspace:
//!
//! * [`Cycles`] — the simulation clock (one tick per processor cycle at the
//!   paper's 3 GHz, Table 1), with conversions to and from wall-clock time;
//! * [`EventQueue`] — a stable, deterministic pending-event set;
//! * [`Rng64`] — a small, fully deterministic PRNG plus the distribution
//!   helpers the workload models need (exponential, lognormal, Zipf, …);
//! * [`stats`] — streaming histograms, exact percentile sets, time-weighted
//!   utilization accumulators;
//! * [`invariant`] — named invariant checks shared by the proptest suites,
//!   the `hh-check` differential oracle and `ServerSim`'s debug hook.
//!
//! Everything here is deliberately dependency-free and deterministic: two runs
//! with the same seed produce bit-identical results, which the integration
//! test-suite relies on.
//!
//! # Example
//!
//! ```
//! use hh_sim::{Cycles, EventQueue};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick, Tock }
//!
//! let mut q = EventQueue::new();
//! q.push(Cycles::from_us(2.0), Ev::Tock);
//! q.push(Cycles::from_us(1.0), Ev::Tick);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, Ev::Tick);
//! assert_eq!(t, Cycles::from_us(1.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dist;
mod event;
pub mod ids;
pub mod invariant;
mod rng;
pub mod stats;
mod time;

pub use dist::{Exponential, LogNormal, Pareto, Zipf};
pub use event::EventQueue;
pub use ids::{CoreId, ServerId, VmId};
pub use invariant::{Invariant, InvariantSet, InvariantViolation};
pub use rng::Rng64;
pub use time::{Cycles, CLOCK_GHZ};
