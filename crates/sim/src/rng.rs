//! Deterministic pseudo-random number generation.
//!
//! The simulator implements its own small PRNG (SplitMix64 seeding a
//! xoshiro256**) instead of depending on an external generator, so that the
//! published experiment numbers are reproducible bit-for-bit regardless of
//! dependency versions. The generator is *not* cryptographic and must never
//! be used for security purposes.

/// A deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every stochastic component of the simulation owns its own `Rng64`, derived
/// from the experiment seed plus a stream identifier, so that adding a
/// component never perturbs the random stream of another (a property the
/// paired-system comparisons in the paper's figures rely on).
///
/// # Example
///
/// ```
/// use hh_sim::Rng64;
///
/// let mut a = Rng64::new(42);
/// let mut b = Rng64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let p = a.f64();
/// assert!((0.0..1.0).contains(&p));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Rng64 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent stream from this seed and a stream label.
    ///
    /// Streams with different labels are statistically independent, so each
    /// simulated component (per-service arrival process, per-invocation
    /// address stream, …) can own one without cross-talk.
    pub fn stream(seed: u64, label: u64) -> Self {
        // Mix the label through SplitMix64 twice so adjacent labels diverge.
        let mut sm = seed ^ label.wrapping_mul(0xA076_1D64_78BD_642F);
        let mixed = splitmix64(&mut sm) ^ splitmix64(&mut sm);
        Rng64::new(mixed)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform value in `(0, 1]`, safe as input to `ln`.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Box–Muller; one value per call).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.f64_open();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Rng64::stream(9, 0);
        let mut b = Rng64::stream(9, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = Rng64::new(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng64::new(13);
        for _ in 0..1_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
            let f = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut r = Rng64::new(17);
        let n = 50_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = r.normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng64::new(19);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not stay sorted");
    }

    #[test]
    fn chance_estimates_probability() {
        let mut r = Rng64::new(23);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.25).abs() < 0.01, "p {p}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng64::new(1).below(0);
    }
}
