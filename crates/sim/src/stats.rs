//! Measurement primitives: percentile sets, histograms, time-weighted
//! utilization accumulators and scalar summaries.
//!
//! The paper reports P99 tail latency, median latency, throughput and
//! core-utilization averages; these types compute all of them.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Cycles;

/// An exact percentile estimator over a stored sample set.
///
/// The evaluation sizes in this reproduction (≤ a few hundred thousand
/// samples per series) make exact storage cheaper and simpler than sketches.
///
/// # Example
///
/// ```
/// use hh_sim::stats::Samples;
///
/// let mut s = Samples::new();
/// for v in 1..=100 {
///     s.record(v as f64);
/// }
/// assert_eq!(s.percentile(0.50), 50.0);
/// assert_eq!(s.percentile(0.99), 99.0);
/// assert_eq!(s.len(), 100);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<f64>,
    /// Running sum in *insertion* order. `mean()` must not depend on the
    /// storage order of `values`, which the percentile paths reorder
    /// in place (both the cached full sort and `select_nth_unstable_by`)
    /// — summing storage would let a quantile query perturb the mean by
    /// ULPs.
    sum: f64,
    sorted: bool,
    /// Quantile queries answered by selection since the data last changed;
    /// once this passes [`Samples::SORT_AFTER`] the next query sorts fully
    /// and caches the order.
    unsorted_queries: u32,
}

impl Default for Samples {
    fn default() -> Self {
        // An empty set is trivially sorted; starting with the cache valid
        // keeps `new()` and `with_capacity()` indistinguishable (PartialEq
        // compares the flag) and costs nothing — `record` clears it.
        Samples {
            values: Vec::new(),
            sum: 0.0,
            sorted: true,
            unsorted_queries: 0,
        }
    }
}

impl PartialEq for Samples {
    fn eq(&self, other: &Self) -> bool {
        // The query counter is a performance hint, not data.
        self.values == other.values && self.sorted == other.sorted
    }
}

impl Samples {
    /// Unsorted quantile queries tolerated (answered by `select_nth`, O(n)
    /// each) before the next query sorts the whole set once and caches it.
    const SORT_AFTER: u32 = 2;

    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Creates an empty sample set with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Samples {
            values: Vec::with_capacity(capacity),
            sum: 0.0,
            sorted: true,
            unsorted_queries: 0,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    /// Panics if `value` is NaN; NaN observations indicate a simulator bug.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN sample recorded");
        self.values.push(value);
        self.sum += value;
        self.sorted = false;
        self.unsorted_queries = 0;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty. Computed from the running
    /// insertion-order sum, so the result is independent of how quantile
    /// queries have reordered the underlying storage.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.sum / self.values.len() as f64
    }

    /// Largest observation, or 0.0 when empty (matching the empty-set
    /// convention of [`Samples::mean`] and [`Samples::percentile`]).
    ///
    /// Folding from 0.0 would conflate "empty" with "max is 0" *and*
    /// return the wrong answer for all-negative data, so the empty case is
    /// handled explicitly and the fold starts from `-inf`.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest observation, or 0.0 when empty. Equal to
    /// `percentile(0.0)` (nearest-rank clamps the rank to the first
    /// element), but immutable and O(n) without touching the sort cache.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Whether the values are currently held in cached sorted order (the
    /// fast indexed-percentile path). Exposed so the differential oracle
    /// can verify the cache is only ever set when the data really is
    /// sorted, and that cache-preserving operations (merging an empty set)
    /// do not clear it.
    pub fn is_sorted_cached(&self) -> bool {
        self.sorted
    }

    /// The `q`-quantile (`q` in `[0, 1]`) using nearest-rank interpolation.
    /// Returns 0.0 when empty.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.values.is_empty() {
            return 0.0;
        }
        let n = self.values.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        if self.sorted {
            return self.values[rank - 1];
        }
        self.unsorted_queries += 1;
        if self.unsorted_queries > Self::SORT_AFTER {
            // Repeated quantile queries against the same data: sort once
            // and serve every later query by index.
            // total_cmp gives a total order (NaN-proof, and -0.0 < +0.0
            // deterministically), so the cached-sort path and the one-shot
            // selection below place bit-identical elements at every rank.
            self.values.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
            self.unsorted_queries = 0;
            return self.values[rank - 1];
        }
        // One-shot query: an O(n) selection places exactly the element a
        // full sort would put at `rank - 1`. Under total_cmp the order is
        // total, so even -0.0 vs +0.0 ties resolve identically in both
        // paths and the returned bit pattern cannot depend on which path
        // answered the query.
        let (_, nth, _) = self
            .values
            .select_nth_unstable_by(rank - 1, |a, b| a.total_cmp(b));
        *nth
    }

    /// Median (P50).
    pub fn median(&mut self) -> f64 {
        self.percentile(0.5)
    }

    /// P99 tail.
    pub fn p99(&mut self) -> f64 {
        self.percentile(0.99)
    }

    /// Merges another sample set into this one. Merging an empty set is a
    /// no-op and keeps any cached sort order valid.
    pub fn merge(&mut self, other: &Samples) {
        if other.values.is_empty() {
            return;
        }
        self.values.extend_from_slice(&other.values);
        // Element-wise, not `self.sum += other.sum`: the running sum must
        // equal a left fold over the observations in insertion order
        // (f64 addition is not associative), exactly as if each had been
        // `record`ed here.
        for &v in &other.values {
            self.sum += v;
        }
        self.sorted = false;
        self.unsorted_queries = 0;
    }

    /// Read-only view of the raw observations (unspecified order).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Samples::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Samples {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// A logarithmically-binned histogram for latency distributions.
///
/// Bins grow geometrically, giving ~2 % relative resolution across nine
/// decades, enough for CDF plots like the paper's Figure 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// bin i covers [min * growth^i, min * growth^(i+1))
    min: f64,
    growth: f64,
    counts: Vec<u64>,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram covering `[min, max)` with roughly `bins` bins.
    ///
    /// # Panics
    /// Panics unless `0 < min < max` and `bins >= 1`.
    pub fn new(min: f64, max: f64, bins: usize) -> Self {
        assert!(min > 0.0 && max > min && bins >= 1);
        let growth = (max / min).powf(1.0 / bins as f64);
        Histogram {
            min,
            growth,
            counts: vec![0; bins + 1],
            underflow: 0,
            total: 0,
        }
    }

    /// Records one observation (clamped into the covered range).
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        if value < self.min {
            self.underflow += 1;
            return;
        }
        let bin = ((value / self.min).ln() / self.growth.ln()) as usize;
        let bin = bin.min(self.counts.len() - 1);
        self.counts[bin] += 1;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations at or below `value`.
    pub fn cdf_at(&self, value: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut acc = self.underflow;
        for (i, &c) in self.counts.iter().enumerate() {
            let hi = self.min * self.growth.powi(i as i32 + 1);
            if hi <= value {
                acc += c;
            } else {
                break;
            }
        }
        acc as f64 / self.total as f64
    }

    /// Approximate `q`-quantile from the binned data.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut acc = self.underflow;
        if acc >= target {
            return self.min;
        }
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return self.min * self.growth.powi(i as i32 + 1);
            }
        }
        self.min * self.growth.powi(self.counts.len() as i32)
    }
}

/// Time-weighted accumulator for quantities like "busy cores".
///
/// Feed it level changes over simulated time; it integrates the level and
/// reports the time average — exactly the "average utilization of N cores"
/// metric in Section 6.7 of the paper.
///
/// # Example
///
/// ```
/// use hh_sim::{stats::TimeWeighted, Cycles};
///
/// let mut u = TimeWeighted::new();
/// u.set(Cycles::new(0), 4.0);
/// u.set(Cycles::new(100), 0.0);
/// assert_eq!(u.average(Cycles::new(200)), 2.0);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    level: f64,
    last_change: Cycles,
    integral: f64,
}

impl TimeWeighted {
    /// Creates an accumulator at level 0 and time 0.
    pub fn new() -> Self {
        TimeWeighted::default()
    }

    /// Sets the level at time `now`, integrating the previous level.
    ///
    /// # Panics
    /// Panics in debug builds if `now` precedes the previous change.
    pub fn set(&mut self, now: Cycles, level: f64) {
        debug_assert!(now >= self.last_change, "time went backwards");
        let dt = now.saturating_sub(self.last_change).as_u64() as f64;
        self.integral += self.level * dt;
        self.level = level;
        self.last_change = now;
    }

    /// Adds `delta` to the current level at time `now`.
    pub fn add(&mut self, now: Cycles, delta: f64) {
        let level = self.level + delta;
        self.set(now, level);
    }

    /// Current level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// Time-average of the level over `[0, now]`; 0.0 if `now` is zero.
    pub fn average(&self, now: Cycles) -> f64 {
        let dt = now.saturating_sub(self.last_change).as_u64() as f64;
        let total = self.integral + self.level * dt;
        // Test the integer cycle count, not the float it converts to.
        if now.as_u64() == 0 {
            0.0
        } else {
            total / now.as_u64() as f64
        }
    }
}

/// Scalar min/mean/max summary of a quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observation (`f64::NEG_INFINITY` when empty).
    pub max: f64,
    /// Running sum.
    pub sum: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={:.3} mean={:.3} max={:.3}",
            self.count,
            if self.count == 0 { 0.0 } else { self.min },
            self.mean(),
            if self.count == 0 { 0.0 } else { self.max },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_exact_on_known_data() {
        let mut s: Samples = (1..=1000).map(f64::from).collect();
        assert_eq!(s.percentile(0.01), 10.0);
        assert_eq!(s.median(), 500.0);
        assert_eq!(s.p99(), 990.0);
        assert_eq!(s.percentile(1.0), 1000.0);
        assert_eq!(s.max(), 1000.0);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_samples_are_zero() {
        let mut s = Samples::new();
        assert_eq!(s.p99(), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn merge_combines() {
        let mut a: Samples = [1.0, 2.0].into_iter().collect();
        let b: Samples = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.percentile(1.0), 4.0);
    }

    #[test]
    fn record_after_percentile_stays_correct() {
        let mut s: Samples = [5.0, 1.0, 3.0].into_iter().collect();
        assert_eq!(s.median(), 3.0);
        s.record(0.5);
        s.record(0.6);
        assert_eq!(s.percentile(0.2), 0.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        Samples::new().record(f64::NAN);
    }

    /// Regression: the one-shot selection path and the cached-sort path
    /// must return bit-identical answers even when the data holds -0.0 and
    /// +0.0 ties. Under `partial_cmp` the two zeros compare equal and
    /// either bit pattern could surface depending on which path answered;
    /// `total_cmp` orders -0.0 < +0.0 in both paths.
    #[test]
    fn signed_zero_ties_resolve_identically_in_both_paths() {
        let data = [0.0_f64, -0.0, 0.0, -0.0, 1.0];
        // Fresh Samples per query: every answer below uses the selection
        // path (first query, unsorted).
        let selected: Vec<u64> = (1..=4)
            .map(|k| {
                let mut s: Samples = data.into_iter().collect();
                s.percentile(k as f64 / 5.0).to_bits()
            })
            .collect();
        // One Samples hammered past SORT_AFTER: answers come from the
        // cached sorted array.
        let mut cached: Samples = data.into_iter().collect();
        for _ in 0..=Samples::SORT_AFTER {
            let _ = cached.percentile(0.5);
        }
        let sorted: Vec<u64> = (1..=4)
            .map(|k| cached.percentile(k as f64 / 5.0).to_bits())
            .collect();
        assert_eq!(selected, sorted, "selection and cached paths disagree bitwise");
        // And the order itself is the total order: both -0.0s first.
        assert_eq!(selected[0], (-0.0_f64).to_bits());
        assert_eq!(selected[1], (-0.0_f64).to_bits());
        assert_eq!(selected[2], 0.0_f64.to_bits());
    }

    #[test]
    fn mean_is_independent_of_quantile_query_history() {
        // Quantile queries reorder storage (selection, then a cached full
        // sort); the mean must be bitwise identical before and after.
        let vals = [0.1, 0.7, -3.3, 1e9, 2.6e-7, -0.4, 8.25];
        let mut s: Samples = vals.into_iter().collect();
        let before = s.mean();
        s.percentile(0.5); // selection path reorders
        assert_eq!(s.mean(), before);
        for _ in 0..4 {
            s.percentile(0.9); // cached path fully sorts
        }
        assert!(s.is_sorted_cached());
        assert_eq!(s.mean(), before);
        // And it equals the plain left fold in insertion order.
        assert_eq!(before, vals.iter().sum::<f64>() / vals.len() as f64);
    }

    #[test]
    fn merge_of_empty_preserves_sort_cache() {
        let mut a: Samples = [2.0, 1.0, 3.0].into_iter().collect();
        // Force the cached-sort path, then merge an empty set.
        for _ in 0..4 {
            a.median();
        }
        assert!(a.sorted, "repeated queries should cache the sort");
        a.merge(&Samples::new());
        assert!(a.sorted, "merging an empty set must not invalidate the cache");
        assert_eq!(a.len(), 3);
        assert_eq!(a.median(), 2.0);
    }

    #[test]
    fn selection_path_matches_sorted_path() {
        // Deterministic pseudo-random data, queried both ways.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let vals: Vec<f64> = (0..997)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 10_000) as f64 / 7.0
            })
            .collect();
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            let mut one_shot: Samples = vals.iter().copied().collect();
            let a = one_shot.percentile(q); // selection path
            let mut cached: Samples = vals.iter().copied().collect();
            for _ in 0..4 {
                cached.percentile(q); // third query sorts fully
            }
            let b = cached.percentile(q); // indexed path
            assert_eq!(a, b, "q={q}");
        }
    }

    #[test]
    fn max_handles_negative_and_empty_data() {
        let s: Samples = [-5.0, -1.5, -9.0].into_iter().collect();
        assert_eq!(s.max(), -1.5, "all-negative max must not be clamped to 0");
        assert_eq!(s.min(), -9.0);
        let empty = Samples::new();
        assert_eq!(empty.max(), 0.0, "empty-set convention");
        assert_eq!(empty.min(), 0.0, "empty-set convention");
    }

    #[test]
    fn percentile_zero_is_the_minimum() {
        // Nearest-rank at q=0.0: ceil(0·n)=0 clamps to rank 1 → the
        // smallest observation, on both the selection and the cached path.
        let mut one_shot: Samples = [4.0, -2.0, 7.0, 0.5].into_iter().collect();
        assert_eq!(one_shot.percentile(0.0), -2.0);
        let mut cached: Samples = [4.0, -2.0, 7.0, 0.5].into_iter().collect();
        for _ in 0..4 {
            cached.percentile(0.5);
        }
        assert!(cached.is_sorted_cached());
        assert_eq!(cached.percentile(0.0), -2.0);
        assert_eq!(one_shot.percentile(0.0), one_shot.min());
    }

    #[test]
    fn constructors_agree_on_empty_state() {
        // `with_capacity` marks the (empty) set sorted; `new`/`default`
        // must agree or two empty sets compare unequal.
        let a = Samples::new();
        let b = Samples::with_capacity(64);
        assert_eq!(a, b);
        assert!(a.is_sorted_cached() && b.is_sorted_cached());
    }

    #[test]
    fn record_and_merge_clear_with_capacity_sort_flag() {
        // The `sorted: true` initialization is only valid while empty;
        // any data arriving through record or merge must clear it.
        let mut s = Samples::with_capacity(8);
        s.record(2.0);
        s.record(1.0);
        assert!(!s.is_sorted_cached());
        assert_eq!(s.percentile(0.0), 1.0);

        let mut m = Samples::with_capacity(8);
        m.merge(&[3.0, -1.0].into_iter().collect());
        assert!(!m.is_sorted_cached(), "merged data is not known sorted");
        assert_eq!(m.percentile(1.0), 3.0);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new(1.0, 1e6, 200);
        for v in 1..=10_000 {
            h.record(v as f64);
        }
        let p50 = h.quantile(0.5);
        assert!((p50 / 5000.0 - 1.0).abs() < 0.10, "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((p99 / 9900.0 - 1.0).abs() < 0.10, "p99 {p99}");
        assert_eq!(h.total(), 10_000);
    }

    #[test]
    fn histogram_cdf_is_monotone() {
        let mut h = Histogram::new(0.01, 1.0, 100);
        for i in 0..1000 {
            h.record(i as f64 / 1000.0);
        }
        let mut prev = 0.0;
        for p in [0.02, 0.1, 0.3, 0.5, 0.9, 1.0] {
            let c = h.cdf_at(p);
            assert!(c >= prev, "cdf must be monotone");
            prev = c;
        }
        assert!((h.cdf_at(0.5) - 0.5).abs() < 0.05);
    }

    #[test]
    fn histogram_underflow_counted() {
        let mut h = Histogram::new(10.0, 100.0, 10);
        h.record(1.0);
        h.record(50.0);
        assert_eq!(h.total(), 2);
        assert!(h.cdf_at(10.0) >= 0.5);
    }

    #[test]
    fn time_weighted_average() {
        let mut u = TimeWeighted::new();
        u.set(Cycles::new(0), 1.0);
        u.add(Cycles::new(50), 1.0); // level 2 from t=50
        assert_eq!(u.level(), 2.0);
        // [0,50): 1.0, [50,100): 2.0 → avg 1.5
        assert!((u.average(Cycles::new(100)) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_zero_span() {
        let u = TimeWeighted::new();
        assert_eq!(u.average(Cycles::ZERO), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time went backwards")]
    fn time_weighted_rejects_out_of_order_updates() {
        let mut u = TimeWeighted::new();
        u.set(Cycles::new(100), 1.0);
        u.set(Cycles::new(50), 2.0);
    }

    #[test]
    fn time_weighted_zero_duration_update_keeps_integral() {
        // Two changes at the same instant: the first contributes nothing
        // to the integral; only the latest level persists.
        let mut u = TimeWeighted::new();
        u.set(Cycles::new(0), 5.0);
        u.set(Cycles::new(100), 1.0);
        u.set(Cycles::new(100), 3.0); // zero-duration revision
        assert_eq!(u.level(), 3.0);
        // [0,100): 5.0, [100,200): 3.0 → avg 4.0; the transient 1.0 level
        // held for zero cycles must not appear.
        assert!((u.average(Cycles::new(200)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_negative_levels_integrate() {
        // `add` may legitimately drive the level through arbitrary values;
        // the integral is signed.
        let mut u = TimeWeighted::new();
        u.add(Cycles::new(0), -2.0);
        u.add(Cycles::new(100), 4.0); // level 2 from t=100
        assert!((u.average(Cycles::new(200)) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_edges() {
        let mut h = Histogram::new(1.0, 1024.0, 10); // growth = 2 per bin
        h.record(0.999); // below min → underflow
        h.record(1.0); // exactly min → first bin
        h.record(1024.0); // at max → clamped into range
        h.record(1e12); // far overflow → clamped to last bin
        assert_eq!(h.total(), 4);
        // Underflow counts toward the CDF at min.
        assert!(h.cdf_at(1.0) >= 0.25);
        // Everything is at or below the top edge even after clamping.
        assert_eq!(h.cdf_at(f64::INFINITY), 1.0);
        // Quantiles never escape the configured range.
        assert!(h.quantile(1.0) <= 1.0 * 2f64.powi(11));
        assert!(h.quantile(0.0) >= 1.0);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::new();
        for v in [3.0, -1.0, 7.0] {
            s.record(v);
        }
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 7.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert!(!s.to_string().is_empty());
    }
}
