//! The simulation clock.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Core clock frequency of the modeled server, in GHz (paper Table 1:
/// "36 6-issue cores at 3GHz").
pub const CLOCK_GHZ: f64 = 3.0;

/// A point in simulated time, or a duration, measured in processor cycles.
///
/// One cycle is `1 / 3 GHz` ≈ 0.333 ns. The type is a thin newtype over
/// `u64` (C-NEWTYPE) so that cycle counts cannot be accidentally mixed with
/// other integers; all workload and latency parameters are converted into
/// cycles at the edges of the simulator.
///
/// # Example
///
/// ```
/// use hh_sim::Cycles;
///
/// let t = Cycles::from_us(5.0);
/// assert_eq!(t.as_u64(), 15_000); // 5 µs * 3 GHz
/// assert!((t.as_us() - 5.0).abs() < 1e-9);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Time zero / an empty duration.
    pub const ZERO: Cycles = Cycles(0);
    /// The largest representable instant; used as "never".
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Creates a duration from a raw cycle count.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycles(cycles)
    }

    /// Raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Builds a duration from nanoseconds of wall-clock time.
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        Cycles((ns * CLOCK_GHZ).round() as u64)
    }

    /// Builds a duration from microseconds of wall-clock time.
    #[inline]
    pub fn from_us(us: f64) -> Self {
        Self::from_ns(us * 1e3)
    }

    /// Builds a duration from milliseconds of wall-clock time.
    #[inline]
    pub fn from_ms(ms: f64) -> Self {
        Self::from_ns(ms * 1e6)
    }

    /// Builds a duration from seconds of wall-clock time.
    #[inline]
    pub fn from_secs(s: f64) -> Self {
        Self::from_ns(s * 1e9)
    }

    /// This duration in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / CLOCK_GHZ
    }

    /// This duration in microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.as_ns() / 1e3
    }

    /// This duration in milliseconds.
    #[inline]
    pub fn as_ms(self) -> f64 {
        self.as_ns() / 1e6
    }

    /// This duration in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.as_ns() / 1e9
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_add(rhs.0).map(Cycles)
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// The smaller of two instants.
    #[inline]
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    /// Panics in debug builds if `rhs > self` (time under-flow is a
    /// simulation bug); use [`Cycles::saturating_sub`] when clamping is
    /// intended.
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.as_ns();
        if ns < 1e3 {
            write!(f, "{ns:.0}ns")
        } else if ns < 1e6 {
            write!(f, "{:.2}us", ns / 1e3)
        } else if ns < 1e9 {
            write!(f, "{:.2}ms", ns / 1e6)
        } else {
            write!(f, "{:.3}s", ns / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_conversions() {
        let t = Cycles::from_us(100.0);
        assert_eq!(t.as_u64(), 300_000);
        assert!((t.as_us() - 100.0).abs() < 1e-9);
        assert!((Cycles::from_ms(5.0).as_ms() - 5.0).abs() < 1e-9);
        assert!((Cycles::from_secs(1.0).as_secs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycles::default(), Cycles::ZERO);
        assert_eq!(Cycles::ZERO.as_ns(), 0.0);
    }

    #[test]
    fn arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(40);
        assert_eq!(a + b, Cycles::new(140));
        assert_eq!(a - b, Cycles::new(60));
        assert_eq!(a * 3, Cycles::new(300));
        assert_eq!(a / 4, Cycles::new(25));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_durations() {
        let total: Cycles = [Cycles::new(1), Cycles::new(2), Cycles::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Cycles::new(6));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Cycles::from_ns(30.0).to_string(), "30ns");
        assert_eq!(Cycles::from_us(1.5).to_string(), "1.50us");
        assert_eq!(Cycles::from_ms(2.25).to_string(), "2.25ms");
        assert_eq!(Cycles::from_secs(1.5).to_string(), "1.500s");
    }

    #[test]
    fn ordering_matches_cycle_count() {
        assert!(Cycles::from_ns(10.0) < Cycles::from_us(1.0));
        assert!(Cycles::MAX > Cycles::from_secs(1e6));
    }
}
