//! Identity newtypes shared across the simulation stack.
//!
//! These live in the substrate crate so that the memory hierarchy, hardware
//! queue controller, and server model can all name the same VM or core
//! without depending on each other (C-NEWTYPE).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u16);

        impl $name {
            /// Index into dense per-entity arrays.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u16> for $name {
            fn from(v: u16) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(u16::try_from(v).expect("id out of range"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A virtual machine on a server. VM 0..n-1 are Primary VMs, the last is
    /// conventionally the Harvest VM (the server model enforces this).
    VmId,
    "vm"
);

id_type!(
    /// A physical core on a server (0..36 in the paper's configuration).
    CoreId,
    "core"
);

id_type!(
    /// A server in the cluster (0..8 in the paper's configuration).
    ServerId,
    "srv"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let v = VmId::from(3u16);
        assert_eq!(v.index(), 3);
        assert_eq!(v.to_string(), "vm3");
        assert_eq!(CoreId::from(35usize).to_string(), "core35");
        assert_eq!(ServerId(7).to_string(), "srv7");
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(VmId(2) < VmId(10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversize_index_panics() {
        let _ = CoreId::from(100_000usize);
    }
}
