//! Probability distributions used by the workload models.
//!
//! Each distribution is a small parameter struct with a `sample(&mut Rng64)`
//! method; the sampling state lives in the caller's [`Rng64`] so that
//! distributions are freely shareable and `Copy`.

use crate::Rng64;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// Used for open-loop Poisson inter-arrival times of microservice requests.
///
/// # Example
///
/// ```
/// use hh_sim::{Exponential, Rng64};
///
/// let d = Exponential::with_mean(100.0);
/// let mut rng = Rng64::new(1);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates a distribution with the given rate.
    ///
    /// # Panics
    /// Panics if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "lambda must be > 0");
        Exponential { lambda }
    }

    /// Creates a distribution with the given mean (`1/lambda`).
    ///
    /// # Panics
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be > 0");
        Exponential { lambda: 1.0 / mean }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng64) -> f64 {
        -rng.f64_open().ln() / self.lambda
    }
}

/// Lognormal distribution parameterized by the *mean and sigma of the
/// underlying normal*.
///
/// Used for backend (Memcached/Redis/MongoDB) response latencies, which the
/// paper injects from profiles of real servers, and for service-time jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal with normal-space parameters `mu`, `sigma`.
    ///
    /// # Panics
    /// Panics if `sigma` is negative or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && mu.is_finite() && sigma.is_finite());
        LogNormal { mu, sigma }
    }

    /// Creates a lognormal whose *median* is `median` with shape `sigma`.
    ///
    /// The median of a lognormal is `exp(mu)`, which is a far more intuitive
    /// knob for latency modeling than `mu` itself.
    ///
    /// # Panics
    /// Panics if `median <= 0` or `sigma < 0`.
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0, "median must be > 0");
        Self::new(median.ln(), sigma)
    }

    /// The distribution mean, `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut Rng64) -> f64 {
        (self.mu + self.sigma * rng.normal()).exp()
    }
}

/// Bounded Pareto-like heavy-tail distribution.
///
/// Used for burst magnitudes in the synthetic Alibaba-style utilization
/// traces: most bursts are small, a few are large, none are unbounded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
    cap: f64,
}

impl Pareto {
    /// Creates a Pareto with minimum `scale`, tail index `shape`, truncated
    /// at `cap`.
    ///
    /// # Panics
    /// Panics unless `0 < scale <= cap` and `shape > 0`.
    pub fn new(scale: f64, shape: f64, cap: f64) -> Self {
        assert!(scale > 0.0 && shape > 0.0 && cap >= scale);
        Pareto { scale, shape, cap }
    }

    /// Draws one sample in `[scale, cap]`.
    pub fn sample(&self, rng: &mut Rng64) -> f64 {
        let x = self.scale / rng.f64_open().powf(1.0 / self.shape);
        x.min(self.cap)
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Used for page-reuse popularity inside an invocation's address stream:
/// a few hot lines absorb most accesses, matching the small-working-set
/// behaviour the paper measures for microservices (Section 3).
///
/// Sampling uses a precomputed inverse CDF (O(log n) per draw).
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false // constructor forbids n == 0; kept for API symmetry
    }

    /// Draws one rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::with_mean(50.0);
        let mut rng = Rng64::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
        assert!((d.mean() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::new(2.0);
        let mut rng = Rng64::new(6);
        assert!((0..10_000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn lognormal_median_matches() {
        let d = LogNormal::with_median(200.0, 0.5);
        let mut rng = Rng64::new(7);
        let mut xs: Vec<f64> = (0..50_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[25_000];
        assert!(
            (median - 200.0).abs() / 200.0 < 0.05,
            "median {median} should be near 200"
        );
    }

    #[test]
    fn pareto_respects_bounds() {
        let d = Pareto::new(1.0, 1.5, 10.0);
        let mut rng = Rng64::new(8);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((1.0..=10.0).contains(&x));
        }
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let d = Zipf::new(100, 1.0);
        let mut rng = Rng64::new(9);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let d = Zipf::new(10, 0.0);
        let mut rng = Rng64::new(10);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.15, "uniform spread expected: {counts:?}");
    }

    #[test]
    fn zipf_single_rank() {
        let d = Zipf::new(1, 1.2);
        let mut rng = Rng64::new(11);
        assert_eq!(d.sample(&mut rng), 0);
        assert_eq!(d.len(), 1);
    }
}
