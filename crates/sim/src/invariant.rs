//! Reusable invariant checks with named, pinpointed violation reports.
//!
//! A bare `assert!` inside a simulator tells you *that* something broke,
//! not *what rule* broke or *which piece of state* broke it. The types
//! here package structural invariants — "chunk counts are conserved",
//! "ready entries drain in FIFO order", "percentiles are monotone" — as
//! first-class values that three different consumers share:
//!
//! * property-test suites run them against generated states;
//! * the differential oracle (`hh-check`) runs them alongside its
//!   optimized-vs-reference comparisons;
//! * `ServerSim`'s debug-mode hook runs them periodically mid-simulation.
//!
//! The trait is generic over the state it inspects, so implementations
//! live next to the types they check (in `hh-mem`, `hh-hwqueue`,
//! `hh-check`, …) without this crate depending on any of them.

use std::error::Error;
use std::fmt;
use std::marker::PhantomData;

/// A named invariant violation: which rule failed and how.
///
/// Carries enough context to act on the report without re-running under a
/// debugger — the failing rule's name plus a human-readable description of
/// the offending state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Name of the violated invariant (stable, grep-able).
    pub invariant: &'static str,
    /// What exactly was wrong, with the offending values interpolated.
    pub detail: String,
}

impl InvariantViolation {
    /// Builds a violation of `invariant` with the given detail.
    pub fn new(invariant: &'static str, detail: impl Into<String>) -> Self {
        InvariantViolation {
            invariant,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant `{}` violated: {}", self.invariant, self.detail)
    }
}

impl Error for InvariantViolation {}

/// A structural rule over a state type `S`.
///
/// `check` returns `Err(detail)` describing the violation; the harness
/// wraps it with the invariant's name into an [`InvariantViolation`].
pub trait Invariant<S: ?Sized> {
    /// Stable name of the rule (used in reports).
    fn name(&self) -> &'static str;

    /// Checks the rule against `state`; `Err` carries the failure detail.
    fn check(&self, state: &S) -> Result<(), String>;
}

/// An [`Invariant`] built from a name and a closure (see [`invariant`]).
pub struct FnInvariant<S: ?Sized, F> {
    name: &'static str,
    f: F,
    _state: PhantomData<fn(&S)>,
}

impl<S: ?Sized, F> fmt::Debug for FnInvariant<S, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnInvariant({})", self.name)
    }
}

impl<S: ?Sized, F> Invariant<S> for FnInvariant<S, F>
where
    F: Fn(&S) -> Result<(), String>,
{
    fn name(&self) -> &'static str {
        self.name
    }

    fn check(&self, state: &S) -> Result<(), String> {
        (self.f)(state)
    }
}

/// Wraps a closure as a named [`Invariant`].
///
/// # Example
///
/// ```
/// use hh_sim::invariant::{invariant, InvariantSet};
///
/// let set = InvariantSet::new()
///     .with(invariant("non-negative", |v: &i64| {
///         if *v >= 0 { Ok(()) } else { Err(format!("{v} < 0")) }
///     }));
/// assert!(set.check_all(&3).is_ok());
/// let violation = set.check_all(&-1).unwrap_err();
/// assert_eq!(violation.invariant, "non-negative");
/// ```
pub fn invariant<S: ?Sized, F>(name: &'static str, f: F) -> FnInvariant<S, F>
where
    F: Fn(&S) -> Result<(), String>,
{
    FnInvariant {
        name,
        f,
        _state: PhantomData,
    }
}

/// An ordered collection of invariants over one state type.
pub struct InvariantSet<S: ?Sized> {
    invariants: Vec<Box<dyn Invariant<S>>>,
}

impl<S: ?Sized> fmt::Debug for InvariantSet<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.invariants.iter().map(|i| i.name()).collect();
        f.debug_struct("InvariantSet").field("invariants", &names).finish()
    }
}

impl<S: ?Sized> Default for InvariantSet<S> {
    fn default() -> Self {
        InvariantSet::new()
    }
}

impl<S: ?Sized> InvariantSet<S> {
    /// Creates an empty set.
    pub fn new() -> Self {
        InvariantSet {
            invariants: Vec::new(),
        }
    }

    /// Adds an invariant (builder style).
    pub fn with(mut self, inv: impl Invariant<S> + 'static) -> Self {
        self.invariants.push(Box::new(inv));
        self
    }

    /// Adds an invariant in place.
    pub fn push(&mut self, inv: impl Invariant<S> + 'static) {
        self.invariants.push(Box::new(inv));
    }

    /// Number of invariants in the set.
    pub fn len(&self) -> usize {
        self.invariants.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.invariants.is_empty()
    }

    /// Checks every invariant in insertion order, returning the first
    /// violation (name + detail) or `Ok` when all hold.
    pub fn check_all(&self, state: &S) -> Result<(), InvariantViolation> {
        for inv in &self.invariants {
            if let Err(detail) = inv.check(state) {
                return Err(InvariantViolation::new(inv.name(), detail));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_first_violation_with_name_and_detail() {
        let set: InvariantSet<i64> = InvariantSet::new()
            .with(invariant("lower-bound", |v: &i64| {
                if *v >= 0 { Ok(()) } else { Err(format!("{v} below 0")) }
            }))
            .with(invariant("upper-bound", |v: &i64| {
                if *v <= 10 { Ok(()) } else { Err(format!("{v} above 10")) }
            }));
        assert_eq!(set.len(), 2);
        assert!(set.check_all(&5).is_ok());
        let v = set.check_all(&99).unwrap_err();
        assert_eq!(v.invariant, "upper-bound");
        assert!(v.detail.contains("99"));
        assert!(v.to_string().contains("upper-bound"));
    }

    #[test]
    fn empty_set_always_passes() {
        let set: InvariantSet<()> = InvariantSet::new();
        assert!(set.is_empty());
        assert!(set.check_all(&()).is_ok());
    }
}
