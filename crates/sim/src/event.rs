//! Pending-event set for discrete-event simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycles;

/// A deterministic pending-event queue.
///
/// Events are delivered in non-decreasing timestamp order; events scheduled
/// for the *same* instant are delivered in insertion order (FIFO), which keeps
/// simulations reproducible regardless of heap internals.
///
/// The queue is a data structure, not a framework: the simulation loop lives
/// with the model that owns the world state, which keeps borrow-checking
/// simple and avoids callback indirection.
///
/// # Example
///
/// ```
/// use hh_sim::{Cycles, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycles::new(10), "b");
/// q.push(Cycles::new(10), "c");
/// q.push(Cycles::new(5), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(Cycles, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn push(&mut self, at: Cycles, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
    }

    /// Removes and returns the earliest pending event, if any.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        self.heap.pop().map(|e| (e.key.0 .0, e.event))
    }

    /// Timestamp of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<Cycles> {
        self.heap.peek().map(|e| e.key.0 .0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(30), 3);
        q.push(Cycles::new(10), 1);
        q.push(Cycles::new(20), 2);
        assert_eq!(q.pop(), Some((Cycles::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycles::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycles::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycles::new(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles::new(42), i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Cycles::new(7), ());
        assert_eq!(q.peek_time(), Some(Cycles::new(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(1), ());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Cycles::new(5), "a");
        q.push(Cycles::new(1), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(Cycles::new(3), "c");
        q.push(Cycles::new(4), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "a");
    }
}
