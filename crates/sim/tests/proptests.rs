//! Property tests for the DES substrate.

use hh_sim::stats::{Histogram, Samples, TimeWeighted};
use hh_sim::{Cycles, EventQueue, Rng64};
use proptest::prelude::*;

proptest! {
    /// The event queue delivers events in timestamp order, FIFO within a
    /// timestamp — equivalent to a stable sort by time.
    #[test]
    fn event_queue_is_a_stable_sort(times in prop::collection::vec(0u64..1000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Cycles::new(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().zip(0..).map(|(t, i)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i)); // stable by construction
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_u64(), i));
        }
        prop_assert_eq!(got, expected);
    }

    /// Exact percentiles agree with the naive definition on any data.
    #[test]
    fn percentiles_match_naive(
        mut values in prop::collection::vec(-1e6f64..1e6, 1..500),
        q in 0.0f64..=1.0,
    ) {
        let mut s: Samples = values.iter().copied().collect();
        let got = s.percentile(q);
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        prop_assert_eq!(got, values[rank - 1]);
    }

    /// Histogram quantiles are within one geometric bin of the exact
    /// quantile for in-range data.
    #[test]
    fn histogram_quantile_bounded_error(
        values in prop::collection::vec(1.0f64..1e5, 10..500),
        q in 0.05f64..0.95,
    ) {
        let mut h = Histogram::new(1.0, 1e5, 400);
        for &v in &values {
            h.record(v);
        }
        let approx = h.quantile(q);
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let growth = (1e5f64 / 1.0).powf(1.0 / 400.0);
        prop_assert!(approx >= exact / growth.powi(2), "approx {approx} exact {exact}");
        prop_assert!(approx <= exact * growth.powi(2), "approx {approx} exact {exact}");
    }

    /// `below(n)` is uniform-ish and always in range.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..10_000) {
        let mut rng = Rng64::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.below(n) < n);
        }
    }

    /// A time-weighted average always lies between the extreme levels.
    #[test]
    fn time_weighted_average_bounded(
        levels in prop::collection::vec(0.0f64..100.0, 1..50),
    ) {
        let mut tw = TimeWeighted::new();
        let mut t = 0u64;
        for &l in &levels {
            tw.set(Cycles::new(t), l);
            t += 10;
        }
        let avg = tw.average(Cycles::new(t.max(1)));
        let lo = levels.iter().copied().fold(f64::INFINITY, f64::min).min(0.0);
        let hi = levels.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg {avg} not in [{lo}, {hi}]");
    }

    /// Independent streams derived from the same seed do not collide.
    #[test]
    fn rng_streams_disjoint(seed in any::<u64>(), a in 0u64..100, b in 0u64..100) {
        prop_assume!(a != b);
        let mut ra = Rng64::stream(seed, a);
        let mut rb = Rng64::stream(seed, b);
        let va: Vec<u64> = (0..8).map(|_| ra.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| rb.next_u64()).collect();
        prop_assert_ne!(va, vb);
    }
}
