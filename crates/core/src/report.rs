//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A fixed-width text table matching the rows the paper's figures plot.
///
/// # Example
///
/// ```
/// use hh_core::Table;
///
/// let mut t = Table::new(vec!["System".into(), "P99 [ms]".into()]);
/// t.row(vec!["NoHarvest".into(), "1.23".into()]);
/// let s = t.render();
/// assert!(s.contains("NoHarvest"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Convenience: a row of a label plus f64 cells with 3 decimals.
    pub fn row_f64(&mut self, label: &str, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.3}")));
        self.row(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells
    /// containing commas or quotes).
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            let row: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&row.join(","));
            out.push('\n');
        };
        line(&mut out, &self.header);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate().take(cols) {
                let _ = write!(out, "{:<w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["A".into(), "Value".into()]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-label".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Both value cells start at the same column.
        let c1 = lines[2].find('1').unwrap();
        let c2 = lines[3].find('2').unwrap();
        assert_eq!(c1, c2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn row_f64_formats() {
        let mut t = Table::new(vec!["x".into(), "y".into()]);
        t.row_f64("k", &[1.23456]);
        assert!(t.render().contains("1.235"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["only-one".into()]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["k".into(), "v".into()]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.render_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }
}
