//! The run-plan executor: one bounded worker pool plus a memo table for
//! every cluster simulation the figure harness requests.
//!
//! Several figures re-run identical simulations: Figures 11 and 16 differ
//! only in the percentile they report, Figure 17 and the utilization study
//! revisit the same five systems, and four experiments re-simulate the
//! stock `NoHarvest` baseline. [`RunPlan`] deduplicates them — a cluster
//! run is keyed by a fingerprint of its fully-resolved per-server
//! [`ServerConfig`]s, so any two requests that would simulate the same
//! thing share one result.
//!
//! Per-server [`ServerSim`] jobs from *all* concurrent cluster runs are
//! scheduled onto one bounded pool of OS threads (default:
//! `available_parallelism`, overridable with `HH_WORKERS`), so a figure
//! with five rows × N servers keeps every core busy without oversubscribing
//! the machine. Results are collected by server index and merged in config
//! order, which makes every metric bit-identical regardless of the worker
//! count or scheduling interleaving.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};

use hh_server::{ServerConfig, ServerMetrics, ServerSim, SystemSpec};

use crate::{ClusterMetrics, Scale};

/// A unit of pool work: simulate one server, send its metrics home.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// The memo table behind [`RunPlan`]: result cells bucketed by the
/// fingerprint hash, with the *full* resolved key stored alongside each
/// cell.
///
/// Keying by the bare 64-bit FNV-1a fingerprint alone would silently serve
/// one configuration's [`ClusterMetrics`] for a different configuration on
/// a hash collision. Instead the hash only selects a bucket; within the
/// bucket the complete key string (system label plus every resolved
/// per-server config) is compared before a cell is shared, so colliding
/// configurations get distinct cells and distinct simulations.
///
/// Public so the `hh-check` oracle suite can probe the collision behaviour
/// directly (forcing a real FNV-1a collision through `ServerConfig` is
/// impractical; probing the bucket API is not).
#[derive(Debug, Default)]
pub struct MemoTable {
    buckets: Mutex<BTreeMap<u64, Vec<(Box<str>, Arc<OnceLock<ClusterMetrics>>)>>>,
}

impl MemoTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MemoTable::default()
    }

    /// The result cell for (`hash`, `full_key`), created on first use.
    /// Two calls share a cell only when the full keys match — the hash is
    /// a bucket index, never the identity. The `Arc<OnceLock>` is cloned
    /// out of the table before initialization, so concurrent requests for
    /// the same key block on one simulation instead of racing duplicates.
    pub fn cell(&self, hash: u64, full_key: &str) -> Arc<OnceLock<ClusterMetrics>> {
        // hh-lint: allow(unwrap-in-hot-path): lock poisoning means a worker
        // panicked mid-simulation; the run is already lost, die loudly.
        let mut buckets = self.buckets.lock().expect("memo poisoned");
        let bucket = buckets.entry(hash).or_default();
        if let Some((_, cell)) = bucket.iter().find(|(k, _)| &**k == full_key) {
            return Arc::clone(cell);
        }
        let cell = Arc::new(OnceLock::new());
        bucket.push((full_key.into(), Arc::clone(&cell)));
        cell
    }

    /// Number of distinct keys stored.
    pub fn len(&self) -> usize {
        self.buckets
            .lock()
            // hh-lint: allow(unwrap-in-hot-path): poisoning implies a
            // worker already panicked; propagate the failure.
            .expect("memo poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Memoizing parallel executor for cluster simulations.
///
/// See the module docs for the design. The process-wide instance used by
/// [`crate::run_cluster`] and [`crate::Experiments`] is [`RunPlan::global`];
/// tests that need isolated memo tables or fixed worker counts create their
/// own with [`RunPlan::with_workers`] / [`RunPlan::leaked`].
pub struct RunPlan {
    workers: usize,
    queue: mpsc::Sender<Job>,
    /// One cell per distinct simulation (see [`MemoTable`]).
    memo: MemoTable,
    sims_run: AtomicU64,
    memo_hits: AtomicU64,
}

impl fmt::Debug for RunPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunPlan")
            .field("workers", &self.workers)
            .field("sims_run", &self.sims_run())
            .field("memo_hits", &self.memo_hits())
            .finish()
    }
}

impl RunPlan {
    /// An executor with `workers` pool threads (clamped to at least one).
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            std::thread::spawn(move || loop {
                // Take the lock only to dequeue; run the job unlocked.
                // hh-lint: allow(unwrap-in-hot-path): a poisoned queue lock
                // means a sibling worker panicked; joining it is pointless.
                let job = match rx.lock().expect("worker queue poisoned").recv() {
                    Ok(job) => job,
                    Err(_) => break, // executor dropped
                };
                if hh_trace::enabled() {
                    hh_trace::exec::worker_begin();
                    job();
                    hh_trace::exec::worker_end();
                } else {
                    job();
                }
            });
        }
        RunPlan {
            workers,
            queue: tx,
            memo: MemoTable::new(),
            sims_run: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
        }
    }

    /// The process-wide executor. Worker count comes from `HH_WORKERS`
    /// when set (and positive), else `available_parallelism`.
    pub fn global() -> &'static RunPlan {
        static GLOBAL: OnceLock<RunPlan> = OnceLock::new();
        GLOBAL.get_or_init(|| RunPlan::with_workers(default_workers()))
    }

    /// A leaked, `'static` executor for tests that pin the worker count or
    /// need an isolated memo table / fresh counters.
    pub fn leaked(workers: usize) -> &'static RunPlan {
        Box::leak(Box::new(RunPlan::with_workers(workers)))
    }

    /// Pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Cluster simulations actually executed (memo misses).
    pub fn sims_run(&self) -> u64 {
        self.sims_run.load(Ordering::Relaxed)
    }

    /// Cluster runs served from the memo table without simulating.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.load(Ordering::Relaxed)
    }

    /// Runs (or recalls) a cluster under `system` with per-server config
    /// tweaks. Equivalent requests — same resolved configs — simulate once.
    pub fn run_cluster_with(
        &self,
        system: SystemSpec,
        scale: Scale,
        seed: u64,
        tweak: impl Fn(&mut ServerConfig),
    ) -> ClusterMetrics {
        let traced = hh_trace::enabled();
        let t0 = if traced { hh_trace::exec::wall_us() } else { 0.0 };
        let configs = resolved_configs(system, scale, seed, tweak);
        let (hash, full_key) = memo_key(system, &configs);
        let cell = self.memo.cell(hash, &full_key);
        if let Some(hit) = cell.get() {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            if traced {
                hh_trace::exec::record_span(cluster_span_label(system, seed), t0, true);
            }
            return hit.clone();
        }
        let mut simulated = false;
        let out = cell
            .get_or_init(|| {
                simulated = true;
                self.sims_run.fetch_add(1, Ordering::Relaxed);
                self.simulate(system, configs)
            })
            .clone();
        if traced {
            // A racing thread may have initialized the cell first; that
            // still counts as a memo hit from this caller's perspective.
            hh_trace::exec::record_span(cluster_span_label(system, seed), t0, !simulated);
        }
        out
    }

    /// Runs (or recalls) a cluster with stock Table 1 knobs.
    pub fn run_cluster(&self, system: SystemSpec, scale: Scale, seed: u64) -> ClusterMetrics {
        self.run_cluster_with(system, scale, seed, |_| {})
    }

    /// Fans the per-server jobs out to the pool and reassembles the
    /// metrics in server order (determinism does not depend on which
    /// worker finishes first).
    fn simulate(&self, system: SystemSpec, configs: Vec<ServerConfig>) -> ClusterMetrics {
        let n = configs.len();
        let (tx, rx) = mpsc::channel::<(usize, ServerMetrics)>();
        let sys_name = system.name;
        for (i, cfg) in configs.into_iter().enumerate() {
            let tx = tx.clone();
            self.queue
                .send(Box::new(move || {
                    let traced = hh_trace::enabled();
                    let t0 = if traced { hh_trace::exec::wall_us() } else { 0.0 };
                    let metrics = ServerSim::new(cfg).run();
                    if traced {
                        hh_trace::exec::record_span(format!("{sys_name}#{i}"), t0, false);
                    }
                    // The receiver only disappears if this run was abandoned
                    // (caller panicked); nothing left to report then.
                    let _ = tx.send((i, metrics));
                }))
                // hh-lint: allow(unwrap-in-hot-path): send fails only after
                // every worker thread died, which is itself a panic already.
                .expect("worker pool shut down");
        }
        drop(tx);
        let mut slots: Vec<Option<ServerMetrics>> = (0..n).map(|_| None).collect();
        for (i, metrics) in rx {
            slots[i] = Some(metrics);
        }
        ClusterMetrics::new(
            system.name,
            slots
                .into_iter()
                // hh-lint: allow(unwrap-in-hot-path): every slot is filled
                // exactly once by construction of the (i, metrics) channel.
                .map(|s| s.expect("server simulation lost"))
                .collect(),
        )
    }
}

/// Label of a cluster-level executor span: system plus request seed.
fn cluster_span_label(system: SystemSpec, seed: u64) -> String {
    format!("{} seed={seed:#x}", system.name)
}

/// Resolves the per-server configurations of one cluster run, applying the
/// experiment's tweak hook to each. This is exactly what [`RunPlan`] would
/// simulate for the same arguments — public so the `hh-check` serial
/// reference executor can replay identical configs outside the pool.
pub fn resolved_configs(
    system: SystemSpec,
    scale: Scale,
    seed: u64,
    tweak: impl Fn(&mut ServerConfig),
) -> Vec<ServerConfig> {
    (0..scale.servers)
        .map(|i| {
            let mut cfg = ServerConfig::table1(system);
            cfg.requests_per_vm = scale.requests_per_vm;
            cfg.rps_per_vm = scale.rps_per_vm;
            cfg.batch_job = i % 8;
            cfg.seed = seed ^ ((i as u64 + 1) << 32);
            tweak(&mut cfg);
            cfg
        })
        .collect()
}

/// The memo identity of one cluster run: the full key string (system label
/// plus the `Debug` rendering of every resolved per-server config, which
/// embeds the [`SystemSpec`], the scale knobs and the per-server seed) and
/// its FNV-1a hash. The label is mixed in so same-config variants renamed
/// for a figure stay distinct rows. The hash picks the [`MemoTable`]
/// bucket; the string is what actually identifies the run.
fn memo_key(system: SystemSpec, configs: &[ServerConfig]) -> (u64, String) {
    use fmt::Write;
    let mut full = String::with_capacity(256);
    full.push_str(system.name);
    for cfg in configs {
        full.push('\n');
        // hh-lint: allow(unwrap-in-hot-path): fmt::Write to String cannot
        // fail; the expect documents that, it never fires.
        write!(full, "{cfg:?}").expect("String write is infallible");
    }

    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in full.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    (h, full)
}

/// `HH_WORKERS` when set to a positive integer, else the machine's
/// available parallelism.
fn default_workers() -> usize {
    if let Ok(v) = std::env::var("HH_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            servers: 2,
            requests_per_vm: 40,
            rps_per_vm: 800.0,
        }
    }

    #[test]
    fn memo_hash_collision_keeps_cells_distinct() {
        // Two different resolved configs forced onto the same fingerprint
        // hash: the bucket must hold two cells, not alias one result.
        let memo = MemoTable::new();
        let a = memo.cell(0xDEAD_BEEF, "NoHarvest\nconfig-a");
        let b = memo.cell(0xDEAD_BEEF, "NoHarvest\nconfig-b");
        assert!(
            !Arc::ptr_eq(&a, &b),
            "hash collision must not alias two different configs"
        );
        assert_eq!(memo.len(), 2);
        // Same hash *and* same full key → the same cell (the memo still
        // deduplicates what it should).
        let a_again = memo.cell(0xDEAD_BEEF, "NoHarvest\nconfig-a");
        assert!(Arc::ptr_eq(&a, &a_again));
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn memo_key_separates_configs_beyond_the_hash() {
        let sys = SystemSpec::no_harvest();
        let a = resolved_configs(sys, tiny(), 9, |_| {});
        let b = resolved_configs(sys, tiny(), 9, |cfg| cfg.requests_per_vm = 20);
        let (_, key_a) = memo_key(sys, &a);
        let (_, key_b) = memo_key(sys, &b);
        assert_ne!(key_a, key_b, "full keys must differ for different configs");
        let (hash_a2, key_a2) = memo_key(sys, &a);
        assert_eq!((memo_key(sys, &a).0, key_a.clone()), (hash_a2, key_a2));
    }

    #[test]
    fn identical_requests_simulate_once() {
        let plan = RunPlan::with_workers(2);
        let a = plan.run_cluster(SystemSpec::no_harvest(), tiny(), 9);
        let b = plan.run_cluster(SystemSpec::no_harvest(), tiny(), 9);
        assert_eq!(plan.sims_run(), 1);
        assert_eq!(plan.memo_hits(), 1);
        assert_eq!(a.completed(), b.completed());
        assert_eq!(
            a.pooled_latency_ms().values(),
            b.pooled_latency_ms().values()
        );
    }

    #[test]
    fn different_tweaks_do_not_collide() {
        let plan = RunPlan::with_workers(2);
        let a = plan.run_cluster(SystemSpec::no_harvest(), tiny(), 9);
        let b = plan.run_cluster_with(SystemSpec::no_harvest(), tiny(), 9, |cfg| {
            cfg.requests_per_vm = 20;
        });
        assert_eq!(plan.sims_run(), 2);
        assert_ne!(a.completed(), b.completed());
    }

    #[test]
    fn renamed_variant_is_a_distinct_row() {
        // Same config, different figure label: both must simulate (the
        // label is part of the row identity even though metrics match).
        let plan = RunPlan::with_workers(1);
        let a = plan.run_cluster(SystemSpec::no_harvest(), tiny(), 9);
        let b = plan.run_cluster(SystemSpec::no_harvest_named("No-Move"), tiny(), 9);
        assert_eq!(plan.sims_run(), 2);
        assert_eq!(a.system(), "NoHarvest");
        assert_eq!(b.system(), "No-Move");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let one = RunPlan::with_workers(1);
        let four = RunPlan::with_workers(4);
        let a = one.run_cluster(SystemSpec::hardharvest_block(), tiny(), 3);
        let b = four.run_cluster(SystemSpec::hardharvest_block(), tiny(), 3);
        assert_eq!(
            a.pooled_latency_ms().values(),
            b.pooled_latency_ms().values()
        );
        assert_eq!(a.avg_busy_cores(), b.avg_busy_cores());
    }

    #[test]
    fn concurrent_identical_requests_share_one_simulation() {
        let plan: &'static RunPlan = RunPlan::leaked(2);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    plan.run_cluster(SystemSpec::harvest_block(), tiny(), 5)
                })
            })
            .collect();
        let runs: Vec<ClusterMetrics> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Racing threads either hit the memo fast path or block inside the
        // same cell's initialization — never a duplicate simulation.
        assert_eq!(plan.sims_run(), 1);
        assert!(plan.memo_hits() <= 3);
        for r in &runs[1..] {
            assert_eq!(
                r.pooled_latency_ms().values(),
                runs[0].pooled_latency_ms().values()
            );
        }
    }
}
