//! One runner per table/figure in the paper's evaluation.
//!
//! Each `figN` method runs the simulations that figure needs and returns a
//! typed result that renders to the same rows/series the paper plots. The
//! index in `DESIGN.md` maps every method to its figure.

use hh_hwqueue::storage::StorageCost;
use hh_server::{ServerConfig, SystemSpec};
use hh_workload::trace::TraceSet;
use hh_workload::ServiceCatalog;
use serde::Serialize;

use crate::{ClusterMetrics, PolicyHitRates, ReplacementLab, RunPlan, Scale, Table};

/// Service names in figure order.
fn service_names() -> Vec<&'static str> {
    ServiceCatalog::socialnet().iter().map(|(_, p)| p.name).collect()
}

/// A latency figure: one row per system/variant, one column per service
/// plus the average (the shape of Figures 4, 5, 7, 11, 12, 13, 15, 16,
/// 18, 19).
#[derive(Debug, Clone, Serialize)]
pub struct LatencyFigure {
    /// Figure identifier (e.g. "Figure 11").
    pub title: String,
    /// "P99" or "Median".
    pub metric: &'static str,
    /// Column labels.
    pub services: Vec<&'static str>,
    /// Rows: (label, per-service values in ms, pooled value in ms).
    pub rows: Vec<LatencyRow>,
}

/// One bar group of a latency figure.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyRow {
    /// System / variant label.
    pub label: String,
    /// Latency per service, milliseconds.
    pub per_service_ms: Vec<f64>,
    /// Pooled latency across services, milliseconds.
    pub average_ms: f64,
}

impl LatencyFigure {
    fn from_runs(
        title: String,
        metric: &'static str,
        runs: Vec<(String, ClusterMetrics)>,
    ) -> Self {
        let q = if metric == "Median" { 0.5 } else { 0.99 };
        let services = service_names();
        let rows = runs
            .into_iter()
            .map(|(label, m)| {
                // One pass over the per-server sample sets yields every
                // column of the row (see ClusterMetrics::latency_percentiles).
                let (per_service_ms, average_ms) = m.latency_percentiles(q);
                LatencyRow {
                    label,
                    per_service_ms,
                    average_ms,
                }
            })
            .collect();
        LatencyFigure {
            title,
            metric,
            services,
            rows,
        }
    }

    /// Renders the figure as a text table.
    pub fn to_table(&self) -> Table {
        let mut header = vec![format!("{} ({} ms)", self.title, self.metric)];
        header.extend(self.services.iter().map(|s| s.to_string()));
        header.push("Avg".into());
        let mut t = Table::new(header);
        for r in &self.rows {
            let mut vals = r.per_service_ms.clone();
            vals.push(r.average_ms);
            t.row_f64(&r.label, &vals);
        }
        t
    }

    /// Average-column value of a row by label.
    ///
    /// # Panics
    /// Panics if the label is absent.
    pub fn avg_of(&self, label: &str) -> f64 {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .unwrap_or_else(|| panic!("row {label} missing"))
            .average_ms
    }
}

/// Figure 2: CDFs of average and maximum instance core utilization.
#[derive(Debug, Clone, Serialize)]
pub struct UtilizationCdf {
    /// Sorted per-instance average utilizations.
    pub avg: Vec<f64>,
    /// Sorted per-instance maximum utilizations.
    pub max: Vec<f64>,
}

impl UtilizationCdf {
    /// Quantile of the average-utilization CDF.
    pub fn avg_quantile(&self, q: f64) -> f64 {
        TraceSet::quantile(&self.avg, q)
    }

    /// Quantile of the maximum-utilization CDF.
    pub fn max_quantile(&self, q: f64) -> f64 {
        TraceSet::quantile(&self.max, q)
    }

    /// Renders selected CDF points as a table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(vec![
            "Figure 2 (CDF)".into(),
            "AlibabaAvg".into(),
            "AlibabaMax".into(),
        ]);
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            t.row_f64(
                &format!("p{:02.0}", q * 100.0),
                &[self.avg_quantile(q), self.max_quantile(q)],
            );
        }
        t
    }
}

/// Figure 6: per-request execution-time breakdown without/with software
/// core harvesting.
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownFigure {
    /// Column labels.
    pub services: Vec<&'static str>,
    /// Mean request time under NoHarvest, ms (compute+stalls+IO).
    pub no_harvest_ms: Vec<f64>,
    /// Mean reassignment component under software harvesting, ms.
    pub reassign_ms: Vec<f64>,
    /// Mean flush/invalidate component, ms.
    pub flush_ms: Vec<f64>,
    /// Mean execution component (incl. cold-structure slowdown), ms.
    pub exec_ms: Vec<f64>,
}

impl BreakdownFigure {
    /// Renders the stacked-bar data.
    pub fn to_table(&self) -> Table {
        let mut header = vec!["Figure 6 (ms/request)".to_string()];
        header.extend(self.services.iter().map(|s| s.to_string()));
        header.push("Avg".into());
        let mut t = Table::new(header);
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        for (label, vals) in [
            ("NoHarvest total", &self.no_harvest_ms),
            ("Harvest: CoreReassign", &self.reassign_ms),
            ("Harvest: Flush/Inval", &self.flush_ms),
            ("Harvest: Execution", &self.exec_ms),
        ] {
            let mut row = vals.clone();
            row.push(avg(vals));
            t.row_f64(label, &row);
        }
        let mut total: Vec<f64> = (0..self.services.len())
            .map(|i| self.reassign_ms[i] + self.flush_ms[i] + self.exec_ms[i])
            .collect();
        total.push(avg(&total));
        t.row_f64("Harvest total", &total);
        t
    }

    /// Average harvest-to-noharvest request-time ratio (paper: ≈1.9×).
    pub fn slowdown(&self) -> f64 {
        let n = self.services.len() as f64;
        let harvest: f64 = (0..self.services.len())
            .map(|i| self.reassign_ms[i] + self.flush_ms[i] + self.exec_ms[i])
            .sum::<f64>()
            / n;
        let base: f64 = self.no_harvest_ms.iter().sum::<f64>() / n;
        harvest / base
    }
}

/// Figure 17: Harvest-VM throughput normalized to NoHarvest, per batch job.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputFigure {
    /// Batch job names (one per server).
    pub jobs: Vec<&'static str>,
    /// Rows: (system label, per-job normalized throughput, geometric-ish
    /// mean).
    pub rows: Vec<(String, Vec<f64>, f64)>,
}

impl ThroughputFigure {
    /// Renders the figure.
    pub fn to_table(&self) -> Table {
        let mut header = vec!["Figure 17 (norm. throughput)".to_string()];
        header.extend(self.jobs.iter().map(|s| s.to_string()));
        header.push("Avg".into());
        let mut t = Table::new(header);
        for (label, vals, avg) in &self.rows {
            let mut row = vals.clone();
            row.push(*avg);
            t.row_f64(label, &row);
        }
        t
    }

    /// Average normalized throughput of a system.
    ///
    /// # Panics
    /// Panics if the label is absent.
    pub fn avg_of(&self, label: &str) -> f64 {
        self.rows
            .iter()
            .find(|(l, _, _)| l == label)
            .unwrap_or_else(|| panic!("row {label} missing"))
            .2
    }
}

/// Runs one closure per figure row on its own thread, so every row's
/// per-server jobs reach the executor's worker pool together. Rows come
/// back in input order regardless of completion order, keeping rendered
/// tables deterministic.
fn par_rows<I, F>(items: Vec<I>, run: F) -> Vec<(String, ClusterMetrics)>
where
    I: Send,
    F: Fn(I) -> (String, ClusterMetrics) + Sync,
{
    std::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = items
            .into_iter()
            .map(|item| scope.spawn(move || run(item)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("figure row panicked"))
            .collect()
    })
}

/// The experiment runner: all figures at one [`Scale`].
#[derive(Debug, Clone, Copy)]
pub struct Experiments {
    /// Run size.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Executor that schedules and memoizes every cluster simulation.
    pub plan: &'static RunPlan,
}

impl Experiments {
    /// Quick-scale experiments (tests, smoke runs).
    pub fn quick() -> Self {
        Experiments {
            scale: Scale::quick(),
            seed: 0x15CA,
            plan: RunPlan::global(),
        }
    }

    /// Paper-scale experiments.
    pub fn paper() -> Self {
        Experiments {
            scale: Scale::paper(),
            ..Experiments::quick()
        }
    }

    /// The same experiments on a specific executor (isolated memo table /
    /// pinned worker count — see [`RunPlan::leaked`]).
    pub fn on_plan(self, plan: &'static RunPlan) -> Self {
        Experiments { plan, ..self }
    }

    /// Runs or recalls one cluster on this runner's executor.
    fn cluster(&self, system: SystemSpec) -> ClusterMetrics {
        self.plan.run_cluster(system, self.scale, self.seed)
    }

    fn latency_fig(
        &self,
        title: &str,
        metric: &'static str,
        systems: Vec<SystemSpec>,
        tweak: impl Fn(&mut ServerConfig) + Sync + Copy,
    ) -> LatencyFigure {
        let runs = par_rows(systems, |s| {
            (
                s.name.to_string(),
                self.plan.run_cluster_with(s, self.scale, self.seed, tweak),
            )
        });
        LatencyFigure::from_runs(title.into(), metric, runs)
    }

    /// Figure 2: utilization CDFs of a synthetic Alibaba-like population.
    pub fn fig2(&self) -> UtilizationCdf {
        let set = TraceSet::synthesize(4000, 100, self.seed);
        UtilizationCdf {
            avg: set.avg_cdf(),
            max: set.max_cdf(),
        }
    }

    /// Figure 3: the representative bursty utilization time series.
    pub fn fig3(&self) -> Vec<f64> {
        let set = TraceSet::synthesize(500, 17, self.seed); // ~500 s at 30 s grain
        set.representative().samples().to_vec()
    }

    /// Figure 4: tail latency under hypervisor reassignment overheads only
    /// (no flushing, idle Harvest VM).
    pub fn fig4(&self) -> LatencyFigure {
        use hh_server::{HarvestMode, SwReassign};
        let mk = |name: &'static str, mode, sw| {
            let mut s = match mode {
                HarvestMode::OnTermination => SystemSpec::harvest_term(),
                _ => SystemSpec::harvest_block(),
            };
            s.name = name;
            s.sw_reassign = sw;
            s.flush_enabled = false;
            s.harvest_busy = false;
            s.buffer_cores = 0;
            // KVM's 5 ms moves are necessarily rare (the paper observed
            // 11-36 per second): one core at a time through the agent.
            // The optimized path moves cores per idle/ready event, as the
            // characterization script does.
            if matches!(sw, SwReassign::Kvm) {
                s.max_loaned_per_vm = 1;
            } else {
                s.max_loaned_per_vm = 4;
                s.eager_steal = true;
            }
            s
        };
        let systems = vec![
            SystemSpec::no_harvest_named("No-Move"),
            mk("KVM-Term", hh_server::HarvestMode::OnTermination, SwReassign::Kvm),
            mk("KVM-Block", hh_server::HarvestMode::OnBlock, SwReassign::Kvm),
            mk("Opt-Term", hh_server::HarvestMode::OnTermination, SwReassign::Optimized),
            mk("Opt-Block", hh_server::HarvestMode::OnBlock, SwReassign::Optimized),
        ];
        self.latency_fig("Figure 4", "P99", systems, |_| {})
    }

    /// Figure 5: tail latency under cache/TLB flushing (Flush-*) and
    /// flushing plus optimized reassignment (Harvest-*); Harvest VM idle.
    pub fn fig5(&self) -> LatencyFigure {
        let mk = |name: &'static str, block: bool, reassign: bool| {
            let mut s = if block {
                SystemSpec::harvest_block()
            } else {
                SystemSpec::harvest_term()
            };
            s.name = name;
            s.flush_enabled = true;
            s.reassign_enabled = reassign;
            s.harvest_busy = false;
            s.buffer_cores = 0;
            // Per-event moves with the optimized reassignment path.
            s.max_loaned_per_vm = 4;
            s.eager_steal = true;
            s
        };
        let systems = vec![
            SystemSpec::no_harvest_named("No Flush"),
            mk("Flush-Term", false, false),
            mk("Flush-Block", true, false),
            mk("Harvest-Term", false, true),
            mk("Harvest-Block", true, true),
        ];
        self.latency_fig("Figure 5", "P99", systems, |_| {})
    }

    /// Figure 6: single-request execution-time breakdown at light load,
    /// under the Section 3 characterization environment (per-event moves
    /// with optimized reassignment plus full flushing, like Figure 5's
    /// Harvest-Block).
    pub fn fig6(&self) -> BreakdownFigure {
        let scale = self.scale.light_load();
        let base = self.plan.run_cluster(SystemSpec::no_harvest(), scale, self.seed);
        let mut sys = SystemSpec::harvest_block();
        sys.harvest_busy = true;
        sys.buffer_cores = 0;
        sys.max_loaned_per_vm = 4;
        let harv = self.plan.run_cluster(sys, scale, self.seed);
        let services = service_names();
        let n = services.len();
        let mut fig = BreakdownFigure {
            services,
            no_harvest_ms: Vec::with_capacity(n),
            reassign_ms: Vec::with_capacity(n),
            flush_ms: Vec::with_capacity(n),
            exec_ms: Vec::with_capacity(n),
        };
        for s in 0..n {
            let collect = |m: &ClusterMetrics| {
                let mut exec = 0.0;
                let mut io = 0.0;
                let mut reassign = 0.0;
                let mut flush = 0.0;
                let mut done = 0u64;
                for srv in m.servers() {
                    let sm = &srv.services[s];
                    exec += sm.exec.as_ms();
                    io += sm.io.as_ms();
                    reassign += sm.reassign_wait.as_ms();
                    flush += sm.flush_wait.as_ms();
                    done += sm.completed;
                }
                let d = done.max(1) as f64;
                ((exec + io) / d, reassign / d, flush / d)
            };
            let (b_exec, _, _) = collect(&base);
            let (h_exec, h_re, h_fl) = collect(&harv);
            fig.no_harvest_ms.push(b_exec);
            fig.reassign_ms.push(h_re);
            fig.flush_ms.push(h_fl);
            fig.exec_ms.push(h_exec);
        }
        fig
    }

    /// Figure 7: tail latency with a fraction of the cache/TLB hierarchy
    /// (Inf / 100 % / 75 % / 50 % / 25 % of the ways).
    pub fn fig7(&self) -> LatencyFigure {
        let variants: [(&'static str, f64, bool); 5] = [
            ("Inf", 1.0, true),
            ("100%", 1.0, false),
            ("75%", 0.75, false),
            ("50%", 0.5, false),
            ("25%", 0.25, false),
        ];
        let runs = par_rows(variants.to_vec(), |(label, frac, inf)| {
            let m = self.plan.run_cluster_with(
                SystemSpec::no_harvest(),
                self.scale,
                self.seed,
                move |cfg| {
                    cfg.capacity_frac = frac;
                    cfg.infinite_cache = inf;
                },
            );
            (label.to_string(), m)
        });
        LatencyFigure::from_runs("Figure 7".into(), "P99", runs)
    }

    /// Figure 11: the headline P99 comparison of the five systems.
    pub fn fig11(&self) -> LatencyFigure {
        self.latency_fig("Figure 11", "P99", SystemSpec::evaluated_five(), |_| {})
    }

    /// Figure 12: the cumulative optimization ladder on Harvest-Block.
    pub fn fig12(&self) -> LatencyFigure {
        self.latency_fig("Figure 12", "P99", SystemSpec::fig12_ladder(), |_| {})
    }

    /// Figure 13: Sched/CtxtSw ablation.
    pub fn fig13(&self) -> LatencyFigure {
        self.latency_fig("Figure 13", "P99", SystemSpec::fig13_ablation(), |_| {})
    }

    /// Figure 14: L2 hit rate under LRU/RRIP/HardHarvest/Belady.
    pub fn fig14(&self) -> Vec<PolicyHitRates> {
        ReplacementLab::default().run()
    }

    /// Figure 15: the optimization ladder without core harvesting.
    pub fn fig15(&self) -> LatencyFigure {
        self.latency_fig("Figure 15", "P99", SystemSpec::fig15_ladder(), |_| {})
    }

    /// Figure 16: median latency of the five systems.
    pub fn fig16(&self) -> LatencyFigure {
        self.latency_fig("Figure 16", "Median", SystemSpec::evaluated_five(), |_| {})
    }

    /// Figure 17: Harvest-VM throughput normalized to NoHarvest.
    pub fn fig17(&self) -> ThroughputFigure {
        let systems = SystemSpec::evaluated_five();
        let jobs: Vec<&'static str> = hh_workload::BatchCatalog::paper()
            .iter()
            .map(|j| j.name)
            .take(self.scale.servers)
            .collect();
        let runs = par_rows(systems, |s| (s.name.to_string(), self.cluster(s)));
        let base = &runs[0].1;
        let rows = runs
            .iter()
            .map(|(name, m)| {
                let vals: Vec<f64> = (0..jobs.len())
                    .map(|i| {
                        let b = base.batch_throughput(i).max(1e-9);
                        m.batch_throughput(i) / b
                    })
                    .collect();
                let avg = vals.iter().sum::<f64>() / vals.len() as f64;
                (name.clone(), vals, avg)
            })
            .collect();
        ThroughputFigure { jobs, rows }
    }

    /// Section 6.7: average busy cores of the five systems.
    pub fn utilization(&self) -> Vec<(String, f64)> {
        par_rows(SystemSpec::evaluated_five(), |s| {
            (s.name.to_string(), self.cluster(s))
        })
        .into_iter()
        .map(|(name, m)| (name, m.avg_busy_cores()))
        .collect()
    }

    /// Section 6.8: storage/area/power accounting.
    pub fn storage(&self) -> StorageCost {
        StorageCost::paper()
    }

    /// Figure 18: LLC-size sensitivity of HardHarvest-Block.
    pub fn fig18(&self) -> LatencyFigure {
        let sizes = [
            ("2.5MB/core", 2_621_440usize),
            ("2MB/core", 2_097_152),
            ("1MB/core", 1_048_576),
            ("0.5MB/core", 524_288),
        ];
        let runs = par_rows(sizes.to_vec(), |(label, bytes)| {
            let m = self.plan.run_cluster_with(
                SystemSpec::hardharvest_block(),
                self.scale,
                self.seed,
                move |cfg| cfg.llc.per_core_bytes = bytes,
            );
            (label.to_string(), m)
        });
        LatencyFigure::from_runs("Figure 18".into(), "P99", runs)
    }

    /// Figure 19: eviction-candidate-set-size sensitivity.
    pub fn fig19(&self) -> LatencyFigure {
        let fracs = [("25%", 0.25), ("50%", 0.5), ("75%", 0.75), ("100%", 1.0)];
        let runs = par_rows(fracs.to_vec(), |(label, f)| {
            let m = self.plan.run_cluster_with(
                SystemSpec::hardharvest_block(),
                self.scale,
                self.seed,
                move |cfg| cfg.eviction_candidate_frac = Some(f),
            );
            (label.to_string(), m)
        });
        LatencyFigure::from_runs("Figure 19".into(), "P99", runs)
    }

    /// Extension (paper Section 4.1.5 future work): adaptive harvesting —
    /// steal on blocking calls only for VMs whose blocks are long. Compares
    /// P99 and normalized Harvest throughput of HH-Term / HH-Adaptive /
    /// HH-Block.
    pub fn adaptive(&self) -> Table {
        let base = self.cluster(SystemSpec::no_harvest());
        let base_thpt: f64 = (0..self.scale.servers)
            .map(|i| base.batch_throughput(i))
            .sum::<f64>()
            .max(1e-9);
        let mut t = Table::new(vec![
            "Adaptive harvesting (extension)".into(),
            "P99 [ms]".into(),
            "norm. batch thpt".into(),
            "reassignments".into(),
        ]);
        for s in [
            SystemSpec::hardharvest_term(),
            SystemSpec::hardharvest_adaptive(),
            SystemSpec::hardharvest_block(),
        ] {
            let m = self.cluster(s);
            let thpt: f64 = (0..self.scale.servers).map(|i| m.batch_throughput(i)).sum();
            let reassigns: u64 = m.servers().iter().map(|sv| sv.reassignments).sum();
            t.row(vec![
                s.name.into(),
                format!("{:.3}", m.pooled_latency_ms().p99()),
                format!("{:.3}", thpt / base_thpt),
                reassigns.to_string(),
            ]);
        }
        t
    }

    /// Ablation (Section 4.2.1 design choice): size of the harvest region
    /// — 1/3, 1/2 or 2/3 of the ways of every private structure.
    pub fn region_sweep(&self) -> LatencyFigure {
        let fracs = [("1/3 ways", 1.0 / 3.0), ("1/2 ways", 0.5), ("2/3 ways", 2.0 / 3.0)];
        let runs = par_rows(fracs.to_vec(), |(label, f)| {
            let m = self.plan.run_cluster_with(
                SystemSpec::hardharvest_block(),
                self.scale,
                self.seed,
                move |cfg| cfg.harvest_frac = f,
            );
            (label.to_string(), m)
        });
        LatencyFigure::from_runs("Harvest-region sweep (extension)".into(), "P99", runs)
    }

    /// Ablation (Section 4.1.7 design choice): RQ sized down to force
    /// overflow into the in-memory subqueues.
    pub fn overflow_pressure(&self) -> Table {
        let mut t = Table::new(vec![
            "RQ chunks".into(),
            "P99 [ms]".into(),
            "overflowed requests".into(),
        ]);
        for chunks in [32usize, 16, 9] {
            let m = self.plan.run_cluster_with(
                SystemSpec::hardharvest_block(),
                self.scale,
                self.seed,
                move |cfg| cfg.rq_chunks = chunks,
            );
            let overflows: u64 = m.servers().iter().map(|s| s.queue_overflows).sum();
            t.row(vec![
                chunks.to_string(),
                format!("{:.3}", m.pooled_latency_ms().p99()),
                overflows.to_string(),
            ]);
        }
        t
    }

    /// Ablation (model fidelity): flat-latency memory model vs explicit
    /// MSHR modeling (Table 1: 32 MSHRs) at two MSHR depths.
    pub fn mshr_sweep(&self) -> LatencyFigure {
        let variants: [(&'static str, Option<usize>); 3] =
            [("no-MSHR model", None), ("32 MSHRs", Some(32)), ("8 MSHRs", Some(8))];
        let runs = par_rows(variants.to_vec(), |(label, mshrs)| {
            let m = self.plan.run_cluster_with(
                SystemSpec::hardharvest_block(),
                self.scale,
                self.seed,
                move |cfg| cfg.hierarchy.mshrs = mshrs,
            );
            (label.to_string(), m)
        });
        LatencyFigure::from_runs("MSHR-model sweep (extension)".into(), "P99", runs)
    }

    /// Table 1: the modeled architectural parameters.
    pub fn table1(&self) -> Table {
        let cfg = ServerConfig::table1(SystemSpec::hardharvest_block());
        let mut t = Table::new(vec!["Parameter".into(), "Value".into()]);
        let rows: Vec<(&str, String)> = vec![
            ("Servers", "8".into()),
            ("Cores/server", cfg.cores.to_string()),
            ("Clock", "3 GHz".into()),
            ("L1D", "48KB 12-way, 5cyc RT".into()),
            ("L1I", "32KB 8-way, 5cyc RT".into()),
            ("L2", "512KB 8-way, 13cyc RT".into()),
            ("L3/core", "2MB 16-way, 36cyc RT".into()),
            ("L1 TLB", "128e 4-way, 2cyc RT".into()),
            ("L2 TLB", "2048e 8-way, 12cyc RT".into()),
            ("Intra-server NoC", "2D mesh, 5cyc/hop".into()),
            ("Inter-server", "1us RT, 200GB/s".into()),
            ("Primary VMs", format!("{} x {} cores", cfg.primary_vms, cfg.cores_per_primary)),
            ("Harvest VMs", format!("1 x {} cores + harvested", cfg.harvest_base_cores)),
            ("RQ", "32 chunks x 64 entries".into()),
            ("Queue Managers", "16".into()),
            ("VM State Regs", "16 x 8B".into()),
            ("Harvest region", format!("{:.0}% of ways", cfg.harvest_frac * 100.0)),
            ("Eviction candidates", "75% of ways".into()),
            ("Flush+Inv HarvRegion", "1000 cycles".into()),
        ];
        for (k, v) in rows {
            t.row(vec![k.to_string(), v]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiments {
        Experiments {
            scale: Scale {
                servers: 1,
                requests_per_vm: 50,
                rps_per_vm: 800.0,
            },
            seed: 0xE,
            plan: RunPlan::global(),
        }
    }

    #[test]
    fn fig2_matches_published_anchors() {
        let cdf = tiny().fig2();
        assert!((cdf.avg_quantile(0.5) - 0.161).abs() < 0.03);
        assert!((cdf.max_quantile(0.9) - 0.407).abs() < 0.08);
        assert!(!cdf.to_table().is_empty());
    }

    #[test]
    fn fig3_is_a_bursty_series() {
        let series = tiny().fig3();
        assert_eq!(series.len(), 17);
        let avg: f64 = series.iter().sum::<f64>() / series.len() as f64;
        let max = series.iter().copied().fold(0.0, f64::max);
        assert!(max > avg);
    }

    #[test]
    fn table1_renders() {
        let t = tiny().table1();
        let s = t.render();
        assert!(s.contains("3 GHz"));
        assert!(s.contains("32 chunks"));
    }

    #[test]
    fn storage_is_paper_config() {
        let s = tiny().storage();
        assert_eq!(s.controller_bytes(), 19_408);
    }

    #[test]
    fn fig11_and_fig16_share_their_simulations() {
        // P99 (fig11) and Median (fig16) read different quantiles of the
        // same five runs: together they must simulate exactly five
        // clusters, with the whole second figure served from the memo.
        let ex = tiny().on_plan(RunPlan::leaked(2));
        assert_eq!(ex.fig11().rows.len(), 5);
        assert_eq!(ex.fig16().rows.len(), 5);
        assert_eq!(ex.plan.sims_run(), 5);
        assert!(ex.plan.memo_hits() >= 5);
    }

    #[test]
    fn fig11_smoke_run_orders_systems() {
        let fig = tiny().fig11();
        assert_eq!(fig.rows.len(), 5);
        let no = fig.avg_of("NoHarvest");
        let sw = fig.avg_of("Harvest-Block");
        let hh = fig.avg_of("HardHarvest-Block");
        assert!(sw > no, "software harvesting should hurt tails: {sw} vs {no}");
        assert!(hh < sw, "hardware harvesting should beat software: {hh} vs {sw}");
        assert!(!fig.to_table().is_empty());
    }
}
