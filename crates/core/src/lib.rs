//! # hh-core — HardHarvest reproduction, public API
//!
//! This crate ties the whole reproduction together and is what the
//! examples, integration tests and benchmark harness consume:
//!
//! * [`run_cluster`] / [`run_cluster_with`] — simulate the paper's
//!   8-server cluster (one batch job per server) under any
//!   [`SystemSpec`]: `NoHarvest`, SmartHarvest-style software harvesting
//!   (`Harvest-Term`/`-Block`), or `HardHarvest-Term`/`-Block`, plus every
//!   ablation of Figures 12/13/15;
//! * [`Experiments`] — one method per table and figure in the paper's
//!   evaluation (see `DESIGN.md` for the index), returning typed rows that
//!   render via [`Table`];
//! * [`ReplacementLab`] — the offline Figure 14 policy study
//!   (LRU/RRIP/HardHarvest/Belady L2 hit rates);
//! * [`RunPlan`] — the memoizing bounded-pool executor every cluster run
//!   goes through (worker count: `HH_WORKERS`, default
//!   `available_parallelism`; repeated identical runs simulate once).
//!
//! ## Quickstart
//!
//! ```no_run
//! use hh_core::{run_cluster, Scale, SystemSpec};
//!
//! let m = run_cluster(SystemSpec::hardharvest_block(), Scale::quick(), 42);
//! println!("P99 = {:.2} ms", m.pooled_latency_ms().p99());
//! println!("utilization = {:.1} cores", m.avg_busy_cores());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod experiments;
mod lab;
mod report;
mod runplan;

pub use cluster::{run_cluster, run_cluster_with, ClusterMetrics, Scale};
pub use runplan::{resolved_configs, MemoTable, RunPlan};
pub use experiments::{
    BreakdownFigure, Experiments, LatencyFigure, LatencyRow, ThroughputFigure, UtilizationCdf,
};
pub use lab::{PolicyHitRates, ReplacementLab};
pub use report::Table;

// Re-export the layers a downstream user typically needs alongside the
// top-level API.
pub use hh_server::{
    HarvestMode, LatencyModel, OptFlags, ServerConfig, ServerMetrics, ServerSim, SystemSpec,
};
