//! The replacement-policy lab behind Figure 14.
//!
//! Belady's optimal policy needs the future, so it cannot run inside the
//! online system simulation. Instead the lab records, per service, the
//! stream of L2-bound references produced by interleaving microservice
//! invocations with harvest episodes (batch execution on the same core,
//! bracketed by harvest-region flushes), then replays that one trace
//! through every policy — vanilla LRU, SRRIP, HardHarvest's Algorithm 1,
//! and offline Belady — and reports the L2 hit rates.

use hh_mem::{
    BatchRef, BeladyCache, CacheConfig, PolicyKind, SetAssocCache, TraceOp, Visibility, WayMask,
};
use hh_sim::{Rng64, VmId};
use hh_workload::{BatchCatalog, RequestPlan, ServiceCatalog, ServiceId};
use serde::Serialize;

/// One recorded trace event: a *run* of L2-bound references sharing one
/// allowed-way mask (the unit `SetAssocCache::access_run` replays in a
/// single call), or a harvest-region flush.
#[derive(Debug, Clone)]
enum LabOp {
    Run { refs: Vec<BatchRef>, allowed: WayMask },
    Flush(WayMask),
}

/// Appends one reference, extending the current run when the allowed mask
/// is unchanged. Runs span whole invocations/harvest episodes, so batches
/// are long and the per-reference dispatch cost of replay disappears.
fn push_ref(ops: &mut Vec<LabOp>, key: u64, shared: bool, allowed: WayMask) {
    // The lab replays reads only: policy quality is measured by hit rate,
    // and dirtiness does not influence any studied policy's decisions.
    let r = BatchRef { key, shared, write: false };
    if let Some(LabOp::Run { refs, allowed: a }) = ops.last_mut() {
        if *a == allowed {
            refs.push(r);
            return;
        }
    }
    ops.push(LabOp::Run { refs: vec![r], allowed });
}

/// Hit rates of the four policies on the same trace (Figure 14's bars).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PolicyHitRates {
    /// Service name.
    pub service: &'static str,
    /// Vanilla LRU.
    pub lru: f64,
    /// SRRIP.
    pub rrip: f64,
    /// HardHarvest Algorithm 1 (M = 75 %).
    pub hardharvest: f64,
    /// Offline optimal (Belady).
    pub belady: f64,
}

/// The Figure 14 lab.
#[derive(Debug)]
pub struct ReplacementLab {
    l2_sets: usize,
    l2_ways: usize,
    harvest_mask: WayMask,
    /// Invocations interleaved with harvest episodes per service.
    pub invocations: usize,
}

impl Default for ReplacementLab {
    fn default() -> Self {
        let l2 = CacheConfig::l2();
        ReplacementLab {
            l2_sets: l2.sets(),
            l2_ways: l2.ways,
            harvest_mask: WayMask::fraction(l2.ways, 0.5),
            invocations: 40,
        }
    }
}

impl ReplacementLab {
    /// Records the per-service trace and evaluates all four policies.
    pub fn run(&self) -> Vec<PolicyHitRates> {
        let catalog = ServiceCatalog::socialnet();
        let batch = BatchCatalog::paper();
        let mut out = Vec::with_capacity(catalog.len());
        for (id, profile) in catalog.iter() {
            let ops = self.record_trace(id, profile.name, &catalog, &batch);
            out.push(PolicyHitRates {
                service: profile.name,
                lru: self.replay_online(&ops, PolicyKind::Lru),
                rrip: self.replay_online(&ops, PolicyKind::Rrip),
                hardharvest: self.replay_online(&ops, PolicyKind::hardharvest_default()),
                belady: self.replay_belady(&ops),
            });
        }
        out
    }

    /// Records the L2-bound reference stream of one core alternating
    /// between invocations of `service` and harvest episodes.
    fn record_trace(
        &self,
        service: ServiceId,
        name: &str,
        catalog: &ServiceCatalog,
        batch: &BatchCatalog,
    ) -> Vec<LabOp> {
        // L1 filters (fixed LRU so only the L2 policy varies). The filters
        // are deliberately small: the subsampled streams carry far fewer
        // references than real execution, so full-size L1s would swallow
        // all within-invocation reuse and leave the L2 trace artificially
        // reuse-free.
        let l1d = CacheConfig::l1d();
        let l1i = CacheConfig::l1i();
        let mut f_l1d =
            SetAssocCache::new(l1d.sets() / 8, l1d.ways, PolicyKind::Lru, WayMask::EMPTY);
        let mut f_l1i =
            SetAssocCache::new(l1i.sets() / 8, l1i.ways, PolicyKind::Lru, WayMask::EMPTY);
        let job = *batch
            .by_name(match name {
                // Pair each service with a batch job, round-robin like the
                // cluster does.
                "Text" => "BFS",
                "SGraph" => "CC",
                "User" => "DC",
                "PstStr" => "PRank",
                "UsrMnt" => "LRTrain",
                "HomeT" => "RndFTrain",
                "CPost" => "Hadoop",
                _ => "MUMmer",
            })
            .expect("job exists");

        let profile = catalog.get(service);
        let mut rng = Rng64::stream(0x14D, service.index() as u64);
        let all = WayMask::all(self.l2_ways);
        let mut ops = Vec::new();
        for inv in 0..self.invocations {
            // Invocation ids stay small so private windows remain inside
            // the 48-bit modeled address space.
            let plan = RequestPlan::generate(
                service,
                profile,
                VmId(0),
                (inv as u64) * 8 + service.index() as u64,
                &mut rng,
            );
            // Primary invocation: full visibility.
            for phase in &plan.phases {
                for acc in phase.stream.iter() {
                    let l1 = if acc.kind.is_ifetch() {
                        &mut f_l1i
                    } else {
                        &mut f_l1d
                    };
                    let l1_all = WayMask::all(l1.ways());
                    if !l1.access(acc.line(), acc.class.is_shared(), l1_all, acc.kind.is_write()).hit
                    {
                        push_ref(&mut ops, acc.line(), acc.class.is_shared(), all);
                    }
                }
            }
            // Harvest episode after most invocations (the core was stolen
            // while the request blocked or after it terminated).
            if rng.chance(0.7) {
                ops.push(LabOp::Flush(self.harvest_mask));
                f_l1d.invalidate_all(); // L1s are fully flushed region-wise;
                f_l1i.invalidate_all(); // conservative for the filter
                let spec = job.unit_stream(VmId(8), inv as u64);
                for acc in spec.iter().take(2000) {
                    let l1 = if acc.kind.is_ifetch() {
                        &mut f_l1i
                    } else {
                        &mut f_l1d
                    };
                    let l1_harv = WayMask::fraction(l1.ways(), 0.5);
                    if !l1
                        .access(acc.line(), acc.class.is_shared(), l1_harv, acc.kind.is_write())
                        .hit
                    {
                        push_ref(&mut ops, acc.line(), acc.class.is_shared(), self.harvest_mask);
                    }
                }
                ops.push(LabOp::Flush(self.harvest_mask));
                f_l1d.invalidate_all();
                f_l1i.invalidate_all();
            }
        }
        let _ = Visibility::Primary; // semantic anchor: allowed masks mirror visibility
        ops
    }

    fn replay_online(&self, ops: &[LabOp], policy: PolicyKind) -> f64 {
        let mut l2 = SetAssocCache::new(self.l2_sets, self.l2_ways, policy, self.harvest_mask);
        for op in ops {
            match op {
                LabOp::Run { refs, allowed } => {
                    l2.access_run(refs, *allowed);
                }
                LabOp::Flush(mask) => {
                    l2.invalidate_ways(*mask);
                }
            }
        }
        l2.stats().hit_rate()
    }

    /// The ideal bound: classic MIN over the same reference stream with
    /// full associativity, no region masks and no flushes. Relaxing the
    /// constraints only adds options, so this provably upper-bounds every
    /// online policy running under partitioning — the "ideal replacement"
    /// bar of Figure 14.
    fn replay_belady(&self, ops: &[LabOp]) -> f64 {
        let all = WayMask::all(self.l2_ways);
        let trace: Vec<TraceOp> = ops
            .iter()
            .filter_map(|op| match op {
                LabOp::Run { refs, .. } => Some(refs),
                LabOp::Flush(_) => None,
            })
            .flatten()
            .map(|r| TraceOp::Access { key: r.key, allowed: all })
            .collect();
        BeladyCache::new(self.l2_sets, self.l2_ways).run(&trace).hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_lab() -> ReplacementLab {
        ReplacementLab {
            invocations: 12,
            ..ReplacementLab::default()
        }
    }

    #[test]
    fn belady_upper_bounds_every_policy() {
        // The ideal bound runs unconstrained (full ways, no flushes), so
        // it strictly dominates every online policy under partitioning.
        for r in small_lab().run() {
            assert!(
                r.belady + 1e-9 >= r.lru,
                "{}: belady {} < lru {}",
                r.service,
                r.belady,
                r.lru
            );
            assert!(
                r.belady + 1e-9 >= r.rrip,
                "{}: belady {} < rrip {}",
                r.service,
                r.belady,
                r.rrip
            );
            assert!(
                r.belady + 1e-9 >= r.hardharvest,
                "{}: belady {} < hardharvest {}",
                r.service,
                r.belady,
                r.hardharvest
            );
        }
    }

    #[test]
    fn hardharvest_beats_lru_on_average() {
        let rows = small_lab().run();
        let hh: f64 = rows.iter().map(|r| r.hardharvest).sum::<f64>() / rows.len() as f64;
        let lru: f64 = rows.iter().map(|r| r.lru).sum::<f64>() / rows.len() as f64;
        assert!(
            hh > lru,
            "HardHarvest avg {hh:.3} should beat LRU avg {lru:.3}"
        );
    }

    #[test]
    fn hit_rates_are_probabilities() {
        for r in small_lab().run() {
            for v in [r.lru, r.rrip, r.hardharvest, r.belady] {
                assert!((0.0..=1.0).contains(&v), "{}: {v}", r.service);
            }
        }
    }

    #[test]
    fn covers_all_eight_services() {
        let rows = small_lab().run();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].service, "Text");
        assert_eq!(rows[7].service, "UrlShort");
    }
}
