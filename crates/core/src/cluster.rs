//! Cluster-level simulation: 8 independent servers, one batch job each.
//!
//! The paper's cluster is deliberately communication-free — microservices
//! only talk to services on the same server, and backends live on dedicated
//! machines whose latency is injected — so the 8 servers simulate in
//! parallel on real threads, exactly like the paper parallelizes its SST
//! instances (Section 5). Scheduling and result reuse live in
//! [`crate::RunPlan`]; the free functions here run on the process-wide
//! executor.

use hh_server::{ServerConfig, ServerMetrics, SystemSpec};
use hh_sim::stats::Samples;
use serde::Serialize;

use crate::RunPlan;

/// How large an experiment run is.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Scale {
    /// Servers in the cluster (paper: 8, one batch job each).
    pub servers: usize,
    /// Invocations per Primary VM.
    pub requests_per_vm: usize,
    /// Offered load per Primary VM (requests/second).
    pub rps_per_vm: f64,
}

impl Scale {
    /// Fast runs for tests and smoke checks (~seconds).
    pub fn quick() -> Self {
        Scale {
            servers: 2,
            requests_per_vm: 300,
            rps_per_vm: 800.0,
        }
    }

    /// The figure-generation scale: all 8 batch jobs, enough samples for a
    /// stable P99.
    pub fn paper() -> Self {
        Scale {
            servers: 8,
            requests_per_vm: 1500,
            rps_per_vm: 800.0,
        }
    }

    /// Low-load variant for steady-state single-request measurements
    /// (Figure 6).
    pub fn light_load(self) -> Self {
        Scale {
            rps_per_vm: 120.0,
            ..self
        }
    }
}

/// Merged metrics of one cluster run.
///
/// Fields are private: the hh-check oracle diffs this type, and every
/// aggregate method assumes the [`ClusterMetrics::new`] invariants (at
/// least one server, uniform service count), so mutation must go through
/// the constructor.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterMetrics {
    /// System label.
    system: &'static str,
    /// Per-server metrics (index = server = batch job).
    servers: Vec<ServerMetrics>,
}

impl ClusterMetrics {
    /// Builds a cluster result from per-server metrics.
    ///
    /// # Panics
    /// Panics if `servers` is empty or the servers disagree on how many
    /// services they ran — both would silently corrupt the percentile and
    /// average aggregations below.
    pub fn new(system: &'static str, servers: Vec<ServerMetrics>) -> ClusterMetrics {
        assert!(!servers.is_empty(), "cluster metrics need at least one server");
        let services = servers[0].services.len();
        assert!(
            servers.iter().all(|s| s.services.len() == services),
            "servers disagree on service count"
        );
        ClusterMetrics { system, servers }
    }

    /// System label.
    pub fn system(&self) -> &'static str {
        self.system
    }

    /// Per-server metrics (index = server = batch job).
    pub fn servers(&self) -> &[ServerMetrics] {
        &self.servers
    }

    /// Latency samples of one service pooled across servers, milliseconds.
    pub fn service_latency_ms(&self, service: usize) -> Samples {
        let mut s = Samples::new();
        for srv in &self.servers {
            s.merge(&srv.services[service].latency_ms);
        }
        s
    }

    /// All latency samples pooled, milliseconds.
    pub fn pooled_latency_ms(&self) -> Samples {
        let mut s = Samples::new();
        for srv in &self.servers {
            for svc in &srv.services {
                s.merge(&svc.latency_ms);
            }
        }
        s
    }

    /// Per-service and pooled latency percentiles in one pass.
    ///
    /// A latency-figure row needs the `q`-quantile of every service plus
    /// the pooled quantile; computing them through
    /// [`ClusterMetrics::service_latency_ms`] would clone-and-merge the
    /// same per-server sample sets nine times per row. This copies each
    /// sample exactly twice (once into its service's pool, once into the
    /// cluster pool) and answers every quantile by selection.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn latency_percentiles(&self, q: f64) -> (Vec<f64>, f64) {
        let services = self.servers.first().map_or(0, |srv| srv.services.len());
        let mut pooled = Samples::new();
        let mut per_service = Vec::with_capacity(services);
        for svc in 0..services {
            let mut s = Samples::new();
            for srv in &self.servers {
                s.merge(&srv.services[svc].latency_ms);
            }
            per_service.push(s.percentile(q));
            pooled.merge(&s);
        }
        (per_service, pooled.percentile(q))
    }

    /// P99 of one service, milliseconds.
    pub fn service_p99_ms(&self, service: usize) -> f64 {
        self.service_latency_ms(service).p99()
    }

    /// Average busy cores across servers (Section 6.7).
    pub fn avg_busy_cores(&self) -> f64 {
        let sum: f64 = self.servers.iter().map(ServerMetrics::avg_busy_cores).sum();
        sum / self.servers.len() as f64
    }

    /// Batch throughput of server `i` (its batch job), units/second.
    pub fn batch_throughput(&self, server: usize) -> f64 {
        self.servers[server].batch_units_per_sec()
    }

    /// Aggregate L2 hit rate.
    pub fn l2_hit_rate(&self) -> f64 {
        let hits: u64 = self.servers.iter().map(|s| s.l2_hits).sum();
        let misses: u64 = self.servers.iter().map(|s| s.l2_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Total completed requests.
    pub fn completed(&self) -> u64 {
        self.servers.iter().map(ServerMetrics::completed).sum()
    }
}

/// Runs one cluster on the process-wide [`RunPlan`]. The `tweak` hook lets
/// experiments adjust knobs (LLC size, capacity fraction, …); identical
/// requests are served from the executor's memo table.
pub fn run_cluster_with(
    system: SystemSpec,
    scale: Scale,
    seed: u64,
    tweak: impl Fn(&mut ServerConfig) + Sync,
) -> ClusterMetrics {
    RunPlan::global().run_cluster_with(system, scale, seed, tweak)
}

/// Runs a cluster with stock Table 1 knobs.
pub fn run_cluster(system: SystemSpec, scale: Scale, seed: u64) -> ClusterMetrics {
    run_cluster_with(system, scale, seed, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            servers: 2,
            requests_per_vm: 60,
            rps_per_vm: 800.0,
        }
    }

    #[test]
    fn cluster_runs_all_servers() {
        let m = run_cluster(SystemSpec::no_harvest(), tiny(), 1);
        assert_eq!(m.servers().len(), 2);
        assert_eq!(m.completed(), 2 * 8 * 60);
        assert!(m.avg_busy_cores() > 0.0);
    }

    #[test]
    fn tweak_hook_applies() {
        let m = run_cluster_with(SystemSpec::no_harvest(), tiny(), 2, |cfg| {
            cfg.requests_per_vm = 30;
        });
        assert_eq!(m.completed(), 2 * 8 * 30);
    }

    #[test]
    fn cluster_is_deterministic() {
        // Isolated executors so both runs genuinely simulate (the global
        // plan would serve the second from its memo table).
        let a = RunPlan::with_workers(1).run_cluster(SystemSpec::hardharvest_block(), tiny(), 3);
        let b = RunPlan::with_workers(2).run_cluster(SystemSpec::hardharvest_block(), tiny(), 3);
        assert_eq!(
            a.pooled_latency_ms().values().len(),
            b.pooled_latency_ms().values().len()
        );
        assert_eq!(a.avg_busy_cores(), b.avg_busy_cores());
    }

    #[test]
    fn per_service_latency_extraction() {
        let m = run_cluster(SystemSpec::no_harvest(), tiny(), 4);
        for svc in 0..8 {
            let p99 = m.service_p99_ms(svc);
            assert!(p99 > 0.0, "service {svc}");
        }
    }
}
