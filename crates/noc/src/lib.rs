//! Network models for the HardHarvest reproduction.
//!
//! Three networks appear in the paper:
//!
//! * the regular on-chip **2-D mesh** (Table 1: 5 cycles/hop) that carries
//!   data between cores, LLC slices and the Request Context Memory;
//! * the **dedicated control tree** connecting cores to the centralized
//!   HardHarvest controller (Section 4.1.8: a latency-sensitive, thin-link
//!   tree, used so that controller traffic never competes with workload
//!   traffic);
//! * the **inter-server network** (Table 1: 1 µs round trip, 200 GB/s) that
//!   carries RPCs to backend services on other machines.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use hh_sim::{CoreId, Cycles};
use serde::{Deserialize, Serialize};

/// The regular 2-D mesh interconnect of one processor.
///
/// Cores are laid out row-major on a `cols × rows` grid; XY routing gives a
/// latency of `hops × cycles_per_hop`. The mesh also hosts one attachment
/// point for the NIC/Request-Context-Memory, placed at the grid center.
///
/// # Example
///
/// ```
/// use hh_noc::Mesh2D;
/// use hh_sim::{CoreId, Cycles};
///
/// let mesh = Mesh2D::new(6, 6, 5);
/// // Opposite corners of a 6x6 mesh: 10 hops of 5 cycles.
/// assert_eq!(mesh.latency(CoreId(0), CoreId(35)), Cycles::new(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh2D {
    cols: usize,
    rows: usize,
    cycles_per_hop: u64,
}

impl Mesh2D {
    /// Creates a mesh; Table 1's configuration is `Mesh2D::new(6, 6, 5)`.
    ///
    /// # Panics
    /// Panics if any dimension or the hop latency is zero.
    pub fn new(cols: usize, rows: usize, cycles_per_hop: u64) -> Self {
        assert!(cols > 0 && rows > 0 && cycles_per_hop > 0);
        Mesh2D {
            cols,
            rows,
            cycles_per_hop,
        }
    }

    /// Table 1 default: 6×6 mesh, 5 cycles per hop.
    pub fn table1() -> Self {
        Mesh2D::new(6, 6, 5)
    }

    /// Number of node positions.
    pub fn nodes(&self) -> usize {
        self.cols * self.rows
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        assert!(node < self.nodes(), "node {node} outside the mesh");
        (node % self.cols, node / self.cols)
    }

    /// Manhattan hop count between two cores under XY routing.
    pub fn hops(&self, from: CoreId, to: CoreId) -> u64 {
        let (fx, fy) = self.coords(from.index());
        let (tx, ty) = self.coords(to.index());
        (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
    }

    /// One-way latency between two cores.
    pub fn latency(&self, from: CoreId, to: CoreId) -> Cycles {
        Cycles::new(self.hops(from, to) * self.cycles_per_hop)
    }

    /// One-way latency from a core to the central attachment point (NIC /
    /// Request Context Memory), approximated as the mesh center.
    pub fn latency_to_center(&self, from: CoreId) -> Cycles {
        let center = (self.rows / 2) * self.cols + self.cols / 2;
        self.latency(from, CoreId::from(center))
    }

    /// Worst-case one-way latency across the mesh.
    pub fn diameter_latency(&self) -> Cycles {
        Cycles::new(((self.cols - 1) + (self.rows - 1)) as u64 * self.cycles_per_hop)
    }
}

/// The dedicated tree network between cores and the HardHarvest controller.
///
/// Section 4.1.8: the controller is a centralized module reached over a
/// thin-link tree, chosen because control messages are small and
/// latency-sensitive. With fan-out `k`, a message climbs
/// `ceil(log_k(cores))` levels to the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControlTree {
    cores: usize,
    fanout: usize,
    cycles_per_level: u64,
}

impl ControlTree {
    /// Creates a control tree over `cores` leaves.
    ///
    /// # Panics
    /// Panics if `cores == 0`, `fanout < 2`, or the level latency is zero.
    pub fn new(cores: usize, fanout: usize, cycles_per_level: u64) -> Self {
        assert!(cores > 0 && fanout >= 2 && cycles_per_level > 0);
        ControlTree {
            cores,
            fanout,
            cycles_per_level,
        }
    }

    /// Default used in the evaluation: 36 cores, fan-out 4, 2 cycles per
    /// level (thin but fast links).
    pub fn table1() -> Self {
        ControlTree::new(36, 4, 2)
    }

    /// Number of tree levels between a leaf and the root controller.
    pub fn depth(&self) -> u32 {
        let mut levels = 0u32;
        let mut span = 1usize;
        while span < self.cores {
            span *= self.fanout;
            levels += 1;
        }
        levels.max(1)
    }

    /// One-way core→controller latency.
    pub fn to_controller(&self, _from: CoreId) -> Cycles {
        Cycles::new(self.depth() as u64 * self.cycles_per_level)
    }

    /// Round-trip core→controller→core latency (e.g. a dequeue
    /// instruction's reply).
    pub fn round_trip(&self, from: CoreId) -> Cycles {
        self.to_controller(from) * 2
    }
}

/// The inter-server network (Table 1: 1 µs round trip, 200 GB/s).
///
/// Backend services (Memcached/Redis/MongoDB) live on dedicated servers; a
/// blocking RPC pays this round trip plus the profiled backend service
/// time, which the workload crate supplies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterServer {
    /// Network round-trip time.
    pub round_trip: Cycles,
    /// Link bandwidth in bytes per cycle (200 GB/s at 3 GHz ≈ 66.7 B/cyc).
    pub bytes_per_cycle: f64,
}

impl InterServer {
    /// Table 1 defaults.
    pub fn table1() -> Self {
        InterServer {
            round_trip: Cycles::from_us(1.0),
            bytes_per_cycle: 200e9 / 3e9,
        }
    }

    /// Latency to move `bytes` one way plus propagation (half the RTT).
    pub fn transfer(&self, bytes: u64) -> Cycles {
        let serialization = (bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        self.round_trip / 2 + Cycles::new(serialization)
    }

    /// Full RPC wire cost for a request/response pair, excluding backend
    /// service time.
    pub fn rpc(&self, request_bytes: u64, response_bytes: u64) -> Cycles {
        self.transfer(request_bytes) + self.transfer(response_bytes)
    }
}

impl Default for InterServer {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_latency_symmetric_and_zero_on_self() {
        let m = Mesh2D::table1();
        assert_eq!(m.nodes(), 36);
        for (a, b) in [(0u16, 35u16), (7, 29), (12, 12)] {
            assert_eq!(
                m.latency(CoreId(a), CoreId(b)),
                m.latency(CoreId(b), CoreId(a))
            );
        }
        assert_eq!(m.latency(CoreId(9), CoreId(9)), Cycles::ZERO);
    }

    #[test]
    fn mesh_hops_manhattan() {
        let m = Mesh2D::new(6, 6, 5);
        // node 0 = (0,0); node 8 = (2,1) → 3 hops
        assert_eq!(m.hops(CoreId(0), CoreId(8)), 3);
        assert_eq!(m.latency(CoreId(0), CoreId(8)), Cycles::new(15));
    }

    #[test]
    fn mesh_diameter_bounds_all_pairs() {
        let m = Mesh2D::table1();
        let d = m.diameter_latency();
        for a in 0..36u16 {
            for b in 0..36u16 {
                assert!(m.latency(CoreId(a), CoreId(b)) <= d);
            }
        }
    }

    #[test]
    fn mesh_center_latency_is_small() {
        let m = Mesh2D::table1();
        for a in 0..36u16 {
            assert!(m.latency_to_center(CoreId(a)) <= Cycles::new(6 * 5));
        }
    }

    #[test]
    #[should_panic(expected = "outside the mesh")]
    fn mesh_rejects_out_of_range_node() {
        Mesh2D::table1().latency(CoreId(0), CoreId(36));
    }

    #[test]
    fn tree_depth_log() {
        assert_eq!(ControlTree::new(36, 4, 2).depth(), 3); // 4^3=64 ≥ 36
        assert_eq!(ControlTree::new(16, 4, 2).depth(), 2);
        assert_eq!(ControlTree::new(1, 2, 1).depth(), 1);
    }

    #[test]
    fn tree_round_trip_doubles() {
        let t = ControlTree::table1();
        assert_eq!(t.round_trip(CoreId(5)), t.to_controller(CoreId(5)) * 2);
        // A control round trip (12 cycles) is far below a software syscall.
        assert!(t.round_trip(CoreId(5)) < Cycles::from_ns(100.0));
    }

    #[test]
    fn inter_server_rpc_at_least_rtt() {
        let n = InterServer::table1();
        assert!(n.rpc(128, 1024) >= n.round_trip);
        // 1 KB at 66 B/cycle adds only a handful of cycles.
        assert!(n.rpc(128, 1024) < n.round_trip + Cycles::new(64));
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let n = InterServer::table1();
        assert!(n.transfer(1 << 20) > n.transfer(64));
    }
}
